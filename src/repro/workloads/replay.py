"""Traffic replay: blast a recorded trace at the live ingest socket.

The live serving stack needs a load generator that produces *real*
network traffic with controlled statistics. This module replays any
arrival list (a cached :func:`~repro.workloads.arrivals_from_trace`
stream, or rows of a Citi-Bike-style trip CSV) over TCP:

* :func:`replay_schedule` — the pure time-warp: speedup (1x…1000x) and
  burst shaping, deterministically testable without sockets;
* :func:`replay_over_socket` — the blocking sender (coalesces due
  payloads into batched ``sendall`` calls so 10k msg/s over loopback
  doesn't syscall per tuple);
* :class:`TraceReplayer` — a thread wrapper with start/stop/stats;
* :func:`load_citibike_csv` — the 2018-schema trip CSV reader
  (``tripduration,starttime,stoptime,...``), timestamps relative to the
  first trip's start;
* ``python -m repro.workloads.replay`` — the CLI.

Burst shaping squeezes each ``burst_period`` window: the first half's
arrivals are compressed ``burst_factor``-fold (a burst), the second
half's are stretched to fill the window's remainder (a lull), so the
window's duration — and therefore the *mean* rate — is exactly
preserved while the peak rate multiplies. This is the eSPICE/hSPICE
evaluation pattern: shedding quality is judged at controlled overload
factors with bursty arrivals, not smoothed means.
"""

from __future__ import annotations

import csv
import socket
import threading
import time
from datetime import datetime
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import WorkloadError
from .arrivals import Arrival

#: payload actually sent: (send time in warped seconds, encoded bytes)
_SendItem = Tuple[float, bytes]


def _warp_time(t: float, speed: float, burst_factor: float,
               burst_period: float) -> float:
    """Map one original timestamp to its warped send time."""
    t = t / speed
    if burst_factor <= 1.0:
        return t
    w = burst_period
    half = w / 2.0
    window = int(t // w)
    offset = t - window * w
    # first half compressed into half/burst_factor seconds, second half
    # stretched so the window still lasts exactly w
    if offset < half:
        warped = offset / burst_factor
    else:
        slow = (w - half / burst_factor) / half
        warped = half / burst_factor + (offset - half) * slow
    return window * w + warped


def replay_schedule(arrivals: Sequence[Arrival], speed: float = 1.0,
                    burst_factor: float = 1.0,
                    burst_period: float = 10.0) -> List[float]:
    """Wall-clock send times (seconds from replay start) for each arrival.

    ``speed`` divides every inter-arrival gap (50x replays a 400 s trace
    in 8 s); ``burst_factor`` > 1 compresses the first half of every
    ``burst_period``-second window (post-speedup) by that factor and
    stretches the second half to compensate, preserving the mean rate.
    """
    if speed <= 0:
        raise WorkloadError(f"replay speed must be positive: {speed}")
    if burst_factor < 1.0:
        raise WorkloadError(
            f"burst_factor must be >= 1 (1 = no shaping): {burst_factor}")
    if burst_period <= 0:
        raise WorkloadError(
            f"burst_period must be positive: {burst_period}")
    times = []
    prev = None
    for t, _, _ in arrivals:
        if prev is not None and t < prev:
            raise WorkloadError("arrivals must be in time order")
        prev = t
        times.append(_warp_time(t, speed, burst_factor, burst_period))
    return times


def load_citibike_csv(path: Union[str, Path], source: str = "bike",
                      limit: Optional[int] = None) -> List[Arrival]:
    """Arrivals from a Citi-Bike trip CSV (2018 schema).

    Expects the old-schema header (``tripduration,starttime,stoptime,
    start station id,...,bikeid,...``); each row becomes one arrival at
    ``starttime`` seconds after the file's first trip, carrying
    ``(tripduration, start station id, end station id, bikeid)`` values.
    Rows with unparseable key fields are skipped.
    """
    path = Path(path)
    arrivals: List[Arrival] = []
    epoch: Optional[datetime] = None
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise WorkloadError(f"{path}: empty CSV")
        fields = {name.strip().strip('"').lower(): name
                  for name in reader.fieldnames}
        try:
            f_start = fields["starttime"]
            f_duration = fields["tripduration"]
        except KeyError:
            raise WorkloadError(
                f"{path}: not a Citi-Bike trip CSV "
                f"(columns: {reader.fieldnames})") from None
        f_sstation = fields.get("start station id")
        f_estation = fields.get("end station id")
        f_bike = fields.get("bikeid")
        for row in reader:
            if limit is not None and len(arrivals) >= limit:
                break
            try:
                started = _parse_citibike_time(row[f_start])
                duration = int(float(row[f_duration]))
            except (ValueError, KeyError, TypeError):
                continue
            if epoch is None:
                epoch = started
            t = (started - epoch).total_seconds()
            values = (
                duration,
                _int_or_zero(row.get(f_sstation)) if f_sstation else 0,
                _int_or_zero(row.get(f_estation)) if f_estation else 0,
                _int_or_zero(row.get(f_bike)) if f_bike else 0,
            )
            arrivals.append((t, values, source))
    if not arrivals:
        raise WorkloadError(f"{path}: no parseable trips")
    arrivals.sort(key=lambda a: a[0])
    return arrivals


def _parse_citibike_time(text: str) -> datetime:
    text = text.strip().strip('"')
    for fmt in ("%Y-%m-%d %H:%M:%S.%f", "%Y-%m-%d %H:%M:%S"):
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise ValueError(f"unparseable timestamp {text!r}")


def _int_or_zero(raw) -> int:
    try:
        return int(float(raw))
    except (ValueError, TypeError):
        return 0


def replay_over_socket(arrivals: Sequence[Arrival],
                       host: str, port: int,
                       speed: float = 1.0,
                       burst_factor: float = 1.0,
                       burst_period: float = 10.0,
                       stop: Optional[threading.Event] = None,
                       stamp_sent: bool = False,
                       batch_window: float = 0.005) -> int:
    """Replay ``arrivals`` to ``host:port``; returns tuples actually sent.

    Encodes each arrival with the serve wire protocol and sends it at
    its :func:`replay_schedule` time. Payloads due within
    ``batch_window`` seconds of each other coalesce into one ``sendall``
    (per-tuple syscalls cap loopback throughput far below what the
    shedder should be asked to survive). ``stamp_sent=True`` embeds the
    sender's epoch clock for the server's skew gauge. A vanished server
    (connection refused mid-shutdown, broken pipe) ends the replay
    quietly — the generator must never outlive the node it feeds.
    """
    from ..serve.protocol import encode_tuple  # lazy: one-way dep

    schedule = replay_schedule(arrivals, speed, burst_factor, burst_period)
    sent = 0
    try:
        sock = socket.create_connection((host, port), timeout=5.0)
    except OSError:
        return 0
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        start = time.monotonic()
        i = 0
        n = len(schedule)
        while i < n:
            if stop is not None and stop.is_set():
                break
            due_at = schedule[i]
            wait = due_at - (time.monotonic() - start)
            if wait > 0:
                if stop is not None:
                    if stop.wait(timeout=wait):
                        break
                else:
                    time.sleep(wait)
            # coalesce everything due within the batch window
            horizon = (time.monotonic() - start) + batch_window
            chunk = bytearray()
            while i < n and schedule[i] <= horizon:
                t, values, source = arrivals[i]
                chunk += encode_tuple(
                    values, source=source,
                    sent=time.time() if stamp_sent else None)
                i += 1
                sent += 1
            try:
                sock.sendall(chunk)
            except OSError:
                sent -= 1  # the last chunk may not have landed whole
                break
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return max(sent, 0)


class TraceReplayer:
    """Background-thread wrapper around :func:`replay_over_socket`."""

    def __init__(self, arrivals: Sequence[Arrival], host: str, port: int,
                 speed: float = 1.0, burst_factor: float = 1.0,
                 burst_period: float = 10.0, stamp_sent: bool = False):
        self.arrivals = arrivals
        self.host = host
        self.port = port
        self.speed = speed
        self.burst_factor = burst_factor
        self.burst_period = burst_period
        self.stamp_sent = stamp_sent
        self.sent = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "TraceReplayer":
        if self._thread is not None:
            raise WorkloadError("TraceReplayer already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-replay", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        self.sent = replay_over_socket(
            self.arrivals, self.host, self.port,
            speed=self.speed, burst_factor=self.burst_factor,
            burst_period=self.burst_period, stop=self._stop,
            stamp_sent=self.stamp_sent)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the replay to finish; True when the thread is done."""
        if self._thread is None:
            return True
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()

    def stop(self) -> int:
        """Abort the replay and join the thread; returns tuples sent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return self.sent


def _main(argv: Optional[List[str]] = None) -> int:
    """CLI: replay a synthetic trace or a Citi-Bike CSV at a live node."""
    import argparse

    from .arrivals import arrivals_from_trace
    from .patterns import constant_rate

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.replay",
        description="Replay a trace over TCP at a live serving node.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="the live node's ingest port")
    parser.add_argument("--csv", type=Path, default=None,
                        help="Citi-Bike trip CSV to replay (default: a "
                             "synthetic constant-rate trace)")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="synthetic trace rate, tuples/s (no --csv)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="synthetic trace length, seconds (no --csv)")
    parser.add_argument("--speed", type=float, default=1.0,
                        help="replay speedup factor (1x...1000x)")
    parser.add_argument("--burst-factor", type=float, default=1.0)
    parser.add_argument("--burst-period", type=float, default=10.0)
    parser.add_argument("--limit", type=int, default=None,
                        help="cap the number of tuples replayed")
    args = parser.parse_args(argv)

    if args.csv is not None:
        arrivals = load_citibike_csv(args.csv, limit=args.limit)
    else:
        trace = constant_rate(args.rate, max(1, int(round(args.duration))))
        arrivals = arrivals_from_trace(trace, seed=1)
        if args.limit is not None:
            arrivals = arrivals[:args.limit]
    print(f"replaying {len(arrivals)} tuples at {args.speed}x "
          f"to {args.host}:{args.port}")
    sent = replay_over_socket(
        arrivals, args.host, args.port, speed=args.speed,
        burst_factor=args.burst_factor, burst_period=args.burst_period,
        stamp_sent=True)
    print(f"sent {sent} tuples")
    return 0 if sent > 0 else 1


if __name__ == "__main__":
    raise SystemExit(_main())
