"""Deterministic rate-trace patterns.

RateTrace builders for the shapes used in system identification and in the
paper's Fig. 8 discussion: steps (Fig. 5), sinusoids (Fig. 7), monotone
ramps (Fig. 8A instability example), and piecewise-constant profiles
(Fig. 8B/C step-change examples).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..control import signals
from .trace import RateTrace


def constant_rate(rate: float, n_periods: int, period: float = 1.0) -> RateTrace:
    """A flat trace."""
    return RateTrace(signals.constant(rate, n_periods), period)


def step_rate(n_periods: int, step_at: int, low: float, high: float,
              period: float = 1.0) -> RateTrace:
    """The Fig. 5 step: ``low`` until ``step_at`` periods, then ``high``."""
    return RateTrace(signals.step(n_periods, step_at, low, high), period)


def sinusoid_rate(n_periods: int, cycle_periods: float, low: float, high: float,
                  period: float = 1.0) -> RateTrace:
    """The Fig. 7 sinusoid, ranging over [low, high]."""
    return RateTrace(
        signals.sinusoid(n_periods, cycle_periods, low, high), period
    )


def ramp_rate(n_periods: int, start: float, slope: float,
              period: float = 1.0) -> RateTrace:
    """A monotone increase (Fig. 8A: open-loop instability trigger)."""
    values = signals.ramp(n_periods, start, slope)
    return RateTrace([max(v, 0.0) for v in values], period)


def piecewise_rate(segments: Sequence[Tuple[int, float]],
                   period: float = 1.0) -> RateTrace:
    """Concatenated constant segments ``(n_periods, rate)`` (Fig. 8B/C)."""
    return RateTrace(signals.piecewise(segments), period)


def square_rate(n_periods: int, cycle_periods: int, low: float, high: float,
                period: float = 1.0) -> RateTrace:
    """Alternating low/high bursts with a 50% duty cycle."""
    return RateTrace(
        signals.square_wave(n_periods, cycle_periods, low, high), period
    )
