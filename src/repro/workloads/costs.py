"""Time-varying per-tuple cost traces (paper Fig. 14).

The paper simulates variations of the per-tuple cost ``c`` by generating a
Pareto-distributed base trace and then adding "circumstances": a small peak
at the 50th second, a large peak with a sudden jump starting at the 125th
second, and a high terrace with a sudden drop between the 250th and 350th
second. :func:`fig14_cost_trace` reproduces exactly that shape;
:func:`Circumstance`-based composition lets callers build their own.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import WorkloadError
from .trace import CostTrace


@dataclass(frozen=True)
class Circumstance:
    """One shaped disturbance added onto a base cost trace.

    ``kind``:

    * ``"peak"`` — symmetric smooth bump (gradual rise and fall),
    * ``"jump_peak"`` — instantaneous jump to the top, gradual decay,
    * ``"terrace"`` — gradual rise to a plateau, instantaneous drop at the
      end (the paper's "high terrace with a sudden drop").
    """

    kind: str
    start: float          # seconds
    duration: float       # seconds
    height: float         # added cost (seconds/tuple) at the top

    def profile(self, t: float) -> float:
        """Added cost at absolute time ``t``."""
        x = (t - self.start) / self.duration
        if x < 0.0 or x > 1.0:
            return 0.0
        if self.kind == "peak":
            return self.height * 0.5 * (1.0 - math.cos(2.0 * math.pi * x))
        if self.kind == "jump_peak":
            return self.height * (1.0 - x) ** 2
        if self.kind == "terrace":
            ramp = min(1.0, x / 0.3)  # reach the plateau in the first 30%
            return self.height * ramp
        raise WorkloadError(f"unknown circumstance kind {self.kind!r}")


def cost_trace(n_periods: int,
               base_cost: float,
               circumstances: Sequence[Circumstance] = (),
               jitter_beta: Optional[float] = 3.0,
               jitter_scale: float = 0.05,
               period: float = 1.0,
               seed: Optional[int] = None) -> CostTrace:
    """Base cost + Pareto jitter + shaped circumstances.

    ``jitter_beta`` controls the Pareto shape of the multiplicative noise
    (None disables it); ``jitter_scale`` is the noise magnitude relative to
    ``base_cost``.
    """
    if base_cost <= 0:
        raise WorkloadError("base cost must be positive")
    if n_periods < 1:
        raise WorkloadError("need at least one period")
    rng = random.Random(seed)
    values: List[float] = []
    for k in range(n_periods):
        t = (k + 0.5) * period
        value = base_cost
        if jitter_beta is not None:
            u = max(rng.random(), 1e-12)
            noise = (u ** (-1.0 / jitter_beta) - 1.0)  # >= 0, long-tailed
            value += base_cost * jitter_scale * min(noise, 5.0)
        for circ in circumstances:
            value += circ.profile(t)
        values.append(value)
    return CostTrace(values, period)


def fig14_circumstances(base_cost: float) -> List[Circumstance]:
    """The paper's three Fig. 14 circumstances, scaled to ``base_cost``.

    Heights reproduce the figure: the small peak roughly doubles the ~5 ms
    base, the jump peak reaches ~25 ms, the terrace holds ~10 ms.
    """
    return [
        Circumstance("peak", start=40.0, duration=25.0, height=base_cost * 1.0),
        Circumstance("jump_peak", start=125.0, duration=40.0,
                     height=base_cost * 3.8),
        Circumstance("terrace", start=250.0, duration=100.0,
                     height=base_cost * 1.0),
    ]


def fig14_cost_trace(n_periods: int = 400,
                     base_cost: float = 1.0 / 190.0,
                     period: float = 1.0,
                     seed: Optional[int] = None) -> CostTrace:
    """The full Fig. 14 cost trace over ``n_periods`` seconds."""
    return cost_trace(
        n_periods,
        base_cost,
        circumstances=fig14_circumstances(base_cost),
        jitter_beta=3.0,
        jitter_scale=0.05,
        period=period,
        seed=seed,
    )


def constant_cost_trace(n_periods: int, cost: float,
                        period: float = 1.0) -> CostTrace:
    """A flat cost trace (system-identification setting)."""
    return CostTrace([cost] * n_periods, period)
