"""Synthetic self-similar web-request trace.

The paper's real workload is the LBL-PKT-4 trace from the Internet Traffic
Archive (requests to a cluster of web servers). That trace is not available
offline, so we synthesize a statistically equivalent one with the standard
generative model for such traffic: a superposition of ON/OFF sources whose
ON and OFF period lengths are Pareto-distributed (heavy-tailed), which is
the construction Paxson & Floyd showed produces the self-similarity and
burstiness observed in real wide-area traffic — the very property that
breaks the open-loop Aurora shedder.

The controller sees only per-period arrival counts, so matching the
count-process statistics (mean level, bursts lasting several seconds,
long-range dependence) preserves the paper-relevant behaviour.

:func:`load_ita_trace` can parse a real Internet-Traffic-Archive style
timestamp file when one is available, producing the same
:class:`~repro.workloads.trace.RateTrace` type.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Optional, Union

from ..errors import WorkloadError
from .trace import RateTrace


def web_rate_trace(n_periods: int,
                   mean_rate: float = 250.0,
                   n_sources: int = 40,
                   on_shape: float = 1.4,
                   off_shape: float = 1.2,
                   mean_on: float = 5.0,
                   mean_off: float = 5.0,
                   period: float = 1.0,
                   seed: Optional[int] = None) -> RateTrace:
    """Superposed Pareto-ON/OFF sources, normalized to ``mean_rate``.

    Each of ``n_sources`` alternates between ON intervals (emitting at a
    fixed per-source rate) and OFF intervals; interval lengths are Pareto
    with shapes ``on_shape``/``off_shape`` in (1, 2) — finite mean, infinite
    variance, the regime that yields self-similar aggregate traffic. Burst
    durations average ``mean_on`` seconds, matching the paper's observation
    that "most of the bursts in both traces last longer than a few (4 to 5)
    seconds".
    """
    if n_periods < 1:
        raise WorkloadError("need at least one period")
    if n_sources < 1:
        raise WorkloadError("need at least one source")
    if mean_rate <= 0:
        raise WorkloadError("mean rate must be positive")
    if not (1.0 < on_shape <= 2.0) or not (1.0 < off_shape <= 2.0):
        raise WorkloadError("Pareto shapes must lie in (1, 2] for this model")
    rng = random.Random(seed)
    duration = n_periods * period

    def pareto_interval(shape: float, mean: float) -> float:
        # Pareto with shape a>1 has mean a*k/(a-1); solve k for the mean
        k = mean * (shape - 1.0) / shape
        u = max(rng.random(), 1e-12)
        return k / (u ** (1.0 / shape))

    # accumulate ON coverage (in seconds) per period for each source
    coverage = [0.0] * n_periods

    def add_on_interval(start: float, end: float) -> None:
        first = int(start // period)
        last = min(int(end // period), n_periods - 1)
        for idx in range(first, last + 1):
            lo = max(start, idx * period)
            hi = min(end, (idx + 1) * period)
            if hi > lo:
                coverage[idx] += hi - lo

    for __ in range(n_sources):
        # random initial phase: start mid-cycle with equal probability
        t = -pareto_interval(off_shape, mean_off) * rng.random()
        on = rng.random() < mean_on / (mean_on + mean_off)
        while t < duration:
            length = pareto_interval(on_shape if on else off_shape,
                                     mean_on if on else mean_off)
            if on:
                add_on_interval(max(t, 0.0), min(t + length, duration))
            t += length
            on = not on
    # convert coverage (source-seconds per period) to rates, normalize mean
    raw = [c / period for c in coverage]
    total = sum(raw)
    if total == 0:
        raise WorkloadError("degenerate ON/OFF draw produced an empty trace; "
                            "try another seed")
    factor = mean_rate * n_periods / total
    return RateTrace([r * factor for r in raw], period)


def load_ita_trace(path: Union[str, Path],
                   period: float = 1.0,
                   n_periods: Optional[int] = None,
                   timestamp_column: int = 0) -> RateTrace:
    """Parse an Internet-Traffic-Archive style file into a rate trace.

    Each non-empty line is whitespace-split and
    ``float(fields[timestamp_column])`` is taken as an arrival timestamp in
    seconds; counts per ``period`` become the trace. Use this to run the
    experiments against the paper's actual LBL-PKT-4 dataset when a copy is
    available.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file not found: {path}")
    timestamps = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            try:
                timestamps.append(float(fields[timestamp_column]))
            except (ValueError, IndexError) as exc:
                raise WorkloadError(f"bad trace line {line!r}") from exc
    if not timestamps:
        raise WorkloadError(f"no timestamps found in {path}")
    start = min(timestamps)
    rel = [t - start for t in timestamps]
    horizon = max(rel)
    buckets = n_periods or int(horizon // period) + 1
    counts = [0] * buckets
    for t in rel:
        idx = int(t // period)
        if idx < buckets:
            counts[idx] += 1
    return RateTrace([c / period for c in counts], period)
