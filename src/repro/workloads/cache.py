"""On-disk arrival-trace cache.

Materializing a rate trace into concrete arrivals
(:func:`~repro.workloads.arrivals.arrivals_from_trace`) is deterministic in
``(trace values, period, source, n_fields, poisson, seed)`` — yet every
process-pool worker used to regenerate the same list from the config seed,
once per job. :func:`cached_arrivals_from_trace` keys the materialized list
by a hash of exactly those inputs and memoizes it on disk, so a sweep's
workers generate each distinct workload once and then just unpickle it.

Control knob (environment, read per call so tests can monkeypatch):

``REPRO_TRACE_CACHE``
    unset — cache under ``$XDG_CACHE_HOME/repro/traces`` (defaulting to
    ``~/.cache/repro/traces``); ``0``/``off``/``no``/``false`` (any case)
    — disable caching entirely; anything else — use that directory.

Writes are atomic (temp file + ``os.replace``) so concurrent workers can
race on the same key safely; a corrupt or unreadable entry falls back to
regeneration. Tiny traces (fewer than :data:`CACHE_MIN_TUPLES` expected
tuples) skip the cache — the pickle round-trip would cost more than the
generation it saves.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import List, Optional

from ..obs.logconf import get_logger
from .arrivals import Arrival, arrivals_from_trace
from .trace import RateTrace

_log = get_logger("workloads")

#: cache entries below this expected tuple count are not worth the disk IO
CACHE_MIN_TUPLES = 5000

#: bump when the arrival-generation algorithm or entry format changes
_FORMAT_VERSION = 1

_ENV_VAR = "REPRO_TRACE_CACHE"
_OFF_VALUES = {"0", "off", "no", "false"}


def trace_cache_dir() -> Optional[Path]:
    """The active cache directory, or ``None`` when caching is disabled."""
    raw = os.environ.get(_ENV_VAR)
    if raw is not None:
        if raw.strip().lower() in _OFF_VALUES or not raw.strip():
            return None
        return Path(raw).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "traces"


def trace_cache_key(trace: RateTrace, source: str, n_fields: int,
                    poisson: bool, seed: Optional[int]) -> str:
    """Hex digest identifying one materialized arrival list."""
    h = hashlib.sha256()
    h.update(f"v{_FORMAT_VERSION}|{trace.period!r}|{source}|{n_fields}|"
             f"{int(poisson)}|{seed!r}|".encode())
    for v in trace.values:
        h.update(repr(v).encode())
        h.update(b",")
    return h.hexdigest()


def cached_arrivals_from_trace(trace: RateTrace,
                               source: str = "src",
                               n_fields: int = 4,
                               poisson: bool = False,
                               seed: Optional[int] = None) -> List[Arrival]:
    """Drop-in cached variant of :func:`arrivals_from_trace`.

    Returns the identical arrival list (cache hits are byte-equal pickles
    of what generation would produce); falls back to direct generation
    when the cache is disabled, the trace is small, or the entry is
    unreadable.
    """
    cache_dir = trace_cache_dir()
    if cache_dir is None or trace.total_tuples() < CACHE_MIN_TUPLES:
        return arrivals_from_trace(trace, source=source, n_fields=n_fields,
                                   poisson=poisson, seed=seed)
    key = trace_cache_key(trace, source, n_fields, poisson, seed)
    path = cache_dir / f"{key}.pkl"
    try:
        with open(path, "rb") as fh:
            arrivals = pickle.load(fh)
        _log.debug("trace cache hit %s (%d arrivals)", key[:12], len(arrivals))
        return arrivals
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        pass  # miss or corrupt entry: regenerate (and try to repair)
    arrivals = arrivals_from_trace(trace, source=source, n_fields=n_fields,
                                   poisson=poisson, seed=seed)
    _log.debug("trace cache miss %s: materialized %d arrivals",
               key[:12], len(arrivals))
    _write_atomic(path, arrivals)
    return arrivals


def clear_trace_cache() -> int:
    """Delete every cached entry; returns the number of files removed."""
    cache_dir = trace_cache_dir()
    if cache_dir is None or not cache_dir.is_dir():
        return 0
    removed = 0
    for entry in cache_dir.glob("*.pkl"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def _write_atomic(path: Path, arrivals: List[Arrival]) -> None:
    """Best-effort atomic publish; caching never fails the caller."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(arrivals, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass
