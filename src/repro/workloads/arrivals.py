"""Converting rate traces into concrete tuple arrivals.

The engines consume ``(timestamp, values, source)`` triples in time order.
:func:`arrivals_from_trace` spaces tuples within each period either evenly
or as a Poisson process; :func:`uniform_values` builds the independent
uniform value fields the identification network's filters require.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Tuple

from ..errors import WorkloadError
from .trace import RateTrace

Arrival = Tuple[float, Tuple, str]


def uniform_values(rng: random.Random, n_fields: int = 4) -> Tuple[float, ...]:
    """``n_fields`` independent U[0,1) values (pins filter selectivities)."""
    return tuple(rng.random() for __ in range(n_fields))


def arrivals_from_trace(trace: RateTrace,
                        source: str = "src",
                        n_fields: int = 4,
                        poisson: bool = False,
                        seed: Optional[int] = None) -> List[Arrival]:
    """Materialize a rate trace as a time-ordered arrival list.

    With ``poisson=False`` (default) each period's tuples are evenly spaced;
    with ``poisson=True`` the per-period count is Poisson with the trace
    rate as its mean and positions are uniform within the period — closer to
    a real packet trace but with extra sampling noise.
    """
    rng = random.Random(seed)
    out: List[Arrival] = []
    for k, rate in enumerate(trace):
        start = k * trace.period
        if poisson:
            mean = rate * trace.period
            count = _poisson(rng, mean)
            offsets = sorted(rng.random() * trace.period for __ in range(count))
        else:
            count = int(round(rate * trace.period))
            offsets = [i * trace.period / count for i in range(count)]
        for off in offsets:
            out.append((start + off, uniform_values(rng, n_fields), source))
    return out


def iter_arrivals(trace: RateTrace,
                  source: str = "src",
                  n_fields: int = 4,
                  seed: Optional[int] = None) -> Iterator[Arrival]:
    """Generator variant of :func:`arrivals_from_trace` (even spacing)."""
    rng = random.Random(seed)
    for k, rate in enumerate(trace):
        start = k * trace.period
        count = int(round(rate * trace.period))
        for i in range(count):
            yield (start + i * trace.period / count,
                   uniform_values(rng, n_fields), source)


def merge_arrivals(*streams: List[Arrival]) -> List[Arrival]:
    """Merge several time-ordered arrival lists into one (stable by time)."""
    merged = [a for stream in streams for a in stream]
    merged.sort(key=lambda a: a[0])
    return merged


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth for small means, normal approximation for large ones."""
    if mean < 0:
        raise WorkloadError("Poisson mean must be non-negative")
    if mean == 0:
        return 0
    if mean > 50:
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    limit = math.exp(-mean)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= limit:
            return k
        k += 1
