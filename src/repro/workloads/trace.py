"""Trace containers.

A :class:`RateTrace` is a per-period sequence of arrival rates (tuples per
second per control period) — the paper's Fig. 13 curves. A
:class:`CostTrace` is a per-period sequence of per-tuple CPU costs — the
paper's Fig. 14 curve. Both support basic arithmetic, resampling, and
conversion to a continuous lookup function for the engine's cost
multiplier.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List

from ..errors import WorkloadError


class _PeriodSeries:
    """Shared behaviour: a value per fixed-length period."""

    def __init__(self, values: Iterable[float], period: float = 1.0):
        self.values: List[float] = [float(v) for v in values]
        if not self.values:
            raise WorkloadError("trace must have at least one period")
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period}")
        if any(v < 0 for v in self.values):
            raise WorkloadError("trace values must be non-negative")
        self.period = float(period)

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        return len(self.values) * self.period

    def at(self, t: float) -> float:
        """Value for the period containing time ``t`` (clamped at the ends)."""
        idx = int(t // self.period)
        idx = max(0, min(idx, len(self.values) - 1))
        return self.values[idx]

    def as_function(self) -> Callable[[float], float]:
        """A ``t -> value`` lookup suitable for engine callbacks."""
        return self.at

    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def peak(self) -> float:
        return max(self.values)

    def scaled(self, factor: float):
        if factor < 0:
            raise WorkloadError("scale factor must be non-negative")
        return type(self)([v * factor for v in self.values], self.period)

    def clipped(self, low: float, high: float):
        if low > high:
            raise WorkloadError("clip bounds inverted")
        return type(self)([min(max(v, low), high) for v in self.values],
                          self.period)

    def resampled(self, new_period: float):
        """Piecewise-constant resampling onto a different period grid."""
        if new_period <= 0:
            raise WorkloadError("new period must be positive")
        n = int(math.ceil(self.duration / new_period))
        mids = [(i + 0.5) * new_period for i in range(n)]
        return type(self)([self.at(t) for t in mids], new_period)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, idx: int) -> float:
        return self.values[idx]


class RateTrace(_PeriodSeries):
    """Arrival rates (tuples/second), one value per period."""

    def total_tuples(self) -> float:
        """Expected number of tuples over the full trace."""
        return sum(v * self.period for v in self.values)

    def burstiness(self) -> float:
        """Coefficient of variation of per-period rates (0 = constant)."""
        mu = self.mean()
        if mu == 0:
            return 0.0
        var = sum((v - mu) ** 2 for v in self.values) / len(self.values)
        return math.sqrt(var) / mu


class CostTrace(_PeriodSeries):
    """Per-tuple CPU cost (seconds), one value per period."""

    def as_multiplier(self, base_cost: float) -> Callable[[float], float]:
        """A ``t -> cost(t)/base_cost`` multiplier for the engines.

        The engines store nominal operator costs summing to ``base_cost``
        per tuple; scaling by ``cost(t)/base_cost`` makes the *effective*
        per-tuple cost follow this trace (the paper's Fig. 14 setup).
        """
        if base_cost <= 0:
            raise WorkloadError("base cost must be positive")
        return lambda t: self.at(t) / base_cost
