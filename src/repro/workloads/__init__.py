"""Workload generators: arrival-rate traces, cost traces, tuple arrivals.

Reproduces the paper's inputs — the Pareto synthetic stream with its bias
factor, a self-similar web-request trace standing in for LBL-PKT-4, the
step/sinusoid identification signals, and the Fig. 14 time-varying cost
trace with its peak/jump/terrace circumstances.
"""

from .arrivals import (
    Arrival,
    arrivals_from_trace,
    iter_arrivals,
    merge_arrivals,
    uniform_values,
)
from .cache import (
    CACHE_MIN_TUPLES,
    cached_arrivals_from_trace,
    clear_trace_cache,
    trace_cache_dir,
    trace_cache_key,
)
from .costs import (
    Circumstance,
    constant_cost_trace,
    cost_trace,
    fig14_circumstances,
    fig14_cost_trace,
)
from .pareto import pareto_median, pareto_rate_trace, pareto_rate_trace_with_mean
from .patterns import (
    constant_rate,
    piecewise_rate,
    ramp_rate,
    sinusoid_rate,
    square_rate,
    step_rate,
)
from .skew import hotspot_weights, multi_source_arrivals, skewed_source_traces
from .trace import CostTrace, RateTrace
from .web import load_ita_trace, web_rate_trace

#: replay exports resolved lazily (PEP 562) so `python -m
#: repro.workloads.replay` doesn't re-execute an already-imported module
#: (runpy's "found in sys.modules" warning)
_REPLAY_EXPORTS = frozenset({
    "TraceReplayer",
    "load_citibike_csv",
    "replay_over_socket",
    "replay_schedule",
})


def __getattr__(name):
    if name in _REPLAY_EXPORTS:
        from . import replay
        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Arrival",
    "CACHE_MIN_TUPLES",
    "Circumstance",
    "CostTrace",
    "RateTrace",
    "TraceReplayer",
    "arrivals_from_trace",
    "cached_arrivals_from_trace",
    "clear_trace_cache",
    "constant_cost_trace",
    "constant_rate",
    "cost_trace",
    "fig14_circumstances",
    "fig14_cost_trace",
    "hotspot_weights",
    "iter_arrivals",
    "load_citibike_csv",
    "load_ita_trace",
    "merge_arrivals",
    "multi_source_arrivals",
    "pareto_median",
    "pareto_rate_trace",
    "pareto_rate_trace_with_mean",
    "piecewise_rate",
    "ramp_rate",
    "replay_over_socket",
    "replay_schedule",
    "sinusoid_rate",
    "skewed_source_traces",
    "square_rate",
    "step_rate",
    "trace_cache_dir",
    "trace_cache_key",
    "uniform_values",
]
