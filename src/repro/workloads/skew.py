"""Skewed multi-source workloads (hotspot traffic for the service layer).

A sharded service routes *sources* to engine shards, so demonstrating the
value of global coordination needs workloads whose load is unevenly spread
across sources: one hotspot source offering a multiple of the others' rate
while every source shares the same temporal shape. These helpers build that
from any base :class:`~repro.workloads.trace.RateTrace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import WorkloadError
from .arrivals import Arrival, arrivals_from_trace, merge_arrivals
from .trace import RateTrace


def hotspot_weights(n_sources: int, hotspot_factor: float,
                    hotspot_index: int = 0) -> List[float]:
    """Per-source rate multipliers: one hotspot, the rest at weight 1.

    ``hotspot_factor`` is the hotspot's rate relative to a regular source
    (3.0 = three times the traffic). Weights multiply a per-source base
    rate; they are deliberately *not* renormalized, so adding a hotspot
    adds load rather than silently starving the other sources.
    """
    if n_sources < 1:
        raise WorkloadError("need at least one source")
    if hotspot_factor <= 0:
        raise WorkloadError(f"hotspot factor must be positive, got {hotspot_factor}")
    if not 0 <= hotspot_index < n_sources:
        raise WorkloadError(
            f"hotspot index {hotspot_index} outside [0, {n_sources})"
        )
    weights = [1.0] * n_sources
    weights[hotspot_index] = hotspot_factor
    return weights


def skewed_source_traces(base: RateTrace,
                         weights: Sequence[float],
                         per_source_mean: Optional[float] = None,
                         names: Optional[Sequence[str]] = None
                         ) -> Dict[str, RateTrace]:
    """One rate trace per source: the base shape scaled per weight.

    Source ``j``'s trace has mean ``per_source_mean * weights[j]``
    (``per_source_mean`` defaults to the base trace's own mean), keeping
    every source's temporal pattern identical so shard-level differences
    come purely from the skew.
    """
    if not weights:
        raise WorkloadError("need at least one source weight")
    if names is not None and len(names) != len(weights):
        raise WorkloadError("names and weights must have the same length")
    mean = base.mean()
    if mean <= 0:
        raise WorkloadError("base trace must carry load")
    target = mean if per_source_mean is None else float(per_source_mean)
    if target <= 0:
        raise WorkloadError(f"per-source mean must be positive, got {target}")
    names = list(names) if names is not None else [
        f"s{j}" for j in range(len(weights))
    ]
    return {
        name: base.scaled(w * target / mean)
        for name, w in zip(names, weights)
    }


def multi_source_arrivals(traces: Dict[str, RateTrace],
                          n_fields: int = 4,
                          poisson: bool = False,
                          seed: Optional[int] = None) -> List[Arrival]:
    """Materialize several per-source traces as one merged arrival list.

    Each source gets an independent RNG derived from ``seed`` and its
    position, so the streams are mutually independent yet the whole
    workload stays reproducible (and picklable-job friendly).
    """
    if not traces:
        raise WorkloadError("need at least one source trace")
    streams = [
        arrivals_from_trace(trace, source=name, n_fields=n_fields,
                            poisson=poisson,
                            seed=None if seed is None else seed + 7919 * j)
        for j, (name, trace) in enumerate(traces.items())
    ]
    return merge_arrivals(*streams)


__all__ = [
    "hotspot_weights",
    "multi_source_arrivals",
    "skewed_source_traces",
]
