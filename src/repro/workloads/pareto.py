"""Long-tailed (Pareto) arrival-rate traces.

The paper's synthetic workload: "the number of data tuples per control
period follows a long-tailed (Pareto) distribution; the skewness of the
arrival rates is regulated by a bias factor beta" (Section 5, citing
Harchol-Balter et al.). Smaller beta means a heavier tail, i.e. burstier
input — the Fig. 17 robustness sweep uses beta in {0.1, 0.25, 0.5, 1,
1.25, 1.5}.

Per period the rate is drawn by inverse-CDF sampling of a Pareto
distribution, ``rate = scale / U**(1/beta)``, clipped to ``cap`` (a physical
limit on how fast sources can emit; the paper's Fig. 13 trace tops out near
800 tuples/s).
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import WorkloadError
from .trace import RateTrace


def pareto_rate_trace(n_periods: int,
                      beta: float = 1.0,
                      scale: float = 100.0,
                      cap: float = 800.0,
                      period: float = 1.0,
                      seed: Optional[int] = None) -> RateTrace:
    """Draw a per-period Pareto rate trace.

    ``scale`` is the minimum (and modal) rate; the median is
    ``scale * 2**(1/beta)``. Rates are clipped to ``cap``.
    """
    if n_periods < 1:
        raise WorkloadError("need at least one period")
    if beta <= 0:
        raise WorkloadError(f"bias factor beta must be positive, got {beta}")
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    if cap < scale:
        raise WorkloadError(f"cap {cap} below scale {scale}")
    rng = random.Random(seed)
    values = []
    for __ in range(n_periods):
        u = rng.random()
        # guard the open interval: u == 0 would blow up
        u = max(u, 1e-12)
        rate = scale / (u ** (1.0 / beta))
        values.append(min(rate, cap))
    return RateTrace(values, period)


def pareto_median(beta: float, scale: float) -> float:
    """Closed-form median of the (unclipped) per-period rate."""
    if beta <= 0 or scale <= 0:
        raise WorkloadError("beta and scale must be positive")
    return scale * 2.0 ** (1.0 / beta)


def pareto_rate_trace_with_mean(n_periods: int,
                                beta: float,
                                target_mean: float,
                                cap: float = 800.0,
                                period: float = 1.0,
                                seed: Optional[int] = None) -> RateTrace:
    """A Pareto trace rescaled so its empirical mean equals ``target_mean``.

    Used by the Fig. 17 burstiness sweep: traces with different beta must
    carry the same average load, otherwise the sweep confounds burstiness
    with offered load.
    """
    if target_mean <= 0:
        raise WorkloadError("target mean must be positive")
    if target_mean >= cap:
        raise WorkloadError(f"target mean {target_mean} must be below cap {cap}")
    raw = pareto_rate_trace(n_periods, beta=beta, scale=1.0,
                            cap=float("inf"), period=period, seed=seed)
    # fixed-point iteration on the scale: clipping removes tail mass, so a
    # single rescale undershoots badly for heavy tails (small beta)
    factor = target_mean / raw.mean()
    clipped = raw
    for __ in range(100):
        clipped = RateTrace([min(v * factor, cap) for v in raw], period)
        mean = clipped.mean()
        if abs(mean - target_mean) <= 1e-3 * target_mean:
            break
        factor *= target_mean / mean
    return clipped
