"""repro — control-based load shedding for stream databases.

A full reproduction of Tu, Liu, Prabhakar & Yao, *Load Shedding in Stream
Databases: A Control-Based Approach* (VLDB 2006): a Borealis-like stream
engine, the feedback-control load-shedding framework, the AURORA and
BASELINE comparators, workload generators, and the experiment harness that
regenerates every figure in the paper's evaluation.

See README.md for a quickstart; the main entry points are:

* :mod:`repro.dsms` — the stream engine substrate,
* :mod:`repro.core` — model, controllers, monitor, actuator, control loop,
* :mod:`repro.workloads` — arrival-rate and cost traces,
* :mod:`repro.experiments` — one runner per paper figure,
* :mod:`repro.service` — the sharded multi-stream service layer,
* :mod:`repro.obs` — live observability: event bus, metrics registry,
  per-period tracing, and fleet health detectors.
"""

__version__ = "1.0.0"

from .errors import (
    ControlError,
    ExperimentError,
    NetworkError,
    ObservabilityError,
    ReproError,
    SchedulingError,
    ServeError,
    ServiceError,
    SheddingError,
    UnstableDesignError,
    WorkloadError,
)

__all__ = [
    "ControlError",
    "ExperimentError",
    "NetworkError",
    "ObservabilityError",
    "ReproError",
    "SchedulingError",
    "ServeError",
    "ServiceError",
    "SheddingError",
    "UnstableDesignError",
    "WorkloadError",
    "__version__",
]
