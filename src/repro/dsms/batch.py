"""Vectorized fluid engine backend.

Two layers live here. :class:`FluidLanes` is the numpy kernel: ``G``
independent Eq. 2 virtual queues ("lanes") advanced one control period per
call with pure array math, plus a closed-form :meth:`FluidLanes.integrate`
that runs *whole traces* for a whole grid of configurations in a handful of
array ops (the Lindley recursion ``q_k = max(0, q_{k-1} + a_k - cap_k)``
unrolled via ``cumsum`` + ``minimum.accumulate``).

:class:`BatchFluidEngine` wraps the same fluid model in the scalar
:class:`~repro.dsms.protocol.EngineProtocol` surface so monitors, actuators
and the control loop can drive it like any other backend. Unlike
:class:`~repro.dsms.fluid.VirtualQueueEngine` it does not serve tuple by
tuple: each ``run_until`` span integrates the fluid model over the span in
O(1) and then emits integer :class:`~repro.dsms.engine.Departure` records by
interpolating the cumulative-service curve — see THEORY.md §8 for why this
is exact for the Eq. 2 model when rates are piecewise-constant within a
span. It advertises ``prefers_bulk_submit`` so the control loop hands it a
whole period of arrivals at once instead of advancing per arrival.

numpy is optional (the ``repro[fast]`` extra); importing this module
without it is fine, constructing the classes is not.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import BackendError, SchedulingError
from .engine import Departure, note_late_arrival

try:  # pragma: no cover - exercised implicitly by every test below
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

HAVE_NUMPY = _np is not None


def require_numpy() -> None:
    """Raise :class:`~repro.errors.BackendError` when numpy is missing."""
    if not HAVE_NUMPY:
        raise BackendError(
            "the 'batch' engine backend requires numpy; install the fast "
            "extra: pip install 'repro[fast]'"
        )


class FluidLanes:
    """A stacked grid of Eq. 2 virtual queues advanced with array math.

    Each of the ``n_lanes`` lanes is one (config, trace) point of a sweep
    grid. State is held as float arrays: queue length ``q`` (tuples),
    cumulative ``admitted``/``departed``/``shed`` and ``cpu_used``. The
    driver calls :meth:`run_period` once per control period with the
    per-lane offered tuple counts and CPU budgets; everything inside is a
    few vector ops, so grid size is near-free.
    """

    def __init__(self, n_lanes: int, cost, headroom=0.97):
        require_numpy()
        if n_lanes <= 0:
            raise SchedulingError(f"need at least one lane, got {n_lanes}")
        self.n_lanes = int(n_lanes)
        self.cost = _np.broadcast_to(
            _np.asarray(cost, dtype=float), (self.n_lanes,)).copy()
        self.headroom = _np.broadcast_to(
            _np.asarray(headroom, dtype=float), (self.n_lanes,)).copy()
        if _np.any(self.cost <= 0):
            raise SchedulingError("per-tuple cost must be positive")
        if _np.any((self.headroom <= 0) | (self.headroom > 1.0)):
            raise SchedulingError("headroom must be in (0, 1]")
        self.q = _np.zeros(self.n_lanes)
        self.admitted = _np.zeros(self.n_lanes)
        self.departed = _np.zeros(self.n_lanes)
        self.shed = _np.zeros(self.n_lanes)
        self.cpu_used = _np.zeros(self.n_lanes)

    def run_period(self, offered, cpu_seconds, cost=None):
        """Advance every lane one period; return tuples served per lane.

        ``offered`` is the admitted arrival count per lane for the period,
        ``cpu_seconds`` the CPU budget available to query processing (the
        caller has already taken headroom and overhead out of it), and
        ``cost`` the per-tuple CPU cost for the period (defaults to the
        lanes' base cost).
        """
        offered = _np.asarray(offered, dtype=float)
        cpu_seconds = _np.asarray(cpu_seconds, dtype=float)
        cost_now = self.cost if cost is None else _np.asarray(cost, dtype=float)
        cap = cpu_seconds / cost_now
        backlog = self.q + offered
        q_new = _np.maximum(0.0, backlog - cap)
        served = backlog - q_new
        self.q = q_new
        self.admitted += offered
        self.departed += served
        self.cpu_used += served * cost_now
        return served

    def drop(self, counts):
        """Shed up to ``counts`` queued tuples per lane; return the drops.

        Mirrors the scalar engines' bookkeeping: dropped tuples count as
        departed *and* shed.
        """
        counts = _np.asarray(counts, dtype=float)
        dropped = _np.minimum(_np.maximum(counts, 0.0), self.q)
        self.q -= dropped
        self.shed += dropped
        self.departed += dropped
        return dropped

    @staticmethod
    def integrate(offered, caps, q0=0.0):
        """Closed-form Eq. 2 trajectories for whole stacked traces.

        ``offered`` and ``caps`` are arrays of per-period arrival counts and
        service capacities (tuples) with the period axis last; leading axes
        enumerate grid points. Returns ``(q, served)`` with the same shape:
        the queue length at each period *end* and the tuples served in each
        period, computed without a Python loop via the Lindley recursion

        ``q_k = S_k - min(0, min_{j<=k} S_j)``, ``S_k = q_0 + cumsum(a - cap)``.
        """
        require_numpy()
        offered = _np.asarray(offered, dtype=float)
        caps = _np.broadcast_to(_np.asarray(caps, dtype=float), offered.shape)
        q0a = _np.asarray(q0, dtype=float)
        if q0a.ndim:
            q0a = q0a[..., None]
        s = _np.cumsum(offered - caps, axis=-1) + q0a
        m = _np.minimum.accumulate(_np.minimum(s, 0.0), axis=-1)
        q = s - m
        prev = _np.concatenate(
            [_np.broadcast_to(q0a, q[..., :1].shape), q[..., :-1]], axis=-1)
        served = prev + offered - q
        return q, served


class BatchFluidEngine:
    """Span-integrating fluid engine behind the scalar engine protocol.

    Functionally equivalent to
    :class:`~repro.dsms.fluid.VirtualQueueEngine` (same virtual FIFO, same
    counters) but integrates each ``run_until`` span in O(1) instead of
    looping per tuple, treating within-span arrivals as a uniform fluid
    inflow. ``multiplier_period`` declares the granularity at which
    ``cost_multiplier`` is piecewise-constant (a cost trace's period);
    spans are split on that grid so the varying cost is sampled exactly.
    """

    #: the control loop may submit a whole period at once and skip the
    #: per-arrival clock advance — this engine bins arrivals anyway
    prefers_bulk_submit = True

    def __init__(self, cost: float = 1.0 / 190.0,
                 headroom: float = 0.97,
                 cost_multiplier: Optional[Callable[[float], float]] = None,
                 multiplier_period: Optional[float] = None):
        require_numpy()
        if cost <= 0:
            raise SchedulingError(f"per-tuple cost must be positive, got {cost}")
        if not 0.0 < headroom <= 1.0:
            raise SchedulingError(f"headroom must be in (0, 1], got {headroom}")
        if multiplier_period is not None and multiplier_period <= 0:
            raise SchedulingError("multiplier_period must be positive")
        self.base_cost = float(cost)
        self.headroom = float(headroom)
        self.cost_multiplier = cost_multiplier or (lambda t: 1.0)
        self.multiplier_period = multiplier_period

        self.now = 0.0
        self._pending: Deque[float] = deque()  # submitted, not yet admitted
        self._queue: Deque[float] = deque()    # admitted arrival timestamps
        self._served = 0.0        # lifetime fractional tuples served
        self._completions = 0     # lifetime whole service completions
        self._last_departure = 0.0
        self.admitted_total = 0
        self.departed_total = 0
        self.shed_total = 0
        self.late_arrivals = 0
        self.cpu_used = 0.0
        self._late_warned = False
        self._departures: List[Departure] = []

    # ------------------------------------------------------------------ #
    # interface shared with the other engines
    # ------------------------------------------------------------------ #
    def submit(self, time: float, values: Tuple = (), source: str = "in",
               trace=None) -> None:
        """Buffer one arrival; timestamps must be non-decreasing.

        As in the fluid engine, ``values``/``source``/``trace`` carry no
        information in the single-FIFO model and are intentionally ignored.
        """
        if time < self.now:
            self.late_arrivals += 1
            note_late_arrival(self, time)
            time = self.now  # late submission: arrives "now"
        if self._pending and time < self._pending[-1]:
            raise SchedulingError("submit arrivals in time order")
        self._pending.append(time)

    def submit_many(self, arrivals) -> None:
        """Buffer a time-ordered batch of ``(time, values, source)`` arrivals."""
        for time, values, source in arrivals:
            self.submit(time, values, source)

    @property
    def outstanding(self) -> int:
        """The virtual queue length q (tuples admitted but not departed)."""
        return self.admitted_total - self.departed_total

    @property
    def queued_tuples(self) -> int:
        """Admitted tuples not yet fully served (includes a partial head)."""
        return len(self._queue)

    def drain_departures(self) -> List[Departure]:
        """Return and clear the departures recorded since the last call."""
        out = self._departures
        self._departures = []
        return out

    def effective_cost(self, at: Optional[float] = None) -> float:
        """Expected CPU seconds per tuple (the paper's ``c``) at time ``at``."""
        t = self.now if at is None else at
        return self.base_cost * self.cost_multiplier(t)

    def run_until(self, t_end: float) -> None:
        """Integrate the fluid queue forward to virtual time ``t_end``."""
        if t_end < self.now:
            raise SchedulingError(f"cannot run backwards to t={t_end}")
        mp = self.multiplier_period
        if mp:
            # split on the grid where the cost multiplier may step
            k = math.floor(self.now / mp) + 1
            while k * mp < t_end - 1e-12:
                self._advance_span(k * mp)
                k += 1
        self._advance_span(t_end)
        self._ingest_due()

    def flush(self) -> None:
        """No buffered operator state in the fluid model."""

    def consume_cpu(self, seconds: float) -> None:
        """Charge non-query CPU work; the queue does not drain meanwhile."""
        if seconds < 0:
            raise SchedulingError("cannot consume negative CPU time")
        self.cpu_used += seconds
        self.now += seconds / self.headroom
        self._ingest_due()

    # ------------------------------------------------------------------ #
    # in-network shedding support (same surface as VirtualQueueEngine)
    # ------------------------------------------------------------------ #
    def shed_oldest(self, count: int) -> int:
        """Drop up to ``count`` tuples from the head of the virtual queue."""
        return self._shed(count, oldest=True)

    def shed_newest(self, count: int) -> int:
        """Drop up to ``count`` tuples from the tail of the virtual queue."""
        return self._shed(count, oldest=False)

    def _shed(self, count: int, oldest: bool) -> int:
        if count < 0:
            raise SchedulingError("shed count must be non-negative")
        count = min(count, len(self._queue))
        for __ in range(count):
            if oldest:
                arrived = self._queue.popleft()
                # partial work on the in-service head is discarded
                self._served = float(self._completions)
            else:
                arrived = self._queue.pop()
            self.departed_total += 1
            self.shed_total += 1
            self._departures.append(Departure(arrived, self.now, True))
        return count

    # ------------------------------------------------------------------ #
    # stacked whole-grid integration
    # ------------------------------------------------------------------ #
    @staticmethod
    def stacked(offered, caps, q0=0.0):
        """Integrate a whole grid of Eq. 2 traces in one vectorized call.

        ``offered``/``caps`` are per-period arrival counts and service
        capacities (tuples) with the period axis last and grid points
        stacked on the leading axes; returns ``(q, served)`` trajectories.
        Thin alias for :meth:`FluidLanes.integrate` so sweep drivers can
        stay on the engine-backend vocabulary.
        """
        return FluidLanes.integrate(offered, caps, q0)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ingest_due(self) -> None:
        while self._pending and self._pending[0] <= self.now:
            self._queue.append(self._pending.popleft())
            self.admitted_total += 1

    def _advance_span(self, t_end: float) -> None:
        """Fluid-integrate one span over which the cost is constant."""
        delta = t_end - self.now
        if delta <= 0:
            self._ingest_due()
            return
        t0 = self.now
        cost = self.base_cost * self.cost_multiplier(t0)
        rate = self.headroom / cost  # service rate, tuples/second

        # admit every arrival that lands inside the span; within the span
        # they are treated as a uniform fluid inflow of a/delta tuples/s
        arrivals = 0
        while self._pending and self._pending[0] <= t_end:
            self._queue.append(self._pending.popleft())
            self.admitted_total += 1
            arrivals += 1

        progress = self._served - self._completions
        q0 = len(self._queue) - arrivals - progress
        if q0 < 0.0:
            q0 = 0.0
        lam = arrivals / delta
        if q0 <= 0.0 and arrivals == 0:
            self.now = t_end
            return

        # the queue drains at `rate` until empty at tau, then tracks arrivals
        if rate > lam:
            tau = q0 / (rate - lam)
        else:
            tau = math.inf
        if tau >= delta:
            t_knots = [t0, t_end]
            s_knots = [self._served, self._served + rate * delta]
        else:
            t_knots = [t0, t0 + tau, t_end]
            s_knots = [self._served,
                       self._served + rate * tau,
                       self._served + rate * tau + lam * (delta - tau)]
        served = min(s_knots[-1] - self._served, q0 + arrivals)

        # emit whole departures at the integer crossings of the service curve
        n_done = math.floor(self._served + served + 1e-9)
        if n_done > self._completions:
            targets = _np.arange(self._completions + 1, n_done + 1, dtype=float)
            times = _np.interp(targets, s_knots, t_knots)
            for dep_time in times:
                if not self._queue:  # float-edge guard
                    break
                arrived = self._queue.popleft()
                dep = max(float(dep_time), arrived, self._last_departure)
                self._last_departure = dep
                self.departed_total += 1
                self._completions += 1
                self._departures.append(Departure(arrived, dep, False))

        self._served += served
        if self._served < self._completions:  # float-edge guard
            self._served = float(self._completions)
        self.cpu_used += served * cost
        self.now = t_end
