"""Per-operator FIFO waiting queues.

Borealis places intermediate results in waiting queues of individual
operators and extracts them first-in-first-out (paper Section 4.2). Each
queued entry remembers the input port it is destined for (a window join has
two ports). The queue keeps enqueue/dequeue/shed counters so the monitor
and the in-network load shedder can account for outstanding load.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from .tuple_ import StreamTuple

#: one queued entry: (tuple, destination input port)
QueueEntry = Tuple[StreamTuple, int]


class OperatorQueue:
    """A FIFO queue in front of one operator.

    A single *watcher* callback may be attached (:meth:`set_watcher`); it is
    invoked with ``(name, nonempty)`` whenever the queue transitions between
    empty and non-empty. Incremental schedulers use this to track the set of
    serviceable operators without rescanning every queue per dispatched
    tuple.
    """

    __slots__ = ("name", "_items", "enqueued", "dequeued", "shed", "_watcher")

    def __init__(self, name: str):
        self.name = name
        self._items: Deque[QueueEntry] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.shed = 0
        self._watcher: Optional[Callable[[str, bool], None]] = None

    def set_watcher(self, watcher: Optional[Callable[[str, bool], None]]) -> None:
        """Attach (or clear) the empty/non-empty transition callback.

        The new watcher is immediately told the current state so it never
        starts out of sync with the queue contents.
        """
        self._watcher = watcher
        if watcher is not None:
            watcher(self.name, bool(self._items))

    def push(self, item: StreamTuple, port: int = 0) -> None:
        self._items.append((item, port))
        self.enqueued += 1
        if len(self._items) == 1 and self._watcher is not None:
            self._watcher(self.name, True)

    def pop(self) -> QueueEntry:
        if not self._items:
            raise IndexError(f"queue {self.name!r} is empty")
        self.dequeued += 1
        entry = self._items.popleft()
        if not self._items and self._watcher is not None:
            self._watcher(self.name, False)
        return entry

    def peek(self) -> QueueEntry:
        if not self._items:
            raise IndexError(f"queue {self.name!r} is empty")
        return self._items[0]

    def shed_fraction(self, fraction: float, rng: random.Random) -> List[StreamTuple]:
        """Randomly remove ~``fraction`` of queued tuples; return the victims.

        This is the primitive used by the in-network shedder the authors
        built for their evaluation ("allows shedding from the queue and
        randomly selects shedding locations").
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"shed fraction {fraction} outside [0, 1]")
        if fraction == 0.0 or not self._items:
            return []
        keep: Deque[QueueEntry] = deque()
        victims: List[StreamTuple] = []
        for entry in self._items:
            if rng.random() < fraction:
                victims.append(entry[0])
            else:
                keep.append(entry)
        self._items = keep
        self.shed += len(victims)
        if victims and not self._items and self._watcher is not None:
            self._watcher(self.name, False)
        return victims

    def shed_count(self, count: int, rng: random.Random) -> List[StreamTuple]:
        """Randomly remove up to ``count`` queued tuples; return the victims."""
        if count < 0:
            raise ValueError("shed count must be non-negative")
        count = min(count, len(self._items))
        if count == 0:
            return []
        indices = set(rng.sample(range(len(self._items)), count))
        keep: Deque[QueueEntry] = deque()
        victims: List[StreamTuple] = []
        for i, entry in enumerate(self._items):
            if i in indices:
                victims.append(entry[0])
            else:
                keep.append(entry)
        self._items = keep
        self.shed += len(victims)
        if victims and not self._items and self._watcher is not None:
            self._watcher(self.name, False)
        return victims

    def clear(self) -> None:
        had_items = bool(self._items)
        self._items.clear()
        if had_items and self._watcher is not None:
            self._watcher(self.name, False)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        return f"OperatorQueue({self.name!r}, depth={len(self._items)})"
