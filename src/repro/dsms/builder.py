"""Prebuilt query networks.

:func:`identification_network` reconstructs the role of the paper's
14-operator Borealis network (Section 4.2): fixed per-operator CPU costs and
filter selectivities pinned by uniformly distributed input values, so the
expected cost per source tuple is a known constant. The paper's network has
capacity ~190 tuples/s at H=1, i.e. an expected cost of ~5.26 ms/tuple; we
solve for the per-operator cost that yields any requested capacity.

:func:`monitoring_network` is a richer branched network with a window join
and an aggregate, used by the examples (network-monitoring style queries as
in the paper's introduction).
"""

from __future__ import annotations

from ..errors import NetworkError
from .network import QueryNetwork
from .operators.stateless import FilterOperator, MapOperator, UnionOperator
from .operators.windowed import AggregateOperator, WindowJoinOperator
from .operators.base import Sink

#: default capacity of the identification network at H = 1 (paper: ~190/s)
DEFAULT_CAPACITY = 190.0


def identification_network(capacity: float = DEFAULT_CAPACITY) -> QueryNetwork:
    """A 14-operator branched network with constant expected per-tuple cost.

    Structure (one source; a split after ``m2`` copies tuples down both
    branches, re-merged by a union, mirroring paths I/III of the paper's
    Fig. 2)::

        src -> f1 -> m2 -+-> f3 -> m4 -> m5 -+-> u9 -> m10 -> f11 -> m12 -> m13 -> m14
                         +-> f6 -> m7 -> m8 -+

    Each filter tests a *different* value field (f1 -> field 0, f3 -> 1,
    f6 -> 2, f11 -> 3) so the predicates stay independent; feed the network
    tuples with at least four fields uniform on [0, 1) (see
    :func:`repro.workloads.arrivals.uniform_values`) and each filter's
    selectivity equals its threshold exactly. All operators share one cost
    ``kappa`` chosen so the expected total cost per source tuple is
    ``1 / capacity`` CPU seconds.
    """
    if capacity <= 0:
        raise NetworkError(f"capacity must be positive, got {capacity}")
    sel = {"f1": 0.9, "f3": 0.8, "f6": 0.7, "f11": 0.85}

    # expected visits per operator for this fixed structure
    visits = {}
    visits["f1"] = 1.0
    visits["m2"] = sel["f1"]
    visits["f3"] = visits["m2"]
    visits["m4"] = visits["m2"] * sel["f3"]
    visits["m5"] = visits["m4"]
    visits["f6"] = visits["m2"]
    visits["m7"] = visits["m2"] * sel["f6"]
    visits["m8"] = visits["m7"]
    visits["u9"] = visits["m5"] + visits["m8"]
    visits["m10"] = visits["u9"]
    visits["f11"] = visits["u9"]
    visits["m12"] = visits["u9"] * sel["f11"]
    visits["m13"] = visits["m12"]
    visits["m14"] = visits["m12"]
    total_visits = sum(visits.values())
    kappa = (1.0 / capacity) / total_visits

    net = QueryNetwork("identification-14op")
    net.add_source("src")
    net.add_operator(FilterOperator.threshold("f1", kappa, sel["f1"], field=0), ["src"])
    net.add_operator(MapOperator("m2", kappa), ["f1"])
    net.add_operator(FilterOperator.threshold("f3", kappa, sel["f3"], field=1), ["m2"])
    net.add_operator(MapOperator("m4", kappa), ["f3"])
    net.add_operator(MapOperator("m5", kappa), ["m4"])
    net.add_operator(FilterOperator.threshold("f6", kappa, sel["f6"], field=2), ["m2"])
    net.add_operator(MapOperator("m7", kappa), ["f6"])
    net.add_operator(MapOperator("m8", kappa), ["m7"])
    u9 = UnionOperator("u9", kappa)
    net.add_operator(u9, ["m5", "m8"])
    net.add_operator(MapOperator("m10", kappa), ["u9"])
    net.add_operator(FilterOperator.threshold("f11", kappa, sel["f11"], field=3), ["m10"])
    net.add_operator(MapOperator("m12", kappa), ["f11"])
    net.add_operator(MapOperator("m13", kappa), ["m12"])
    net.add_operator(MapOperator("m14", kappa), ["m13"])
    return net


def expected_identification_cost(capacity: float = DEFAULT_CAPACITY) -> float:
    """The analytic expected per-tuple cost of :func:`identification_network`."""
    return 1.0 / capacity


def chain_network(n_operators: int = 5, capacity: float = DEFAULT_CAPACITY,
                  selectivity: float = 1.0) -> QueryNetwork:
    """An unbranched chain of map/filter operators (paper Fig. 2 path II).

    When ``selectivity < 1`` the chain is built of filters, filter ``i``
    testing value field ``i`` (tuples must carry ``n_operators`` independent
    uniform fields for the configured selectivity to be realized).
    """
    if n_operators < 1:
        raise NetworkError("chain needs at least one operator")
    if not 0.0 < selectivity <= 1.0:
        raise NetworkError(f"selectivity {selectivity} outside (0, 1]")
    # expected visits: 1, s, s^2, ... -> geometric sum
    if selectivity == 1.0:
        total_visits = float(n_operators)
    else:
        total_visits = (1 - selectivity ** n_operators) / (1 - selectivity)
    kappa = (1.0 / capacity) / total_visits
    net = QueryNetwork(f"chain-{n_operators}")
    net.add_source("src")
    upstream = "src"
    for i in range(n_operators):
        if selectivity < 1.0:
            op = FilterOperator.threshold(f"op{i}", kappa, selectivity, field=i)
        else:
            op = MapOperator(f"op{i}", kappa)
        net.add_operator(op, [upstream])
        upstream = op.name
    return net


def monitoring_network(capacity: float = DEFAULT_CAPACITY,
                       join_window: float = 5.0,
                       aggregate_window: float = 1.0) -> QueryNetwork:
    """A two-source network with a window join and an aggregate.

    Shaped after the paper's motivating applications (network monitoring for
    intrusion detection): a flow stream joined against an alert stream,
    plus a per-second aggregate path. Costs are normalized so one tuple on
    the *flow* source has an expected cost near ``1/capacity``.
    """
    base = 1.0 / capacity
    net = QueryNetwork("monitoring")
    net.add_source("flows")
    net.add_source("alerts")
    # flow path: sanitize -> suspicious filter -> join with alerts
    net.add_operator(MapOperator("sanitize", 0.15 * base), ["flows"])
    net.add_operator(
        FilterOperator("suspicious", 0.2 * base,
                       lambda v: v[0] < 0.5),
        ["sanitize"],
    )
    net.add_operator(
        WindowJoinOperator("match_alerts", 0.25 * base, join_window,
                           key=lambda v: int(v[1]) if len(v) > 1 else 0),
        ["suspicious", "alerts"],
    )
    net.add_operator(Sink("alarm_out"), ["match_alerts"])
    # aggregate path: per-window tuple counts
    net.add_operator(
        AggregateOperator("traffic_stats", 0.2 * base, aggregate_window,
                          fn=lambda rows: (len(rows),)),
        ["sanitize"],
    )
    net.add_operator(Sink("stats_out"), ["traffic_stats"])
    return net
