"""Query network: a DAG of operators fed by named stream sources.

Matches the paper's Fig. 2 model: data from a stream can enter any number of
entry points; operators form branched or unbranched execution paths; multiple
downstream consumers of the same operator each receive a copy of its output
(an implicit split). The network also computes the static quantities the
load shedders need: per-location *load coefficients* (expected downstream CPU
cost of admitting one tuple at that location) and expected end-to-end cost
per source tuple.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import NetworkError
from .operators.base import Operator

#: sentinel prefix distinguishing source names from operator names
SOURCE = "source"


class QueryNetwork:
    """A DAG of named operators with named entry-point sources."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.operators: Dict[str, Operator] = {}
        #: operator name -> list of (downstream operator name, input port)
        self.downstream: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
        #: source name -> list of (entry operator name, input port)
        self.sources: Dict[str, List[Tuple[str, int]]] = {}
        #: number of input ports wired per operator
        self._in_ports: Dict[str, int] = defaultdict(int)
        # structure/cost caches; the topology cache is invalidated on every
        # wiring change, the cost cache whenever observed selectivities move
        self._topo_cache: Optional[List[str]] = None
        self._cost_cache_key: Optional[Tuple[float, ...]] = None
        self._cost_cache_value: float = 0.0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_source(self, name: str) -> str:
        if name in self.sources:
            raise NetworkError(f"duplicate source {name!r}")
        if name in self.operators:
            raise NetworkError(f"source name {name!r} collides with an operator")
        self.sources[name] = []
        return name

    def add_operator(self, op: Operator, inputs: Sequence[str]) -> Operator:
        """Add ``op`` consuming from sources and/or operators named in ``inputs``.

        Input port indices are assigned in the order given; a two-input join
        takes its left input from ``inputs[0]`` and right from ``inputs[1]``.
        """
        if op.name in self.operators or op.name in self.sources:
            raise NetworkError(f"duplicate operator name {op.name!r}")
        if op.arity is not None and len(inputs) != op.arity:
            raise NetworkError(
                f"operator {op.name!r} needs {op.arity} input(s), got {len(inputs)}"
            )
        if not inputs:
            raise NetworkError(f"operator {op.name!r} has no inputs")
        self.operators[op.name] = op
        for port, upstream in enumerate(inputs):
            if upstream in self.sources:
                self.sources[upstream].append((op.name, port))
            elif upstream in self.operators:
                if upstream == op.name:
                    raise NetworkError(f"operator {op.name!r} cannot feed itself")
                self.downstream[upstream].append((op.name, port))
            else:
                raise NetworkError(
                    f"unknown input {upstream!r} for operator {op.name!r}"
                )
            self._in_ports[op.name] += 1
        self._topo_cache = None
        self._cost_cache_key = None
        self._check_acyclic()
        return op

    def _check_acyclic(self) -> None:
        order = self.topological_order()
        if len(order) != len(self.operators):
            raise NetworkError("query network contains a cycle")

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[str]:
        """Operator names in a valid execution order (sources first).

        Cached between wiring changes; a fresh list is returned each call
        so callers may keep or mutate their copy freely.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        order = self._compute_topological_order()
        if len(order) == len(self.operators):
            # only a complete (acyclic) order is worth caching
            self._topo_cache = order
        return list(order)

    def _compute_topological_order(self) -> List[str]:
        indegree: Dict[str, int] = {name: 0 for name in self.operators}
        for edges in self.downstream.values():
            for succ, __ in edges:
                indegree[succ] += 1
        entry_counts: Dict[str, int] = defaultdict(int)
        for edges in self.sources.values():
            for succ, __ in edges:
                entry_counts[succ] += 1
        ready = deque(sorted(
            name for name, deg in indegree.items()
            if deg == 0
        ))
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for succ, __ in self.downstream.get(name, []):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        return order

    def entry_points(self) -> List[Tuple[str, str, int]]:
        """All (source, operator, port) triples where data enters the network."""
        return [
            (source, op_name, port)
            for source, edges in self.sources.items()
            for op_name, port in edges
        ]

    def successors(self, op_name: str) -> List[Tuple[str, int]]:
        return list(self.downstream.get(op_name, []))

    def outputs(self) -> List[str]:
        """Operators with no downstream consumers (network exits)."""
        return [name for name in self.operators if not self.downstream.get(name)]

    def validate(self) -> None:
        """Raise :class:`NetworkError` on structural problems."""
        if not self.operators:
            raise NetworkError("query network has no operators")
        reachable: Set[str] = set()
        frontier = deque(op for __, op, _p in self.entry_points())
        while frontier:
            name = frontier.popleft()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(succ for succ, __ in self.downstream.get(name, []))
        unreachable = set(self.operators) - reachable
        if unreachable:
            raise NetworkError(
                f"operators unreachable from any source: {sorted(unreachable)}"
            )

    # ------------------------------------------------------------------ #
    # static cost analysis
    # ------------------------------------------------------------------ #
    def expected_visits(self, selectivities: Optional[Dict[str, float]] = None
                        ) -> Dict[str, float]:
        """Expected number of executions of each operator per source tuple.

        ``selectivities`` maps operator name to its expected output/input
        ratio (defaults to each operator's observed :attr:`selectivity`).
        A source tuple entering multiple entry points, or an operator output
        copied to several consumers, multiplies visit counts accordingly —
        exactly the weighted-average argument behind the paper's Eq. 2.
        """
        sel = selectivities or {}
        visits: Dict[str, float] = defaultdict(float)
        for __, op_name, _port in self.entry_points():
            visits[op_name] += 1.0
        for name in self.topological_order():
            op = self.operators[name]
            s = sel.get(name, op.selectivity)
            outflow = visits[name] * s
            for succ, __ in self.downstream.get(name, []):
                visits[succ] += outflow
        return dict(visits)

    def expected_cost(self, selectivities: Optional[Dict[str, float]] = None) -> float:
        """Expected total CPU seconds per source tuple (the paper's ``c``).

        The no-argument form (observed selectivities) is cached: the cache
        key is the tuple of current operator selectivities, so any
        selectivity update — every recorded execution can move one —
        invalidates it automatically, while repeated queries against an
        unchanged network are O(#operators) comparisons instead of a full
        topological traversal.
        """
        if selectivities is not None:
            visits = self.expected_visits(selectivities)
            return sum(self.operators[name].cost * v
                       for name, v in visits.items())
        key = tuple(op.selectivity for op in self.operators.values())
        if key != self._cost_cache_key:
            visits = self.expected_visits()
            self._cost_cache_value = sum(self.operators[name].cost * v
                                         for name, v in visits.items())
            self._cost_cache_key = key
        return self._cost_cache_value

    def load_coefficients(self, selectivities: Optional[Dict[str, float]] = None
                          ) -> Dict[str, float]:
        """CPU seconds saved per tuple dropped *in front of* each operator.

        This is the "load coefficient" of the Aurora load-shedding work:
        the cost of the operator itself plus, scaled by its selectivity, the
        coefficients of all its consumers. Drop locations with high
        coefficients save the most processing per victim.
        """
        sel = selectivities or {}
        coeffs: Dict[str, float] = {}
        for name in reversed(self.topological_order()):
            op = self.operators[name]
            s = sel.get(name, op.selectivity)
            downstream_cost = sum(
                coeffs[succ] for succ, __ in self.downstream.get(name, [])
            )
            coeffs[name] = op.cost + s * downstream_cost
        return coeffs

    def reset(self) -> None:
        """Reset all operator state and statistics."""
        for op in self.operators.values():
            op.reset()

    def __len__(self) -> int:
        return len(self.operators)

    def __contains__(self, name: str) -> bool:
        return name in self.operators

    def __repr__(self) -> str:
        return (f"QueryNetwork({self.name!r}, operators={len(self.operators)}, "
                f"sources={list(self.sources)})")
