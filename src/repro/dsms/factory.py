"""Engine-backend registry and factory.

Every layer that needs an engine — the control loop, the service shards,
the sweep drivers — goes through :func:`make_engine` instead of naming an
engine class, so the backend becomes configuration:

``"full"``
    the discrete-event :class:`~repro.dsms.engine.Engine` over a real query
    network (highest fidelity; needs a ``network=`` keyword);
``"fluid"``
    the scalar :class:`~repro.dsms.fluid.VirtualQueueEngine` (the paper's
    Eq. 2 virtual queue, served tuple by tuple);
``"batch"``
    the :class:`~repro.dsms.batch.BatchFluidEngine` (same fluid model,
    integrated a whole span at a time with numpy; needs ``repro[fast]``).

Extensions register under new names with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import BackendError
from ..obs.bus import get_bus
from ..obs.events import BackendSelected
from .batch import BatchFluidEngine
from .engine import Engine
from .fluid import VirtualQueueEngine

BACKENDS: Dict[str, Callable[..., object]] = {
    "full": Engine,
    "fluid": VirtualQueueEngine,
    "batch": BatchFluidEngine,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_engine`, sorted."""
    return tuple(sorted(BACKENDS))


def register_backend(name: str, builder: Callable[..., object],
                     overwrite: bool = False) -> None:
    """Register ``builder`` as an engine backend under ``name``.

    ``builder`` is any callable returning an object satisfying
    :class:`~repro.dsms.protocol.EngineProtocol`. Re-registering an
    existing name raises unless ``overwrite`` is set.
    """
    if not name or not isinstance(name, str):
        raise BackendError(f"backend name must be a non-empty string, got {name!r}")
    if name in BACKENDS and not overwrite:
        raise BackendError(
            f"backend {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    BACKENDS[name] = builder


def make_engine(backend: str = "full", **kwargs):
    """Construct an engine through the backend registry.

    ``kwargs`` are forwarded to the backend's constructor (e.g.
    ``network=``/``scheduler=`` for ``"full"``, ``cost=``/``headroom=`` for
    the fluid backends). Unknown names raise
    :class:`~repro.errors.BackendError` listing the registered ones.
    """
    try:
        builder = BACKENDS[backend]
    except KeyError:
        raise BackendError(
            f"unknown engine backend {backend!r}; registered backends: "
            f"{', '.join(available_backends())}"
        ) from None
    engine = builder(**kwargs)
    bus = get_bus()
    if bus:
        bus.emit(BackendSelected(backend=backend,
                                 engine=type(engine).__name__))
    return engine
