"""Stream tuple data model.

A :class:`StreamTuple` is one data item flowing through the query network.
Tuples derived from the same source arrival share a :class:`Lineage` object;
the engine uses the lineage's reference count to decide when the *source*
tuple has fully left the network (the paper measures delay "till it leaves
the query network", taking the longest path for branched plans — counting
the last derived tuple to finish implements exactly that).

Window residency inside join/aggregate operators deliberately does **not**
hold a lineage reference: the paper's delay is queueing plus processing
time, and a tuple sitting in a join window has already been processed.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple


class Lineage:
    """Book-keeping shared by every tuple derived from one source arrival."""

    __slots__ = ("arrived", "refcount", "shed", "_on_departed", "departed_at",
                 "trace")

    def __init__(self, arrived: float,
                 on_departed: Optional[Callable[["Lineage", float], None]] = None):
        #: wall-clock (virtual) time the source tuple reached the engine buffer
        self.arrived = arrived
        #: number of live derived tuples (including the source tuple itself)
        self.refcount = 1
        #: True when the tuple was discarded by a load shedder (lost data)
        self.shed = False
        #: virtual time at which the last derived tuple left the network
        self.departed_at: Optional[float] = None
        #: sampled per-tuple trace context (see repro.obs.tuptrace) or None;
        #: derived tuples share it because they share the lineage
        self.trace = None
        self._on_departed = on_departed

    def fork(self, copies: int) -> None:
        """Register ``copies`` additional live derived tuples."""
        if copies < 0:
            raise ValueError("cannot fork a negative number of copies")
        self.refcount += copies

    def release(self, now: float) -> bool:
        """Drop one reference; returns True when the source tuple departs."""
        if self.refcount <= 0:
            raise RuntimeError("lineage released more times than referenced")
        self.refcount -= 1
        if self.refcount == 0:
            self.departed_at = now
            if self._on_departed is not None:
                self._on_departed(self, now)
            return True
        return False

    @property
    def delay(self) -> Optional[float]:
        """Processing delay in seconds, or None while still outstanding."""
        if self.departed_at is None:
            return None
        return self.departed_at - self.arrived


class StreamTuple:
    """One data item: immutable values plus shared lineage."""

    __slots__ = ("values", "lineage", "source")

    def __init__(self, values: Tuple, lineage: Lineage, source: str = ""):
        self.values = values
        self.lineage = lineage
        self.source = source

    @property
    def arrived(self) -> float:
        return self.lineage.arrived

    def derive(self, values: Tuple) -> "StreamTuple":
        """A new tuple carrying this tuple's lineage (no refcount change).

        The caller (an operator emitting outputs) is responsible for the
        fork/release accounting; see :meth:`Lineage.fork`.
        """
        return StreamTuple(values, self.lineage, self.source)

    def __repr__(self) -> str:
        return f"StreamTuple({self.values!r}, arrived={self.arrived:.3f})"


def make_source_tuple(values: Tuple, arrived: float, source: str = "",
                      on_departed: Optional[Callable[[Lineage, float], None]] = None
                      ) -> StreamTuple:
    """Create a fresh source tuple with its own lineage."""
    return StreamTuple(values, Lineage(arrived, on_departed), source)
