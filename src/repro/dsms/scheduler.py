"""Operator schedulers.

The current version of Borealis uses a round-robin policy to schedule
operators (paper Section 4.2); queues are drained FIFO, so no tuple
priorities arise and the network behaves like one virtual FIFO queue — the
observation the whole control design rests on. :class:`RoundRobinScheduler`
reproduces that policy; :class:`TopologicalScheduler` is an alternative that
always drains upstream operators first (useful to show the model is
scheduler-robust, as the paper conjectures in Section 5.2).

Scheduling is on the engine's per-tuple hot path, so both schedulers keep
*incremental* bookkeeping: once :meth:`Scheduler.bind` attaches them to an
engine's queue map, enqueue/dequeue/shed transitions maintain the set of
non-empty queues and :meth:`next_operator` never rescans the whole
topological order. Calling :meth:`next_operator` with any *other* queue
map (as standalone unit tests do) falls back to the original scan, so the
observable policy is identical either way.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Set

from ..errors import SchedulingError
from .network import QueryNetwork
from .queues import OperatorQueue


class Scheduler(abc.ABC):
    """Chooses which operator queue the engine serves next."""

    def __init__(self, network: QueryNetwork):
        self.network = network
        #: the queue map this scheduler tracks incrementally (None = unbound)
        self._bound: Optional[Dict[str, OperatorQueue]] = None
        #: indices (into the topological order) of non-empty bound queues
        self._nonempty: Set[int] = set()
        self._index: Dict[str, int] = {}

    def bind(self, queues: Dict[str, OperatorQueue]) -> None:
        """Track ``queues`` incrementally via their transition watchers.

        The engine calls this once at construction. Binding is optional:
        an unbound scheduler (or one asked about a different queue map)
        behaves identically by scanning.
        """
        order = self._topological_order()
        self._index = {name: i for i, name in enumerate(order)}
        self._bound = queues
        self._nonempty = set()
        for name in order:
            queue = queues.get(name)
            if queue is not None:
                queue.set_watcher(self._on_transition)

    def _on_transition(self, name: str, nonempty: bool) -> None:
        idx = self._index.get(name)
        if idx is None:
            return
        if nonempty:
            self._nonempty.add(idx)
        else:
            self._nonempty.discard(idx)

    def _topological_order(self) -> List[str]:
        """The operator order this scheduler cycles/scans over."""
        return self.network.topological_order()

    @abc.abstractmethod
    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        """Name of the next operator with work, or None if all queues empty."""

    def reset(self) -> None:
        """Clear any scheduling state."""


class RoundRobinScheduler(Scheduler):
    """Serve operators in fixed cyclic order, one *train* per visit.

    By default (``batch=None``) each visit drains everything queued at the
    operator before moving on — Borealis' train processing. This keeps
    inventories bounded: with a fixed per-visit tuple quantum, an operator
    fed by two upstreams receives twice what it may serve per cycle and its
    queue grows without bound even below capacity. A finite ``batch`` is
    still available to study that effect.
    """

    def __init__(self, network: QueryNetwork, batch: Optional[int] = None):
        super().__init__(network)
        if batch is not None and batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self._order: List[str] = network.topological_order()
        self._cursor = 0
        self._remaining_in_visit = batch

    def _topological_order(self) -> List[str]:
        return self._order

    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        if not self._order:
            return None
        if self._bound is queues:
            return self._next_bound()
        return self._next_scanning(queues)

    def _next_bound(self) -> Optional[str]:
        nonempty = self._nonempty
        if not nonempty:
            return None
        # finish the current visit while the operator has work and quantum
        if self._cursor in nonempty and (self._remaining_in_visit is None
                                         or self._remaining_in_visit > 0):
            if self._remaining_in_visit is not None:
                self._remaining_in_visit -= 1
            return self._order[self._cursor]
        # advance cyclically: smallest non-empty index after the cursor,
        # wrapping to the smallest overall (which may be the cursor itself)
        cursor = self._cursor
        nxt = min((i for i in nonempty if i > cursor), default=None)
        if nxt is None:
            nxt = min(nonempty)
        self._cursor = nxt
        self._remaining_in_visit = None if self.batch is None else self.batch - 1
        return self._order[nxt]

    def _next_scanning(self, queues: Dict[str, OperatorQueue]
                       ) -> Optional[str]:
        n = len(self._order)
        current = self._order[self._cursor]
        if queues[current] and (self._remaining_in_visit is None
                                or self._remaining_in_visit > 0):
            if self._remaining_in_visit is not None:
                self._remaining_in_visit -= 1
            return current
        for step in range(1, n + 1):
            idx = (self._cursor + step) % n
            name = self._order[idx]
            if queues[name]:
                self._cursor = idx
                self._remaining_in_visit = None if self.batch is None else self.batch - 1
                return name
        return None

    def reset(self) -> None:
        # cursor state only: the topological order is immutable for a given
        # network and was computed once in __init__
        self._cursor = 0
        self._remaining_in_visit = self.batch


class DepthFirstScheduler(Scheduler):
    """Serve the most-downstream operator that has queued work.

    Pushes each tuple all the way through the network before admitting the
    next, so tuples are served in global arrival order with near-zero
    in-network inventory — the operator-granular realization of the paper's
    *virtual FIFO queue* idealization (Eq. 1: a tuple is not processed until
    all earlier outstanding tuples are cleared). This is the engine default
    because it is exactly the service discipline the paper's model assumes;
    the round-robin alternative reproduces Borealis' scheduler and yields
    the same average behaviour with lumpier departures.
    """

    def __init__(self, network: QueryNetwork):
        super().__init__(network)
        self._order = network.topological_order()

    def _topological_order(self) -> List[str]:
        return self._order

    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        if self._bound is queues:
            # depth-first keeps in-network inventory near zero, so the
            # non-empty set is tiny and max() beats a full reverse scan
            if not self._nonempty:
                return None
            return self._order[max(self._nonempty)]
        # serving the most DOWNSTREAM non-empty queue first pushes each tuple
        # through to the exit before starting the next one
        for name in reversed(self._order):
            if queues[name]:
                return name
        return None

    def reset(self) -> None:
        # stateless between tuples; the order is computed once in __init__
        pass


#: backwards-compatible alias (the discipline walks the topology depth-first)
TopologicalScheduler = DepthFirstScheduler
