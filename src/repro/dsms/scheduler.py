"""Operator schedulers.

The current version of Borealis uses a round-robin policy to schedule
operators (paper Section 4.2); queues are drained FIFO, so no tuple
priorities arise and the network behaves like one virtual FIFO queue — the
observation the whole control design rests on. :class:`RoundRobinScheduler`
reproduces that policy; :class:`TopologicalScheduler` is an alternative that
always drains upstream operators first (useful to show the model is
scheduler-robust, as the paper conjectures in Section 5.2).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from ..errors import SchedulingError
from .network import QueryNetwork
from .queues import OperatorQueue


class Scheduler(abc.ABC):
    """Chooses which operator queue the engine serves next."""

    def __init__(self, network: QueryNetwork):
        self.network = network

    @abc.abstractmethod
    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        """Name of the next operator with work, or None if all queues empty."""

    def reset(self) -> None:
        """Clear any scheduling state."""


class RoundRobinScheduler(Scheduler):
    """Serve operators in fixed cyclic order, one *train* per visit.

    By default (``batch=None``) each visit drains everything queued at the
    operator before moving on — Borealis' train processing. This keeps
    inventories bounded: with a fixed per-visit tuple quantum, an operator
    fed by two upstreams receives twice what it may serve per cycle and its
    queue grows without bound even below capacity. A finite ``batch`` is
    still available to study that effect.
    """

    def __init__(self, network: QueryNetwork, batch: Optional[int] = None):
        super().__init__(network)
        if batch is not None and batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self._order: List[str] = network.topological_order()
        self._cursor = 0
        self._remaining_in_visit = batch

    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        if not self._order:
            return None
        n = len(self._order)
        # finish the current visit while the operator has work and quantum
        current = self._order[self._cursor]
        if queues[current] and (self._remaining_in_visit is None
                                or self._remaining_in_visit > 0):
            if self._remaining_in_visit is not None:
                self._remaining_in_visit -= 1
            return current
        # advance cyclically to the next non-empty queue
        for step in range(1, n + 1):
            idx = (self._cursor + step) % n
            name = self._order[idx]
            if queues[name]:
                self._cursor = idx
                self._remaining_in_visit = None if self.batch is None else self.batch - 1
                return name
        return None

    def reset(self) -> None:
        self._cursor = 0
        self._remaining_in_visit = self.batch
        self._order = self.network.topological_order()


class DepthFirstScheduler(Scheduler):
    """Serve the most-downstream operator that has queued work.

    Pushes each tuple all the way through the network before admitting the
    next, so tuples are served in global arrival order with near-zero
    in-network inventory — the operator-granular realization of the paper's
    *virtual FIFO queue* idealization (Eq. 1: a tuple is not processed until
    all earlier outstanding tuples are cleared). This is the engine default
    because it is exactly the service discipline the paper's model assumes;
    the round-robin alternative reproduces Borealis' scheduler and yields
    the same average behaviour with lumpier departures.
    """

    def __init__(self, network: QueryNetwork):
        super().__init__(network)
        self._order = network.topological_order()

    def next_operator(self, queues: Dict[str, OperatorQueue]) -> Optional[str]:
        # serving the most DOWNSTREAM non-empty queue first pushes each tuple
        # through to the exit before starting the next one
        for name in reversed(self._order):
            if queues[name]:
                return name
        return None

    def reset(self) -> None:
        self._order = self.network.topological_order()


#: backwards-compatible alias (the discipline walks the topology depth-first)
TopologicalScheduler = DepthFirstScheduler
