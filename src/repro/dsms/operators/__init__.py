"""Query-network operators."""

from .base import Operator, Sink, StatelessOperator
from .stateless import (
    FilterOperator,
    MapOperator,
    RandomDropOperator,
    UnionOperator,
)
from .windowed import AggregateOperator, WindowJoinOperator

__all__ = [
    "AggregateOperator",
    "FilterOperator",
    "MapOperator",
    "Operator",
    "RandomDropOperator",
    "Sink",
    "StatelessOperator",
    "UnionOperator",
    "WindowJoinOperator",
]
