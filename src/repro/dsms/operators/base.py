"""Operator abstract base class.

Operators are the boxes of the query network (paper Fig. 2). Each has a
fixed nominal CPU cost per *input* tuple (the engine may scale it with a
time-varying multiplier to reproduce Fig. 14), and transforms one input
tuple into zero or more output tuples.

Stateless operators implement :meth:`Operator.apply`; stateful ones
(windowed join, aggregate) may also override :meth:`Operator.on_time` to
emit on watermark advancement.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ...errors import NetworkError
from ..tuple_ import StreamTuple


class Operator(abc.ABC):
    """One query-network box with a per-tuple CPU cost."""

    #: how many upstream inputs this operator accepts (None = any number)
    arity: Optional[int] = 1

    def __init__(self, name: str, cost: float):
        if not name:
            raise NetworkError("operator name must be non-empty")
        if cost < 0:
            raise NetworkError(f"operator {name!r} has negative cost {cost}")
        self.name = name
        #: nominal CPU seconds consumed per input tuple
        self.cost = float(cost)
        # runtime statistics (maintained by the engine / catalog)
        self.executions = 0
        self.emitted = 0

    def cost_of(self, tup: StreamTuple, port: int) -> float:
        """CPU seconds this particular execution will consume.

        Defaults to the fixed nominal :attr:`cost`; state-dependent
        operators (a window join scanning its opposite window) override
        this so window-size adaptation actually saves CPU.
        """
        return self.cost

    @abc.abstractmethod
    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        """Process one input tuple from input ``port``; return outputs.

        Implementations must create outputs with :meth:`StreamTuple.derive`
        so lineage is preserved. Reference counting convention: the engine
        forks the input's lineage once per *returned output that shares the
        input's lineage*, then releases the input's own reference. Operators
        that defer emission (e.g. window aggregates) must hold a reference
        themselves with ``lineage.fork(1)`` while retaining a tuple, and the
        eventual output transfers that held reference.
        """

    def on_time(self, now: float) -> List[StreamTuple]:
        """Hook for time-triggered emission (e.g. closing windows)."""
        return []

    def flush(self, now: float) -> List[StreamTuple]:
        """Force emission of any buffered state (end of run)."""
        return []

    def next_deadline(self) -> Optional[float]:
        """Virtual time at which :meth:`on_time` wants to run, if any.

        The engine jumps its idle clock to this instant so time-triggered
        emissions (window closes) happen on schedule even when no tuples
        arrive.
        """
        return None

    def reset(self) -> None:
        """Clear any operator state (windows) and statistics."""
        self.executions = 0
        self.emitted = 0

    @property
    def selectivity(self) -> float:
        """Observed output/input ratio (1.0 until first execution)."""
        if self.executions == 0:
            return 1.0
        return self.emitted / self.executions

    def record(self, n_out: int) -> None:
        """Update execution statistics (called by the engine)."""
        self.executions += 1
        self.emitted += n_out

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, cost={self.cost:g})"


def check_port(op: Operator, port: int, n_ports: int) -> None:
    """Validate an input port index for error messages."""
    if not 0 <= port < n_ports:
        raise NetworkError(
            f"operator {op.name!r} received input on port {port}, "
            f"but has only {n_ports} input port(s)"
        )


class StatelessOperator(Operator):
    """Convenience base for operators with no cross-tuple state."""

    def reset(self) -> None:
        super().reset()


class Sink(Operator):
    """Terminal operator: consumes tuples, emits nothing, costs nothing.

    Used to give query paths an explicit exit; the engine records the
    departure when the lineage reference count drops to zero.
    """

    def __init__(self, name: str, cost: float = 0.0):
        super().__init__(name, cost)
        self.consumed: int = 0

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        self.consumed += 1
        return []

    def reset(self) -> None:
        super().reset()
        self.consumed = 0
