"""Stateful windowed operators: sliding-window join and window aggregate.

Multi-stream joins in the paper's model are performed over sliding windows
whose size is specified either in number of tuples or in time (Section 3).
Window residency does not hold lineage references (see
:mod:`repro.dsms.tuple_`), so a tuple's delay stops accruing once it has
been processed into a window.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ...errors import NetworkError
from ..tuple_ import StreamTuple
from .base import Operator, check_port


class _Window:
    """A sliding window holding (timestamp, values) pairs."""

    __slots__ = ("size", "by_time", "_items")

    def __init__(self, size: float, by_time: bool):
        if size <= 0:
            raise NetworkError(f"window size must be positive, got {size}")
        self.size = size
        self.by_time = by_time
        self._items: Deque[Tuple[float, Tuple]] = deque()

    def insert(self, ts: float, values: Tuple) -> None:
        self._items.append((ts, values))
        self.evict(ts)

    def evict(self, now: float) -> None:
        if self.by_time:
            horizon = now - self.size
            while self._items and self._items[0][0] < horizon:
                self._items.popleft()
        else:
            while len(self._items) > self.size:
                self._items.popleft()

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()


class WindowJoinOperator(Operator):
    """Symmetric two-input sliding-window equi-join.

    A tuple arriving on one input probes the opposite window with
    ``key(values)`` and emits one concatenated output per match, then is
    inserted into its own window. ``window`` is seconds when
    ``window_in_time`` (default) or a tuple count otherwise.

    Cost model: each execution consumes ``cost`` (fixed) plus
    ``scan_cost`` per tuple currently stored in the opposite window —
    which is what makes *window-size adaptation* (the paper's adaptation
    (iii)) an effective actuator: :attr:`window_scale` in (0, 1] shrinks
    the effective window, trading join recall for CPU.
    """

    arity = 2

    def __init__(self, name: str, cost: float, window: float,
                 key: Callable[[Tuple], object],
                 window_in_time: bool = True,
                 scan_cost: float = 0.0):
        super().__init__(name, cost)
        if scan_cost < 0:
            raise NetworkError(f"scan cost must be non-negative, got {scan_cost}")
        self.key = key
        self.scan_cost = float(scan_cost)
        self.nominal_window = float(window)
        self._scale = 1.0
        self.windows = (_Window(window, window_in_time),
                        _Window(window, window_in_time))

    @property
    def window_scale(self) -> float:
        return self._scale

    @window_scale.setter
    def window_scale(self, scale: float) -> None:
        if not 0.0 < scale <= 1.0:
            raise NetworkError(f"window scale {scale} outside (0, 1]")
        self._scale = float(scale)
        for w in self.windows:
            w.size = self.nominal_window * scale

    def cost_of(self, tup: StreamTuple, port: int) -> float:
        check_port(self, port, 2)
        return self.cost + self.scan_cost * len(self.windows[1 - port])

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        check_port(self, port, 2)
        own = self.windows[port]
        other = self.windows[1 - port]
        other.evict(now)
        k = self.key(tup.values)
        outputs = [
            tup.derive(tup.values + stored_values)
            for __, stored_values in other
            if self.key(stored_values) == k
        ]
        own.insert(now, tup.values)
        return outputs

    def reset(self) -> None:
        super().reset()
        self._scale = 1.0
        for w in self.windows:
            w.size = self.nominal_window
            w.clear()


class AggregateOperator(Operator):
    """Tumbling-window aggregate over event (virtual) time.

    Collects input values for ``window`` seconds of engine time, then emits
    one tuple ``(window_end, *aggregate)`` where ``aggregate`` is the value
    tuple computed by ``fn`` over the list of collected value tuples. Uses :meth:`on_time` so windows close even when
    no tuple arrives exactly at the boundary.

    Deferred emission and lineage: the engine only forks lineage for outputs
    that share the triggering input's lineage (see
    :meth:`repro.dsms.engine.Engine`), so this operator explicitly *holds*
    one reference on the most recent contributor (the "carrier") and
    transfers it to the emitted aggregate. Earlier contributors are released
    normally as each is superseded.
    """

    def __init__(self, name: str, cost: float, window: float,
                 fn: Callable[[List[Tuple]], Tuple]):
        super().__init__(name, cost)
        if window <= 0:
            raise NetworkError(f"aggregate window must be positive, got {window}")
        self.window = float(window)
        self.fn = fn
        self._bucket: List[Tuple] = []
        self._bucket_end: Optional[float] = None
        self._carrier: Optional[StreamTuple] = None

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        out = self._close_if_due(now)
        if self._bucket_end is None:
            self._bucket_end = now + self.window
        self._bucket.append(tup.values)
        # swap the held carrier reference onto the newest contributor
        if self._carrier is not None:
            self._carrier.lineage.release(now)
        tup.lineage.fork(1)
        self._carrier = tup
        return out

    def on_time(self, now: float) -> List[StreamTuple]:
        return self._close_if_due(now)

    def next_deadline(self) -> Optional[float]:
        return self._bucket_end

    def flush(self, now: float) -> List[StreamTuple]:
        """Force-close an open window (used at end of run)."""
        if self._bucket_end is not None:
            self._bucket_end = now
        return self._close_if_due(now)

    def _close_if_due(self, now: float) -> List[StreamTuple]:
        if self._bucket_end is None or now < self._bucket_end or not self._bucket:
            return []
        carrier = self._carrier
        assert carrier is not None
        # the output reuses the reference held on the carrier (no fork here)
        result = carrier.derive((self._bucket_end,) + tuple(self.fn(self._bucket)))
        self._bucket = []
        self._bucket_end = None
        self._carrier = None
        return [result]

    def reset(self) -> None:
        super().reset()
        self._bucket = []
        self._bucket_end = None
        self._carrier = None
