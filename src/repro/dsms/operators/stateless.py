"""Stateless operators: filter, map, union, and the shedder's random drop.

These are the building blocks of the identification network (paper
Section 4.2: filters whose selectivity is pinned by uniformly distributed
input values, plus fixed-cost transformation boxes).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ...errors import NetworkError
from ..tuple_ import StreamTuple
from .base import Operator, StatelessOperator


class FilterOperator(StatelessOperator):
    """Emit the tuple unchanged when ``predicate(values)`` holds."""

    def __init__(self, name: str, cost: float,
                 predicate: Callable[[Tuple], bool]):
        super().__init__(name, cost)
        self.predicate = predicate

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        return [tup] if self.predicate(tup.values) else []

    @classmethod
    def threshold(cls, name: str, cost: float, selectivity: float,
                  field: int = 0) -> "FilterOperator":
        """A filter passing tuples whose ``field`` value is below ``selectivity``.

        With field values uniform on [0, 1) the pass rate equals
        ``selectivity`` exactly — the trick the paper uses to keep the
        network's expected cost constant during system identification.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise NetworkError(f"selectivity {selectivity} outside [0, 1]")
        return cls(name, cost, lambda values: values[field] < selectivity)


class MapOperator(StatelessOperator):
    """Apply ``fn`` to the value tuple; emit exactly one output."""

    def __init__(self, name: str, cost: float,
                 fn: Optional[Callable[[Tuple], Tuple]] = None):
        super().__init__(name, cost)
        self.fn = fn

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        if self.fn is None:
            return [tup]
        return [tup.derive(self.fn(tup.values))]


class UnionOperator(StatelessOperator):
    """Merge any number of input streams into one (pass-through)."""

    arity = None  # accepts any number of inputs

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        return [tup]


class RandomDropOperator(StatelessOperator):
    """Drop each tuple with probability ``drop_probability``.

    This is the primitive the Aurora load shedder inserts into the network;
    plans adjust :attr:`drop_probability` at runtime. Dropped tuples are
    counted so loss accounting can attribute data loss to shedding.
    """

    def __init__(self, name: str, cost: float = 0.0,
                 drop_probability: float = 0.0,
                 rng: Optional[random.Random] = None):
        super().__init__(name, cost)
        self._p = 0.0
        self.drop_probability = drop_probability
        self.dropped = 0
        self.rng = rng or random.Random()

    @property
    def drop_probability(self) -> float:
        return self._p

    @drop_probability.setter
    def drop_probability(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise NetworkError(f"drop probability {p} outside [0, 1]")
        self._p = float(p)

    def apply(self, tup: StreamTuple, port: int, now: float) -> List[StreamTuple]:
        if self._p > 0.0 and self.rng.random() < self._p:
            self.dropped += 1
            tup.lineage.shed = True
            return []
        return [tup]

    def reset(self) -> None:
        super().reset()
        self.dropped = 0
