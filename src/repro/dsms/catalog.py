"""Runtime statistics catalog.

Borealis estimates per-tuple processing cost and operator selectivities at
runtime (paper Section 4.2 refers to Section 4.2 of the Aurora load-shedding
paper for the procedure). :class:`Catalog` snapshots the engine's cumulative
counters; differencing two snapshots yields per-period measurements — the
``c(k)``, ``fin(k)``, ``fout(k)`` signals consumed by the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .engine import Engine


@dataclass(frozen=True)
class OperatorStats:
    """Cumulative per-operator statistics."""

    executions: int
    emitted: int
    selectivity: float


@dataclass(frozen=True)
class Snapshot:
    """Cumulative engine counters at one instant of virtual time."""

    time: float
    admitted: int
    departed: int
    shed: int
    cpu_used: float
    outstanding: int


@dataclass(frozen=True)
class PeriodStats:
    """Differenced statistics for one control period."""

    duration: float
    admitted: int            # tuples that entered the network this period
    departed: int            # source tuples that left this period
    shed: int                # departures lost to shedding this period
    cpu_used: float          # CPU seconds consumed this period
    outstanding: int         # virtual queue length at period end

    @property
    def delivered(self) -> int:
        """Source tuples that left by being *processed* (not culled)."""
        return self.departed - self.shed

    @property
    def inflow_rate(self) -> float:
        """fin(k) in tuples/second."""
        return self.admitted / self.duration if self.duration > 0 else 0.0

    @property
    def outflow_rate(self) -> float:
        """fout(k) in tuples/second: the *service* rate.

        Tuples culled by an in-network shedder also leave the queue, but
        counting them here would feed the controller's own shedding back as
        apparent service capacity (``v = u + fout``) and destabilize the
        loop, so only processed departures count.
        """
        return self.delivered / self.duration if self.duration > 0 else 0.0

    @property
    def cost_per_tuple(self) -> Optional[float]:
        """Measured CPU seconds per processed tuple (None when idle)."""
        if self.delivered <= 0:
            return None
        return self.cpu_used / self.delivered


class Catalog:
    """Snapshot/difference view over an engine's cumulative counters."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._last = self.snapshot()

    def snapshot(self) -> Snapshot:
        e = self.engine
        return Snapshot(
            time=e.now,
            admitted=e.admitted_total,
            departed=e.departed_total,
            shed=e.shed_total,
            cpu_used=e.cpu_used,
            outstanding=e.outstanding,
        )

    def period(self) -> PeriodStats:
        """Difference against the previous call; advances the baseline."""
        current = self.snapshot()
        last = self._last
        self._last = current
        return PeriodStats(
            duration=current.time - last.time,
            admitted=current.admitted - last.admitted,
            departed=current.departed - last.departed,
            shed=current.shed - last.shed,
            cpu_used=current.cpu_used - last.cpu_used,
            outstanding=current.outstanding,
        )

    def operator_stats(self) -> Dict[str, OperatorStats]:
        return {
            name: OperatorStats(op.executions, op.emitted, op.selectivity)
            for name, op in self.engine.network.operators.items()
        }
