"""The discrete-event query engine.

Executes a :class:`~repro.dsms.network.QueryNetwork` against a virtual CPU
clock: every operator execution on one tuple consumes the operator's nominal
cost (optionally scaled by a time-varying multiplier, reproducing the
paper's Fig. 14 cost variations) and advances virtual time by
``cost / headroom`` — the headroom factor ``H < 1`` models the fraction of
CPU available to query processing (paper Eq. 2).

Arrivals are submitted with timestamps; the engine interleaves ingestion and
operator scheduling so that queues and delays evolve exactly as in a
push-based DSMS. Per-source-tuple departures (the moment the *last* derived
tuple leaves the network) are recorded for delay metrics, and inflow/outflow
counters expose the paper's *virtual queue length* ``q``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..obs.bus import get_bus
from ..obs.events import LateArrival
from ..obs.logconf import get_logger
from .network import QueryNetwork
from .operators.base import Operator
from .queues import OperatorQueue
from .scheduler import DepthFirstScheduler, Scheduler
from .tuple_ import Lineage, StreamTuple, make_source_tuple

_log = get_logger("dsms")


class LateArrivalWarning(RuntimeWarning):
    """A tuple was submitted with a timestamp earlier than the engine clock.

    Kept for backward compatibility: the engines no longer raise Python
    warnings for late submissions — they emit
    :class:`~repro.obs.events.LateArrival` events on the bus (and fall back
    to one ``repro.dsms`` logger warning per run when nobody subscribes).
    See :func:`note_late_arrival`.
    """


def note_late_arrival(engine, submitted: float) -> None:
    """Announce a late submission (timestamp behind the engine clock).

    Shared by all engine backends. With a bus subscriber present this emits
    a :class:`~repro.obs.events.LateArrival` event per occurrence; without
    one it degrades to a single ``repro.dsms`` logger warning per run so an
    unobserved clock bug still surfaces exactly once. The caller has
    already bumped ``engine.late_arrivals``.
    """
    bus = getattr(engine, "bus", None)
    if bus is None:
        bus = get_bus()
    if bus:
        bus.emit(LateArrival(engine=type(engine).__name__,
                             submitted=submitted, clock=engine.now,
                             total=engine.late_arrivals))
    elif not engine._late_warned:
        engine._late_warned = True
        _log.warning(
            "arrival submitted at t=%.6f while the %s clock is already at "
            "t=%.6f; rewriting to 'now' (reported once per run; see "
            "late_arrivals for the total count)",
            submitted, type(engine).__name__, engine.now,
        )


@dataclass(frozen=True)
class Departure:
    """One source tuple that has fully left the network."""

    arrived: float
    departed: float
    shed: bool

    @property
    def delay(self) -> float:
        return self.departed - self.arrived


class Engine:
    """Discrete-event simulation of a Borealis-like query engine."""

    def __init__(self, network: QueryNetwork,
                 headroom: float = 0.97,
                 scheduler: Optional[Scheduler] = None,
                 cost_multiplier: Optional[Callable[[float], float]] = None,
                 rng: Optional[random.Random] = None):
        if not 0.0 < headroom <= 1.0:
            raise SchedulingError(f"headroom must be in (0, 1], got {headroom}")
        network.validate()
        self.network = network
        self.headroom = float(headroom)
        self.scheduler = scheduler or DepthFirstScheduler(network)
        self.cost_multiplier = cost_multiplier
        self.rng = rng or random.Random(0)

        self.now = 0.0
        self.queues: Dict[str, OperatorQueue] = {
            name: OperatorQueue(name) for name in network.operators
        }
        self.scheduler.bind(self.queues)
        # (time, values, source, trace) — trace is the sampled TraceContext
        # or None for the unsampled majority
        self._pending: Deque[Tuple[float, Tuple, str, object]] = deque()
        self._timed_ops: List[Operator] = [
            op for op in network.operators.values()
            if type(op).on_time is not Operator.on_time
        ]
        self._timed_names = frozenset(op.name for op in self._timed_ops)
        # cached earliest timer deadline; recomputed lazily when dirty
        self._deadline_cache: Optional[float] = None
        self._deadline_dirty = True

        # counters (cumulative over the whole run)
        self.admitted_total = 0      # source tuples entering the network
        self.departed_total = 0      # source tuples fully departed
        self.shed_total = 0          # departures lost to shedding
        self.late_arrivals = 0       # submissions with timestamps in the past
        self.cpu_used = 0.0          # CPU seconds consumed by operators
        self._late_warned = False
        self._departures: List[Departure] = []

    # ------------------------------------------------------------------ #
    # cost multiplier (fast path when it is the constant 1.0)
    # ------------------------------------------------------------------ #
    @property
    def cost_multiplier(self) -> Callable[[float], float]:
        return self._cost_multiplier or (lambda t: 1.0)

    @cost_multiplier.setter
    def cost_multiplier(self, fn: Optional[Callable[[float], float]]) -> None:
        # None means "constant 1.0": the dispatch loop then skips one
        # function call per executed tuple
        self._cost_multiplier = fn

    # ------------------------------------------------------------------ #
    # input side
    # ------------------------------------------------------------------ #
    def submit(self, time: float, values: Tuple, source: str,
               trace=None) -> None:
        """Buffer one arrival; timestamps must be non-decreasing.

        ``trace`` is an optional sampled
        :class:`~repro.obs.tuptrace.TraceContext` to attach to the
        tuple's lineage at admission.
        """
        if source not in self.network.sources:
            raise SchedulingError(f"unknown source {source!r}")
        if time < self.now:
            self.late_arrivals += 1
            note_late_arrival(self, time)
            time = self.now  # late submission: arrives "now"
        if self._pending and time < self._pending[-1][0]:
            raise SchedulingError(
                f"arrival at t={time} is earlier than a buffered arrival "
                f"at t={self._pending[-1][0]}; submit in time order"
            )
        self._pending.append((time, values, source, trace))

    def submit_many(self, arrivals: Sequence[Tuple[float, Tuple, str]]) -> None:
        for time, values, source in arrivals:
            self.submit(time, values, source)

    # ------------------------------------------------------------------ #
    # virtual queue / status
    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        """The paper's virtual queue length q: admitted minus departed."""
        return self.admitted_total - self.departed_total

    @property
    def queued_tuples(self) -> int:
        """Raw tuples currently waiting in operator queues."""
        return sum(len(q) for q in self.queues.values())

    def drain_departures(self) -> List[Departure]:
        """Return and clear the departures recorded since the last call."""
        out = self._departures
        self._departures = []
        return out

    def consume_cpu(self, seconds: float) -> None:
        """Charge non-query CPU work (e.g. the monitoring/shedding cycle).

        Advances the virtual clock by ``seconds / headroom`` just like an
        operator execution would, without touching any queue.
        """
        if seconds < 0:
            raise SchedulingError("cannot consume negative CPU time")
        self.cpu_used += seconds
        self.now += seconds / self.headroom

    def effective_cost(self, at: Optional[float] = None) -> float:
        """Current expected CPU cost per source tuple (the paper's ``c``).

        Combines the network's static expectation (using observed
        selectivities) with the time-varying cost multiplier.
        """
        expected = self.network.expected_cost()
        if self._cost_multiplier is None:
            return expected
        t = self.now if at is None else at
        return expected * self._cost_multiplier(t)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_until(self, t_end: float) -> None:
        """Advance the virtual clock to ``t_end``, processing all due work."""
        if t_end < self.now:
            raise SchedulingError(f"cannot run backwards to t={t_end}")
        while True:
            self._ingest_due()
            op_name = self.scheduler.next_operator(self.queues)
            if op_name is not None:
                if self.now >= t_end:
                    break  # overloaded: leave the backlog queued at the horizon
                self._dispatch(op_name)
                continue
            # no queued work: jump to the next event — the earliest of the
            # next arrival, the next operator timer deadline, the horizon
            next_t = t_end
            if self._pending and self._pending[0][0] < next_t:
                next_t = self._pending[0][0]
            deadline = self._next_timer_deadline()
            if deadline is not None and self.now < deadline < next_t:
                next_t = deadline
            if next_t > self.now:
                self.now = next_t
                self._fire_timers()
                continue  # timers/arrivals may have released new work
            break

    def _ingest_due(self) -> None:
        while self._pending and self._pending[0][0] <= self.now:
            time, values, source, trace = self._pending.popleft()
            self._admit(time, values, source, trace)

    def _admit(self, time: float, values: Tuple, source: str,
               trace=None) -> None:
        tup = make_source_tuple(values, time, source, self._on_departed)
        if trace is not None:
            tup.lineage.trace = trace
        entries = self.network.sources[source]
        if not entries:
            # a source wired to nothing: the tuple departs immediately
            self.admitted_total += 1
            tup.lineage.release(self.now)
            return
        self.admitted_total += 1
        tup.lineage.fork(len(entries) - 1)
        for op_name, port in entries:
            self.queues[op_name].push(tup, port)
            if trace is not None:
                trace.enqueue(op_name, time)

    def _dispatch(self, op_name: str) -> None:
        op = self.network.operators[op_name]
        tup, port = self.queues[op_name].pop()
        cost = op.cost_of(tup, port)
        if self._cost_multiplier is not None:
            cost *= self._cost_multiplier(self.now)
        self.cpu_used += cost
        trace = tup.lineage.trace
        if trace is None:
            self.now += cost / self.headroom
        else:
            start = self.now
            self.now = start + cost / self.headroom
            trace.service(op_name, start, self.now - start, cost)
        outputs = op.apply(tup, port, self.now)
        op.record(len(outputs))
        # lineage accounting: fork once per output sharing the input lineage,
        # then release the consumed input's reference
        n_same = sum(1 for out in outputs if out.lineage is tup.lineage)
        if n_same:
            tup.lineage.fork(n_same)
        tup.lineage.release(self.now)
        self._route(op_name, outputs)
        if self._timed_ops:
            if op_name in self._timed_names:
                # executing a timed operator may open/close a window and
                # move its deadline
                self._deadline_dirty = True
            self._fire_timers()

    def _route(self, op_name: str, outputs: List[StreamTuple]) -> None:
        successors = self.network.successors(op_name)
        for out in outputs:
            if not successors:
                out.lineage.release(self.now)
                continue
            if len(successors) > 1:
                out.lineage.fork(len(successors) - 1)
            trace = out.lineage.trace
            for succ, succ_port in successors:
                self.queues[succ].push(out, succ_port)
                if trace is not None:
                    trace.enqueue(succ, self.now)

    def _fire_timers(self) -> None:
        # hot path: skip the sweep entirely when there are no timed
        # operators or the earliest deadline is still in the future
        if not self._timed_ops:
            return
        deadline = self._next_timer_deadline()
        if deadline is None or deadline > self.now:
            return
        for op in self._timed_ops:
            outputs = op.on_time(self.now)
            if outputs:
                self._route(op.name, outputs)
        self._deadline_dirty = True

    def _next_timer_deadline(self) -> Optional[float]:
        if self._deadline_dirty:
            deadlines = [d for d in (op.next_deadline()
                                     for op in self._timed_ops)
                         if d is not None]
            self._deadline_cache = min(deadlines) if deadlines else None
            self._deadline_dirty = False
        return self._deadline_cache

    def flush(self) -> None:
        """Force all buffered operator state (open windows) out of the network."""
        self._deadline_dirty = True
        for op in self.network.operators.values():
            outputs = op.flush(self.now)
            if outputs:
                self._route(op.name, outputs)
        # drain whatever the flush released into downstream queues
        while True:
            op_name = self.scheduler.next_operator(self.queues)
            if op_name is None:
                break
            self._dispatch(op_name)

    # ------------------------------------------------------------------ #
    # in-network shedding support
    # ------------------------------------------------------------------ #
    def shed_queue_fraction(self, op_name: str, fraction: float,
                            reason: str = "retro", shedder: str = "",
                            alpha: float = 0.0) -> int:
        """Drop ~``fraction`` of the tuples queued before ``op_name``."""
        victims = self.queues[op_name].shed_fraction(fraction, self.rng)
        self._discard(victims, op_name, reason, shedder,
                      alpha if alpha else fraction)
        return len(victims)

    def shed_queue_count(self, op_name: str, count: int,
                         reason: str = "retro", shedder: str = "",
                         alpha: float = 0.0) -> int:
        """Drop up to ``count`` tuples queued before ``op_name``."""
        victims = self.queues[op_name].shed_count(count, self.rng)
        self._discard(victims, op_name, reason, shedder, alpha)
        return len(victims)

    def _discard(self, victims: List[StreamTuple], where: str = "",
                 reason: str = "retro", shedder: str = "",
                 alpha: float = 0.0) -> None:
        for tup in victims:
            tup.lineage.shed = True
            trace = tup.lineage.trace
            if trace is not None:
                trace.shed(where, self.now, reason=reason, shedder=shedder,
                           alpha=alpha)
            tup.lineage.release(self.now)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _on_departed(self, lineage: Lineage, now: float) -> None:
        self.departed_total += 1
        if lineage.shed:
            self.shed_total += 1
        if lineage.trace is not None:
            lineage.trace.finish(now, "dropped" if lineage.shed
                                 else "completed")
        self._departures.append(Departure(lineage.arrived, now, lineage.shed))
