"""Fast virtual-queue engine.

The paper's key modeling insight (Section 4.2) is that a FIFO round-robin
query network behaves like one *virtual FIFO queue* whose entries cost
``c/H`` wall-clock seconds each. :class:`VirtualQueueEngine` implements that
abstraction directly: a single FIFO of source tuples served at the effective
rate ``H / (c(t))`` tuples per second.

It exposes the same counters and ``submit``/``run_until``/``drain_departures``
interface as the full :class:`~repro.dsms.engine.Engine`, so monitors,
actuators and the control loop work unchanged on either engine. Use it for
large parameter sweeps; use the full engine to validate that the abstraction
holds (the Figs. 5–7 experiments do exactly that).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import SchedulingError
from .engine import Departure, note_late_arrival


class VirtualQueueEngine:
    """Single-FIFO implementation of the paper's Eq. 2 virtual queue."""

    def __init__(self, cost: float = 1.0 / 190.0,
                 headroom: float = 0.97,
                 cost_multiplier: Optional[Callable[[float], float]] = None):
        if cost <= 0:
            raise SchedulingError(f"per-tuple cost must be positive, got {cost}")
        if not 0.0 < headroom <= 1.0:
            raise SchedulingError(f"headroom must be in (0, 1], got {headroom}")
        self.base_cost = float(cost)
        self.headroom = float(headroom)
        self.cost_multiplier = cost_multiplier or (lambda t: 1.0)

        self.now = 0.0
        self._queue: Deque[float] = deque()   # arrival timestamps, FIFO
        self._pending: Deque[float] = deque()  # submitted, not yet due
        self._progress = 0.0  # CPU seconds already spent on the head tuple
        self.admitted_total = 0
        self.departed_total = 0
        self.shed_total = 0
        self.late_arrivals = 0
        self.cpu_used = 0.0
        self._late_warned = False
        self._departures: List[Departure] = []

    # ------------------------------------------------------------------ #
    # interface shared with Engine
    # ------------------------------------------------------------------ #
    def submit(self, time: float, values: Tuple = (), source: str = "in",
               trace=None) -> None:
        """Buffer one arrival; timestamps must be non-decreasing.

        ``values`` and ``source`` are accepted for interface parity with the
        full engine but carry no information in the fluid model (a single
        virtual FIFO has one implicit source and costs are per-tuple, not
        per-value); they are intentionally ignored, as is a sampled
        ``trace`` context (the fluid model has no per-tuple lifecycle to
        record).
        """
        if time < self.now:
            self.late_arrivals += 1
            note_late_arrival(self, time)
            time = self.now  # late submission: arrives "now"
        if self._pending and time < self._pending[-1]:
            raise SchedulingError("submit arrivals in time order")
        self._pending.append(time)

    def submit_many(self, arrivals) -> None:
        for time, values, source in arrivals:
            self.submit(time, values, source)

    @property
    def outstanding(self) -> int:
        """The virtual queue length q (tuples admitted but not departed)."""
        return self.admitted_total - self.departed_total

    @property
    def queued_tuples(self) -> int:
        return len(self._queue)

    def drain_departures(self) -> List[Departure]:
        out = self._departures
        self._departures = []
        return out

    def effective_cost(self, at: Optional[float] = None) -> float:
        """Expected CPU seconds per tuple (the paper's ``c``) at time ``at``."""
        t = self.now if at is None else at
        return self.base_cost * self.cost_multiplier(t)

    def run_until(self, t_end: float) -> None:
        """Serve the FIFO queue up to virtual time ``t_end``."""
        if t_end < self.now:
            raise SchedulingError(f"cannot run backwards to t={t_end}")
        while True:
            self._ingest_due()
            if self._queue:
                cost = self.base_cost * self.cost_multiplier(self.now)
                remaining = max(0.0, cost - self._progress)
                finish = self.now + remaining / self.headroom
                if finish > t_end:
                    # partial service: remember progress on the head tuple
                    self._progress += (t_end - self.now) * self.headroom
                    self.cpu_used += (t_end - self.now) * self.headroom
                    self.now = t_end
                    break
                arrived = self._queue.popleft()
                self.cpu_used += remaining
                self._progress = 0.0
                self.now = finish
                self.departed_total += 1
                self._departures.append(Departure(arrived, finish, False))
                continue
            if self._pending and self._pending[0] <= t_end:
                self.now = max(self.now, self._pending[0])
                continue
            break
        if self.now < t_end:
            self.now = t_end
        self._ingest_due()

    def flush(self) -> None:
        """No buffered operator state in the fluid model."""

    def consume_cpu(self, seconds: float) -> None:
        """Charge non-query CPU work; see :meth:`repro.dsms.Engine.consume_cpu`."""
        if seconds < 0:
            raise SchedulingError("cannot consume negative CPU time")
        self.cpu_used += seconds
        self.now += seconds / self.headroom
        self._ingest_due()

    # ------------------------------------------------------------------ #
    # in-network shedding support
    # ------------------------------------------------------------------ #
    def shed_oldest(self, count: int) -> int:
        """Drop up to ``count`` tuples from the head of the virtual queue."""
        return self._shed(count, oldest=True)

    def shed_newest(self, count: int) -> int:
        """Drop up to ``count`` tuples from the tail of the virtual queue."""
        return self._shed(count, oldest=False)

    def _shed(self, count: int, oldest: bool) -> int:
        if count < 0:
            raise SchedulingError("shed count must be non-negative")
        count = min(count, len(self._queue))
        for __ in range(count):
            if oldest:
                arrived = self._queue.popleft()
                self._progress = 0.0  # the in-service tuple was discarded
            else:
                arrived = self._queue.pop()
            self.departed_total += 1
            self.shed_total += 1
            self._departures.append(Departure(arrived, self.now, True))
        return count

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ingest_due(self) -> None:
        while self._pending and self._pending[0] <= self.now:
            self._queue.append(self._pending.popleft())
            self.admitted_total += 1
