"""The engine-backend contract.

Three engine implementations share one interface (the paper's Fig. 3 plant
seen from the control loop's side): the full discrete-event
:class:`~repro.dsms.engine.Engine`, the scalar single-FIFO
:class:`~repro.dsms.fluid.VirtualQueueEngine`, and the vectorized
:class:`~repro.dsms.batch.BatchFluidEngine`. :class:`EngineProtocol` writes
that contract down so monitors, actuators, control loops, shards and sweep
drivers can be checked against it instead of against a concrete class.

The contract deliberately covers only what the control stack consumes:

* **input side** — :meth:`~EngineProtocol.submit` /
  :meth:`~EngineProtocol.submit_many` buffer time-ordered arrivals; a
  timestamp behind the engine clock is rewritten to "now", counted in
  ``late_arrivals`` and warned about once per run;
* **execution** — :meth:`~EngineProtocol.run_until` advances the virtual
  clock, :meth:`~EngineProtocol.consume_cpu` charges non-query work,
  :meth:`~EngineProtocol.flush` forces buffered operator state out;
* **observability** — the cumulative counters (``admitted_total``,
  ``departed_total``, ``shed_total``, ``late_arrivals``, ``cpu_used``), the
  derived ``outstanding`` virtual queue length, per-tuple
  :meth:`~EngineProtocol.drain_departures`, and
  :meth:`~EngineProtocol.effective_cost` (the paper's ``c``).

In-network shedding entry points (``shed_queue_*`` on the full engine,
``shed_oldest``/``shed_newest`` on the fluid engines) stay backend-specific:
the single-FIFO abstractions have no operator queues to cull, which is why
the fluid backends support only entry actuation.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from .engine import Departure


@runtime_checkable
class EngineProtocol(Protocol):
    """Structural interface every engine backend implements.

    ``runtime_checkable`` makes ``isinstance(obj, EngineProtocol)`` verify
    the method surface (not signatures); the backend-equivalence tests do
    exactly that for all registered backends.
    """

    #: virtual clock, seconds
    now: float
    #: fraction of the CPU available to query processing (paper's H)
    headroom: float
    #: cumulative source tuples that entered the (virtual) network
    admitted_total: int
    #: cumulative source tuples that fully departed
    departed_total: int
    #: departures lost to shedding
    shed_total: int
    #: submissions whose timestamp was behind the engine clock
    late_arrivals: int
    #: CPU seconds consumed
    cpu_used: float

    def submit(self, time: float, values: Tuple = (), source: str = "in") -> None:
        """Buffer one arrival; timestamps must be non-decreasing."""
        ...

    def submit_many(self, arrivals: Sequence[Tuple[float, Tuple, str]]) -> None:
        """Buffer a time-ordered batch of arrivals."""
        ...

    def run_until(self, t_end: float) -> None:
        """Advance the virtual clock to ``t_end``, processing due work."""
        ...

    def flush(self) -> None:
        """Force buffered operator state (open windows) out of the network."""
        ...

    def consume_cpu(self, seconds: float) -> None:
        """Charge non-query CPU work (monitoring/shedding overhead)."""
        ...

    def drain_departures(self) -> List[Departure]:
        """Return and clear the departures recorded since the last call."""
        ...

    def effective_cost(self, at: Optional[float] = None) -> float:
        """Expected CPU seconds per source tuple (the paper's ``c``)."""
        ...

    @property
    def outstanding(self) -> int:
        """The paper's virtual queue length q: admitted minus departed."""
        ...

    @property
    def queued_tuples(self) -> int:
        """Raw tuples currently waiting in (virtual) queues."""
        ...
