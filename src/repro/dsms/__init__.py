"""Borealis-like stream engine substrate.

The paper evaluates on the Borealis stream manager; this subpackage is the
Python stand-in (see DESIGN.md §2 for the substitution argument): a query
network of costed operators with per-operator FIFO queues, a round-robin
scheduler, and a discrete-event engine driven by a virtual CPU clock with a
headroom factor. :class:`VirtualQueueEngine` is the fast single-FIFO model
(the paper's Eq. 2 abstraction) sharing the same interface.
"""

from .batch import BatchFluidEngine, FluidLanes, HAVE_NUMPY, require_numpy
from .builder import (
    DEFAULT_CAPACITY,
    chain_network,
    expected_identification_cost,
    identification_network,
    monitoring_network,
)
from .catalog import Catalog, OperatorStats, PeriodStats, Snapshot
from .engine import Departure, Engine, LateArrivalWarning, note_late_arrival
from .factory import BACKENDS, available_backends, make_engine, register_backend
from .fluid import VirtualQueueEngine
from .network import QueryNetwork
from .protocol import EngineProtocol
from .operators import (
    AggregateOperator,
    FilterOperator,
    MapOperator,
    Operator,
    RandomDropOperator,
    Sink,
    UnionOperator,
    WindowJoinOperator,
)
from .queues import OperatorQueue
from .scheduler import (
    DepthFirstScheduler,
    RoundRobinScheduler,
    Scheduler,
    TopologicalScheduler,
)
from .tuple_ import Lineage, StreamTuple, make_source_tuple

__all__ = [
    "AggregateOperator",
    "BACKENDS",
    "BatchFluidEngine",
    "Catalog",
    "DEFAULT_CAPACITY",
    "Departure",
    "DepthFirstScheduler",
    "Engine",
    "EngineProtocol",
    "FilterOperator",
    "FluidLanes",
    "HAVE_NUMPY",
    "LateArrivalWarning",
    "Lineage",
    "MapOperator",
    "Operator",
    "OperatorQueue",
    "OperatorStats",
    "PeriodStats",
    "QueryNetwork",
    "RandomDropOperator",
    "RoundRobinScheduler",
    "Scheduler",
    "Sink",
    "Snapshot",
    "StreamTuple",
    "TopologicalScheduler",
    "UnionOperator",
    "VirtualQueueEngine",
    "WindowJoinOperator",
    "available_backends",
    "chain_network",
    "expected_identification_cost",
    "identification_network",
    "make_engine",
    "make_source_tuple",
    "monitoring_network",
    "note_late_arrival",
    "register_backend",
]
