"""Generic pole-placement controller design via the Diophantine equation.

Given a plant ``G(z) = B(z)/A(z)`` and a desired closed-loop characteristic
polynomial ``P(z)``, find a controller ``C(z) = N(z)/D(z)`` such that::

    D(z) A(z) + N(z) B(z) = P(z)

This is the textbook procedure the paper applies in Appendix A. For a plant
of degree ``n`` a controller of degree ``n - 1`` (here: first-order plant,
first-order controller — wait, the paper uses a first-order controller on a
first-order plant, giving a second-order closed loop) solves the equation
when ``deg P = deg A + deg D``. The linear system in the unknown controller
coefficients is the Sylvester (resultant) matrix equation; we solve it with
:func:`numpy.linalg.lstsq` and verify the residual.

An optional *unity static gain* constraint pins remaining degrees of freedom
(the paper's Eq. 19): the closed loop ``N B / P`` must evaluate to 1 at
``z = 1`` so the output tracks the reference with zero steady-state error.
For plants that already contain an integrator (like the paper's), any
stabilizing design satisfies this automatically, leaving a free parameter;
callers can pin it by fixing a controller pole (see
:func:`repro.core.pole_placement.design_delay_controller`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ControlError, UnstableDesignError
from .polynomial import Polynomial
from .transfer_function import TransferFunction


@dataclass(frozen=True)
class PolePlacementResult:
    """Outcome of a pole-placement design."""

    controller: TransferFunction
    closed_loop: TransferFunction
    achieved_poles: tuple
    residual: float


def desired_characteristic(poles: Sequence[complex]) -> Polynomial:
    """Monic polynomial with the requested closed-loop poles (Eq. 14)."""
    for p in poles:
        if abs(p) >= 1.0:
            raise UnstableDesignError(f"requested pole {p} is not inside the unit circle")
    return Polynomial.from_roots(list(poles))


def solve_diophantine(a: Polynomial, b: Polynomial, target: Polynomial,
                      controller_den_degree: Optional[int] = None,
                      tol: float = 1e-8) -> "tuple[Polynomial, Polynomial]":
    """Solve ``D a + N b = target`` for monic ``D`` and ``N``.

    ``controller_den_degree`` defaults to ``deg(target) - deg(a)``. ``N`` is
    allowed the same degree as ``D`` (a proper controller). Raises
    :class:`ControlError` when the system is unsolvable (coprimality of
    ``a`` and ``b`` is required for arbitrary placement).
    """
    na = a.degree
    if controller_den_degree is None:
        controller_den_degree = target.degree - na
    nd = controller_den_degree
    if nd < 0:
        raise ControlError("target polynomial degree is lower than the plant degree")
    nn = nd  # proper controller: deg N == deg D

    # Unknowns: d_1..d_nd (D is monic) then n_0..n_nn.
    n_unknowns = nd + nn + 1
    rows = target.degree + 1

    def poly_column(base: Polynomial, shift: int, rows: int) -> np.ndarray:
        """Column of coefficients of ``base * z**shift`` padded to ``rows``."""
        col = np.zeros(rows)
        coeffs = base.shift(shift).coeffs
        col[rows - len(coeffs):] = coeffs
        return col

    matrix = np.zeros((rows, n_unknowns))
    # D = z^nd + d_1 z^{nd-1} + ... + d_nd  -> contribution of each d_i is a*z^{nd-i}
    for i in range(1, nd + 1):
        matrix[:, i - 1] = poly_column(a, nd - i, rows)
    # N = n_0 z^{nn} + ... + n_nn
    for j in range(nn + 1):
        matrix[:, nd + j] = poly_column(b, nn - j, rows)

    rhs_poly = target - a.shift(nd)  # move the monic-D term to the right side
    rhs = np.zeros(rows)
    rhs_coeffs = rhs_poly.coeffs
    rhs[rows - len(rhs_coeffs):] = rhs_coeffs

    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    residual = float(np.linalg.norm(matrix @ solution - rhs))
    scale = max(1.0, float(np.linalg.norm(rhs)))
    if residual > tol * scale:
        raise ControlError(
            f"Diophantine equation unsolvable for this structure (residual {residual:.3g}); "
            "the plant polynomials may not be coprime or the controller order is too low"
        )
    d = Polynomial([1.0] + solution[:nd].tolist())
    n = Polynomial(solution[nd:].tolist())
    return d, n


def place_poles(plant: TransferFunction, poles: Sequence[complex],
                controller_den_degree: Optional[int] = None) -> PolePlacementResult:
    """Design ``C(z)`` putting the closed-loop poles of ``C G/(1+CG)`` at ``poles``."""
    target = desired_characteristic(poles)
    a = plant.den.monic()
    lead = plant.den.coeffs[0]
    b = plant.num.scale(1.0 / lead)
    d, n = solve_diophantine(a, b, target, controller_den_degree)
    controller = TransferFunction(n, d)
    closed = (controller * plant).feedback()
    achieved = tuple(sorted(closed.poles(), key=lambda p: (p.real, p.imag)))
    residual = float(
        np.linalg.norm(
            np.array((d * a + n * b - target).coeffs)
        )
    )
    return PolePlacementResult(
        controller=controller,
        closed_loop=closed,
        achieved_poles=achieved,
        residual=residual,
    )


def verify_unity_gain(plant: TransferFunction, controller: TransferFunction,
                      tol: float = 1e-6) -> bool:
    """Check the paper's Eq. 19: closed-loop static gain equals one."""
    gain = (controller * plant).feedback().dc_gain()
    return abs(gain - 1.0) <= tol
