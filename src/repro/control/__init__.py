"""Discrete-time control-theory toolkit.

This subpackage is the mathematical substrate for the paper's controller
design: z-domain polynomials and transfer functions, block-diagram algebra,
difference-equation simulation, stability/damping analysis, and generic
Diophantine pole placement. It is self-contained and reusable outside the
load-shedding context.
"""

from .analysis import (
    StepMetrics,
    closed_loop_poles,
    complementary_sensitivity,
    convergence_periods,
    disturbance_rejection_gain,
    dominant_pole,
    is_stable,
    pole_damping,
    pole_time_constant,
    sensitivity,
    spectral_radius,
    step_metrics,
)
from .design import (
    PolePlacementResult,
    desired_characteristic,
    place_poles,
    solve_diophantine,
    verify_unity_gain,
)
from .margins import StabilityMargins, bode_points, stability_margins
from .polynomial import Polynomial, as_polynomial
from .simulate import DifferenceEquation, impulse_response, simulate, step_response
from .transfer_function import TransferFunction, as_transfer_function

__all__ = [
    "DifferenceEquation",
    "PolePlacementResult",
    "Polynomial",
    "StabilityMargins",
    "StepMetrics",
    "TransferFunction",
    "as_polynomial",
    "as_transfer_function",
    "bode_points",
    "closed_loop_poles",
    "complementary_sensitivity",
    "convergence_periods",
    "desired_characteristic",
    "disturbance_rejection_gain",
    "dominant_pole",
    "impulse_response",
    "is_stable",
    "place_poles",
    "pole_damping",
    "pole_time_constant",
    "sensitivity",
    "simulate",
    "solve_diophantine",
    "spectral_radius",
    "stability_margins",
    "step_metrics",
    "step_response",
    "verify_unity_gain",
]
