"""Polynomial algebra over the z variable.

A polynomial is represented by a :class:`Polynomial` holding coefficients in
*descending* powers of ``z``: ``Polynomial([1, -1.4, 0.49])`` is
``z^2 - 1.4 z + 0.49``. This matches the way characteristic equations are
written in the paper (Eq. 14, Eq. 17) and in control textbooks.

Only real coefficients are supported for construction; roots may of course be
complex. The class is immutable and hashable on its normalized coefficients.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from ..errors import ControlError

Number = Union[int, float]

#: Coefficients smaller than this (relative to the largest coefficient) are
#: treated as zero when normalizing leading terms.
_EPS = 1e-12


def _trim(coeffs: Sequence[float]) -> Tuple[float, ...]:
    """Strip leading (highest-power) near-zero coefficients."""
    coeffs = [float(c) for c in coeffs]
    if not coeffs:
        return (0.0,)
    scale = max(abs(c) for c in coeffs) or 1.0
    i = 0
    while i < len(coeffs) - 1 and abs(coeffs[i]) <= _EPS * scale:
        i += 1
    return tuple(coeffs[i:])


class Polynomial:
    """An immutable real polynomial in ``z`` (descending powers)."""

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: Iterable[Number]):
        self._coeffs = _trim(list(coeffs))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_roots(cls, roots: Iterable[complex]) -> "Polynomial":
        """Build the monic polynomial whose roots are ``roots``.

        Complex roots must come in conjugate pairs (within tolerance) so the
        result has real coefficients.
        """
        roots = list(roots)
        coeffs = np.poly(roots) if roots else np.array([1.0])
        if np.max(np.abs(coeffs.imag)) > 1e-9 * max(1.0, np.max(np.abs(coeffs))):
            raise ControlError(
                "roots do not form conjugate pairs; coefficients would be complex"
            )
        return cls(coeffs.real.tolist())

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls([0.0])

    @classmethod
    def one(cls) -> "Polynomial":
        return cls([1.0])

    @classmethod
    def z(cls) -> "Polynomial":
        """The monomial ``z``."""
        return cls([1.0, 0.0])

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def coeffs(self) -> Tuple[float, ...]:
        """Coefficients in descending powers of z."""
        return self._coeffs

    @property
    def degree(self) -> int:
        return len(self._coeffs) - 1

    @property
    def is_zero(self) -> bool:
        return len(self._coeffs) == 1 and self._coeffs[0] == 0.0

    def monic(self) -> "Polynomial":
        """Scale so the leading coefficient is one."""
        lead = self._coeffs[0]
        if lead == 0.0:
            raise ControlError("cannot make the zero polynomial monic")
        return Polynomial(c / lead for c in self._coeffs)

    def roots(self) -> np.ndarray:
        """Roots of the polynomial (possibly complex)."""
        if self.degree == 0:
            return np.array([])
        return np.roots(self._coeffs)

    # ------------------------------------------------------------------ #
    # evaluation and algebra
    # ------------------------------------------------------------------ #
    def __call__(self, z: complex) -> complex:
        result: complex = 0.0
        for c in self._coeffs:
            result = result * z + c
        return result

    def __add__(self, other: "PolynomialLike") -> "Polynomial":
        other = as_polynomial(other)
        n = max(len(self._coeffs), len(other._coeffs))
        a = (0.0,) * (n - len(self._coeffs)) + self._coeffs
        b = (0.0,) * (n - len(other._coeffs)) + other._coeffs
        return Polynomial(x + y for x, y in zip(a, b))

    def __radd__(self, other: "PolynomialLike") -> "Polynomial":
        return self.__add__(other)

    def __sub__(self, other: "PolynomialLike") -> "Polynomial":
        return self + (-as_polynomial(other))

    def __rsub__(self, other: "PolynomialLike") -> "Polynomial":
        return as_polynomial(other) + (-self)

    def __neg__(self) -> "Polynomial":
        return Polynomial(-c for c in self._coeffs)

    def __mul__(self, other: "PolynomialLike") -> "Polynomial":
        other = as_polynomial(other)
        return Polynomial(np.convolve(self._coeffs, other._coeffs).tolist())

    def __rmul__(self, other: "PolynomialLike") -> "Polynomial":
        return self.__mul__(other)

    def divmod(self, other: "PolynomialLike") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial long division: returns ``(quotient, remainder)``."""
        other = as_polynomial(other)
        if other.is_zero:
            raise ZeroDivisionError("polynomial division by zero")
        q, r = np.polydiv(np.array(self._coeffs), np.array(other._coeffs))
        return Polynomial(np.atleast_1d(q).tolist()), Polynomial(np.atleast_1d(r).tolist())

    def scale(self, factor: float) -> "Polynomial":
        return Polynomial(c * float(factor) for c in self._coeffs)

    def shift(self, powers: int) -> "Polynomial":
        """Multiply by ``z**powers`` (``powers >= 0``)."""
        if powers < 0:
            raise ControlError("shift() takes a non-negative power")
        return Polynomial(self._coeffs + (0.0,) * powers)

    # ------------------------------------------------------------------ #
    # comparison / formatting
    # ------------------------------------------------------------------ #
    def almost_equal(self, other: "PolynomialLike", tol: float = 1e-9) -> bool:
        other = as_polynomial(other)
        n = max(len(self._coeffs), len(other._coeffs))
        a = (0.0,) * (n - len(self._coeffs)) + self._coeffs
        b = (0.0,) * (n - len(other._coeffs)) + other._coeffs
        scale = max(1.0, max(abs(x) for x in a + b))
        return all(abs(x - y) <= tol * scale for x, y in zip(a, b))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Polynomial, int, float)):
            return NotImplemented
        return self.almost_equal(as_polynomial(other), tol=0.0)

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __repr__(self) -> str:
        return f"Polynomial({list(self._coeffs)!r})"

    def __str__(self) -> str:
        terms = []
        deg = self.degree
        for i, c in enumerate(self._coeffs):
            if c == 0.0 and deg > 0:
                continue
            power = deg - i
            if power == 0:
                terms.append(f"{c:g}")
            elif power == 1:
                terms.append(f"{c:g} z")
            else:
                terms.append(f"{c:g} z^{power}")
        return " + ".join(terms).replace("+ -", "- ") or "0"


PolynomialLike = Union[Polynomial, int, float]


def as_polynomial(value: PolynomialLike) -> Polynomial:
    """Coerce a scalar or polynomial to :class:`Polynomial`."""
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float)) and math.isfinite(value):
        return Polynomial([float(value)])
    raise ControlError(f"cannot interpret {value!r} as a polynomial")
