"""Frequency-domain robustness margins for discrete loops.

The pole-placement design guarantees *nominal* performance; margins
quantify how much the real plant may deviate before the loop goes
unstable — the quantitative backing for the paper's robustness claims
(Section 4.3.1's `1/K` argument made precise):

* **gain margin** — the factor by which the loop gain can grow before
  instability (how badly can the cost estimate `c(k)` be off?);
* **phase margin** — tolerated extra phase lag (how much extra delay, e.g.
  actuation applied a fraction of a period late?);
* **modulus margin** — the distance from the Nyquist curve to the critical
  point −1, a single number bounding tolerance to *any* combination of
  perturbations.

Evaluated on the open loop ``L(z) = C(z) G(z)`` over ``z = e^{jw}``,
``w ∈ (0, π)``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ControlError
from .transfer_function import TransferFunction


@dataclass(frozen=True)
class StabilityMargins:
    """Classical margins of one open loop."""

    gain_margin: float            # multiplicative, inf if never reaches -180°
    gain_crossover: Optional[float]   # rad/sample where |L| = 1
    phase_margin_deg: float       # degrees at the gain crossover
    phase_crossover: Optional[float]  # rad/sample where arg L = -180°
    modulus_margin: float         # min |1 + L(e^{jw})|


def _sweep(open_loop: TransferFunction, n_points: int) -> List[Tuple[float, complex]]:
    out = []
    # include the Nyquist endpoint w = pi (where L is real — the classical
    # phase-crossover location for first-order discrete loops) but not
    # w = 0, where integrator plants blow up
    for i in range(1, n_points + 1):
        w = math.pi * i / n_points
        try:
            out.append((w, open_loop.frequency_response(w)))
        except ZeroDivisionError:
            continue  # pole exactly on the unit circle at this frequency
    if not out:
        raise ControlError("could not evaluate the loop anywhere on the unit circle")
    return out


def stability_margins(open_loop: TransferFunction,
                      n_points: int = 4096) -> StabilityMargins:
    """Compute gain/phase/modulus margins by a dense unit-circle sweep."""
    pts = _sweep(open_loop, n_points)

    # modulus margin: distance of the Nyquist plot to -1
    modulus = min(abs(1 + l) for __, l in pts)

    # gain crossover: |L| passes through 1 (take the first crossing)
    gain_cross = None
    phase_margin = math.inf
    prev_w, prev_l = pts[0]
    for w, l in pts[1:]:
        if (abs(prev_l) - 1.0) * (abs(l) - 1.0) <= 0.0 and abs(prev_l) != abs(l):
            # linear interpolation in |L|
            t = (1.0 - abs(prev_l)) / (abs(l) - abs(prev_l))
            gain_cross = prev_w + t * (w - prev_w)
            phase_at = cmath.phase(prev_l + t * (l - prev_l))
            phase_margin = math.degrees(phase_at) + 180.0
            break
        prev_w, prev_l = w, l

    # phase crossover: arg L passes through -180° (L real and negative)
    phase_cross = None
    gain_margin = math.inf
    prev_w, prev_l = pts[0]
    for w, l in pts[1:]:
        if prev_l.imag * l.imag <= 0.0 and (prev_l.real < 0 or l.real < 0):
            denom = (l.imag - prev_l.imag)
            t = 0.5 if denom == 0 else -prev_l.imag / denom
            crossing = prev_l + t * (l - prev_l)
            if crossing.real < 0:
                phase_cross = prev_w + t * (w - prev_w)
                mag = abs(crossing)
                if mag > 0:
                    gain_margin = 1.0 / mag
                break
        prev_w, prev_l = w, l
    if phase_cross is None:
        # endpoint case: at w = pi the response is real (up to float fuzz);
        # a negative value there IS the classical phase crossover
        w_end, l_end = pts[-1]
        if abs(l_end.imag) <= 1e-9 * (1.0 + abs(l_end)) and l_end.real < 0:
            phase_cross = w_end
            gain_margin = 1.0 / abs(l_end)

    return StabilityMargins(
        gain_margin=gain_margin,
        gain_crossover=gain_cross,
        phase_margin_deg=phase_margin,
        phase_crossover=phase_cross,
        modulus_margin=modulus,
    )


def bode_points(open_loop: TransferFunction, n_points: int = 256
                ) -> List[Tuple[float, float, float]]:
    """(frequency rad/sample, magnitude dB, phase degrees) triples."""
    out = []
    for w, l in _sweep(open_loop, n_points):
        mag = abs(l)
        out.append((
            w,
            20.0 * math.log10(mag) if mag > 0 else -math.inf,
            math.degrees(cmath.phase(l)),
        ))
    return out
