"""Closed-loop analysis helpers: stability, damping, convergence, step metrics.

These implement the textbook facts the paper leans on in Section 4.4.1:

* a discrete system is stable iff every pole lies strictly inside the unit
  circle;
* a real pole in (0, 1) gives a non-oscillatory response; poles outside the
  unit circle give instability;
* the *damping ratio* and *convergence rate* of a discrete pole follow from
  mapping it back to the s-plane via ``z = exp(sT)``.

The paper chooses both closed-loop poles at 0.7, i.e. damping 1 (critically
damped) and a time constant of about three control periods (``e^{-1/3}`` is
approximately 0.7; the system reaches ~63% of a setpoint change in three
periods and ~98% in twelve).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import ControlError
from .transfer_function import TransferFunction


def is_stable(tf: TransferFunction, tol: float = 1e-9) -> bool:
    """True when all poles are strictly inside the unit circle."""
    poles = tf.poles()
    if poles.size == 0:
        return True
    return bool(np.all(np.abs(poles) < 1.0 - tol))


def spectral_radius(tf: TransferFunction) -> float:
    """Magnitude of the largest pole (|pole| < 1 means stable)."""
    poles = tf.poles()
    if poles.size == 0:
        return 0.0
    return float(np.max(np.abs(poles)))


def pole_damping(pole: complex) -> float:
    """Damping ratio of a discrete pole via the ``z = exp(sT)`` map.

    For a pole ``z = r e^{j theta}`` the equivalent continuous pole is
    ``s = (ln r + j theta) / T``; the damping ratio is
    ``zeta = -Re(s) / |s|``, independent of ``T``. Real poles in (0, 1]
    have damping 1; poles on the unit circle have damping 0; unstable poles
    return negative damping.
    """
    r = abs(pole)
    if r == 0.0:
        return 1.0  # deadbeat: fastest possible, no oscillation
    theta = math.atan2(pole.imag, pole.real)
    sigma = math.log(r)
    if sigma == 0.0 and theta == 0.0:
        return 0.0
    mag = math.hypot(sigma, theta)
    return -sigma / mag if mag else 0.0


def pole_time_constant(pole: complex, period: float = 1.0) -> float:
    """Time constant (in seconds) of a discrete pole: ``-T / ln|z|``."""
    r = abs(pole)
    if r >= 1.0:
        return float("inf")
    if r == 0.0:
        return 0.0
    return -period / math.log(r)


def convergence_periods(pole: complex) -> float:
    """Number of periods to decay to ``1/e`` (paper: 3 periods for z=0.7)."""
    return pole_time_constant(pole, period=1.0)


def dominant_pole(tf: TransferFunction) -> complex:
    """The pole with the largest magnitude (slowest mode)."""
    poles = tf.poles()
    if poles.size == 0:
        raise ControlError("transfer function has no poles")
    return complex(poles[int(np.argmax(np.abs(poles)))])


@dataclass(frozen=True)
class StepMetrics:
    """Quantities extracted from a step response sequence."""

    final_value: float
    overshoot: float          # peak excess over final value, in absolute units
    overshoot_pct: float      # as a percentage of the final value
    peak_index: int
    settling_index: int       # first index after which |y - final| <= band
    steady_state_error: float  # |reference - final value|
    oscillatory: bool         # did the response cross the final value > once?


def step_metrics(response: Sequence[float], reference: float = 1.0,
                 settle_band: float = 0.02) -> StepMetrics:
    """Summarize a step response against a reference value.

    ``settle_band`` is the fraction of ``reference`` used for the settling
    criterion (2% by default).
    """
    if not response:
        raise ControlError("empty step response")
    y = np.asarray(response, dtype=float)
    final = float(y[-1])
    peak_index = int(np.argmax(y)) if final >= 0 else int(np.argmin(y))
    peak = float(y[peak_index])
    overshoot = max(0.0, (peak - final) if final >= 0 else (final - peak))
    overshoot_pct = 100.0 * overshoot / abs(final) if final != 0 else math.inf

    band = abs(settle_band * (reference if reference != 0 else 1.0))
    settled = np.abs(y - final) <= band
    settling_index = len(y)
    for i in range(len(y)):
        if settled[i:].all():
            settling_index = i
            break

    crossings = 0
    above = y[0] > final
    for value in y[1:]:
        now_above = value > final
        if now_above != above and abs(value - final) > 1e-12:
            crossings += 1
            above = now_above
    return StepMetrics(
        final_value=final,
        overshoot=overshoot,
        overshoot_pct=overshoot_pct,
        peak_index=peak_index,
        settling_index=settling_index,
        steady_state_error=abs(reference - final),
        oscillatory=crossings > 1,
    )


def sensitivity(plant: TransferFunction, controller: TransferFunction) -> TransferFunction:
    """Sensitivity ``S = 1 / (1 + C G)``: output-disturbance rejection.

    Section 4.3.1 of the paper shows disturbances are attenuated by roughly
    ``1/K`` for a large controller gain ``K``; this returns the exact shaping
    function.
    """
    open_loop = controller * plant
    return TransferFunction(open_loop.den, open_loop.den + open_loop.num).simplified()


def complementary_sensitivity(plant: TransferFunction,
                              controller: TransferFunction) -> TransferFunction:
    """``T = C G / (1 + C G)``: the reference-tracking closed loop (Eq. 12)."""
    return (controller * plant).feedback()


def disturbance_rejection_gain(plant: TransferFunction,
                               controller: TransferFunction,
                               omega: float = 0.0) -> float:
    """|S(e^{jw})| — how much an output disturbance at ``omega`` survives."""
    return abs(sensitivity(plant, controller).frequency_response(omega))


def closed_loop_poles(plant: TransferFunction,
                      controller: TransferFunction) -> List[complex]:
    """Roots of ``D(z)A(z) + N(z)B(z)`` (Section 4.4.1)."""
    char = controller.den * plant.den + controller.num * plant.num
    return [complex(r) for r in char.roots()]
