"""Discrete-time (z-domain) rational transfer functions.

A :class:`TransferFunction` is a ratio of two :class:`~repro.control.polynomial.Polynomial`
objects ``num(z)/den(z)``. It supports the block-diagram algebra used in the
paper: series connection (``*``), parallel connection (``+``), and unity or
non-unity negative feedback (:meth:`TransferFunction.feedback`), plus pole /
zero / DC-gain queries used by the analysis module.

The paper's plant (Eq. 4) is ``G(z) = cT / (H (z - 1))`` and its controller
(Eq. 15) is ``C(z) = H (b0 z + b1) / (cT (z + a))``; both are ordinary
instances of this class.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import ControlError
from .polynomial import Polynomial, PolynomialLike, as_polynomial


class TransferFunction:
    """A rational transfer function ``num(z) / den(z)``."""

    __slots__ = ("num", "den")

    def __init__(self, num: Union[PolynomialLike, Iterable[float]],
                 den: Union[PolynomialLike, Iterable[float]]):
        self.num = _coerce(num)
        self.den = _coerce(den)
        if self.den.is_zero:
            raise ControlError("transfer function denominator is zero")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def gain(cls, k: float) -> "TransferFunction":
        """A static gain block."""
        return cls(Polynomial([float(k)]), Polynomial.one())

    @classmethod
    def delay(cls, periods: int = 1) -> "TransferFunction":
        """A pure delay ``z**-periods``."""
        if periods < 0:
            raise ControlError("delay must be non-negative")
        return cls(Polynomial.one(), Polynomial.one().shift(periods))

    @classmethod
    def integrator(cls, gain: float = 1.0) -> "TransferFunction":
        """The discrete integrator ``gain / (z - 1)`` (the paper's plant shape)."""
        return cls(Polynomial([float(gain)]), Polynomial([1.0, -1.0]))

    # ------------------------------------------------------------------ #
    # block algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "TFLike") -> "TransferFunction":
        other = as_transfer_function(other)
        return TransferFunction(self.num * other.num, self.den * other.den).simplified()

    def __rmul__(self, other: "TFLike") -> "TransferFunction":
        return self.__mul__(other)

    def __add__(self, other: "TFLike") -> "TransferFunction":
        other = as_transfer_function(other)
        num = self.num * other.den + other.num * self.den
        return TransferFunction(num, self.den * other.den).simplified()

    def __radd__(self, other: "TFLike") -> "TransferFunction":
        return self.__add__(other)

    def __sub__(self, other: "TFLike") -> "TransferFunction":
        other = as_transfer_function(other)
        return self + TransferFunction(-other.num, other.den)

    def __neg__(self) -> "TransferFunction":
        return TransferFunction(-self.num, self.den)

    def __truediv__(self, other: "TFLike") -> "TransferFunction":
        other = as_transfer_function(other)
        if other.num.is_zero:
            raise ZeroDivisionError("division by the zero transfer function")
        return TransferFunction(self.num * other.den, self.den * other.num).simplified()

    def feedback(self, other: "TFLike" = 1.0) -> "TransferFunction":
        """Negative feedback: ``self / (1 + self * other)``.

        With the default unity feedback this yields the closed-loop transfer
        function used throughout the paper:
        ``C(z)G(z) / (1 + C(z)G(z))`` when called on the open loop ``C*G``.
        """
        other = as_transfer_function(other)
        num = self.num * other.den
        den = self.den * other.den + self.num * other.num
        return TransferFunction(num, den).simplified()

    def simplified(self) -> "TransferFunction":
        """Cancel exactly-common constant factors (cheap normalization only).

        Full pole/zero cancellation is numerically fragile, so we only
        normalize the denominator to be monic, keeping the overall gain in
        the numerator.
        """
        lead = self.den.coeffs[0]
        if lead == 1.0 or lead == 0.0:
            return self
        return TransferFunction(self.num.scale(1.0 / lead), self.den.scale(1.0 / lead))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def poles(self) -> np.ndarray:
        return self.den.roots()

    def zeros(self) -> np.ndarray:
        return self.num.roots()

    def dc_gain(self) -> float:
        """Static gain ``H(1)``; ``inf`` if there is a pole at z = 1."""
        den1 = self.den(1.0)
        if abs(den1) < 1e-12:
            return float("inf")
        return float(np.real(self.num(1.0) / den1))

    def evaluate(self, z: complex) -> complex:
        den = self.den(z)
        if den == 0:
            raise ZeroDivisionError(f"pole at z = {z}")
        return self.num(z) / den

    def frequency_response(self, omega: float) -> complex:
        """Response at normalized frequency ``omega`` rad/sample (z = e^{jw})."""
        return self.evaluate(np.exp(1j * omega))

    @property
    def is_proper(self) -> bool:
        """True when ``deg(num) <= deg(den)`` (physically realizable)."""
        return self.num.degree <= self.den.degree

    @property
    def is_strictly_proper(self) -> bool:
        return self.num.degree < self.den.degree

    # ------------------------------------------------------------------ #
    # formatting
    # ------------------------------------------------------------------ #
    def almost_equal(self, other: "TFLike", tol: float = 1e-9) -> bool:
        """Compare after cross-multiplying (robust to common scaling)."""
        other = as_transfer_function(other)
        return (self.num * other.den).almost_equal(other.num * self.den, tol=tol)

    def __repr__(self) -> str:
        return f"TransferFunction({self.num!r}, {self.den!r})"

    def __str__(self) -> str:
        return f"({self.num}) / ({self.den})"


TFLike = Union[TransferFunction, Polynomial, int, float]


def _coerce(value: Union[PolynomialLike, Iterable[float]]) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float)):
        return as_polynomial(value)
    return Polynomial(value)


def as_transfer_function(value: TFLike) -> TransferFunction:
    """Coerce scalars and polynomials to :class:`TransferFunction`."""
    if isinstance(value, TransferFunction):
        return value
    if isinstance(value, (Polynomial, int, float)):
        return TransferFunction(as_polynomial(value), Polynomial.one())
    raise ControlError(f"cannot interpret {value!r} as a transfer function")
