"""Deterministic test-signal builders used in system identification.

These produce plain ``list[float]`` sequences sampled at a fixed period, the
shapes used throughout the paper's Section 4.2 and Figure 8 examples: steps,
ramps, sinusoids, square waves, and piecewise-constant profiles.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import ControlError


def constant(value: float, n: int) -> List[float]:
    """``n`` samples of a constant signal."""
    _check_length(n)
    return [float(value)] * n


def step(n: int, step_at: int, low: float = 0.0, high: float = 1.0) -> List[float]:
    """A step from ``low`` to ``high`` at sample index ``step_at`` (Fig. 5A)."""
    _check_length(n)
    if not 0 <= step_at <= n:
        raise ControlError(f"step_at={step_at} outside [0, {n}]")
    return [float(low)] * step_at + [float(high)] * (n - step_at)


def ramp(n: int, start: float = 0.0, slope: float = 1.0) -> List[float]:
    """A monotone ramp (the Fig. 8A instability example)."""
    _check_length(n)
    return [float(start) + float(slope) * k for k in range(n)]


def sinusoid(n: int, period_samples: float, low: float, high: float,
             phase: float = -math.pi / 2.0) -> List[float]:
    """A sinusoid oscillating in ``[low, high]``.

    The default phase starts the signal at its minimum, matching the paper's
    sinusoidal-input identification runs where ``fin`` ranges over [0, 400].
    """
    _check_length(n)
    if period_samples <= 0:
        raise ControlError("period_samples must be positive")
    if high < low:
        raise ControlError("high must be >= low")
    mid = (high + low) / 2.0
    amp = (high - low) / 2.0
    return [mid + amp * math.sin(2.0 * math.pi * k / period_samples + phase)
            for k in range(n)]


def square_wave(n: int, period_samples: int, low: float, high: float) -> List[float]:
    """A 50%-duty square wave alternating between ``low`` and ``high``."""
    _check_length(n)
    if period_samples <= 1:
        raise ControlError("period_samples must be at least 2")
    half = period_samples / 2.0
    return [float(high) if (k % period_samples) < half else float(low)
            for k in range(n)]


def piecewise(segments: Sequence[Tuple[int, float]]) -> List[float]:
    """Concatenate constant segments given as ``(length, value)`` pairs.

    ``piecewise([(150, 1.0), (150, 3.0), (100, 5.0)])`` is the Fig. 18
    setpoint schedule at one-second sampling.
    """
    out: List[float] = []
    for length, value in segments:
        _check_length(length)
        out.extend([float(value)] * length)
    if not out:
        raise ControlError("piecewise signal has no samples")
    return out


def _check_length(n: int) -> None:
    if n < 0:
        raise ControlError("sample count must be non-negative")
