"""Time-domain simulation of discrete transfer functions.

:class:`DifferenceEquation` turns a proper :class:`TransferFunction` into a
stateful filter implementing the corresponding difference equation — exactly
the inverse-z-transform step the paper performs in Appendix A to turn
``C(z)`` into the control law of Eq. 10.

:func:`simulate` runs a whole input sequence through a transfer function and
returns the output sequence; it is the workhorse for step-response analysis.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ControlError
from .transfer_function import TransferFunction


class DifferenceEquation:
    """Stateful evaluation of ``y`` from ``u`` for a proper TF.

    Given ``H(z) = (b0 z^m + ... + bm) / (z^n + a1 z^{n-1} + ... + an)`` with
    ``m <= n``, the difference equation is::

        y(k) = -a1 y(k-1) - ... - an y(k-n)
               + b0 u(k-(n-m)) + ... + bm u(k-n)

    The object keeps the required input/output history internally; feed one
    sample at a time with :meth:`step`.
    """

    def __init__(self, tf: TransferFunction):
        if not tf.is_proper:
            raise ControlError(
                "cannot simulate an improper transfer function (needs future inputs)"
            )
        den = tf.den.monic()
        scale = tf.den.coeffs[0]
        num = tf.num.scale(1.0 / scale)
        n = den.degree
        m = num.degree
        #: denominator coefficients a1..an (a0 == 1 dropped)
        self._a = list(den.coeffs[1:])
        #: numerator coefficients aligned to lag (n - m) .. n
        self._b = list(num.coeffs)
        self._input_lag = n - m
        self._u_hist: List[float] = [0.0] * (n + 1)
        self._y_hist: List[float] = [0.0] * n
        self._order = n

    @property
    def order(self) -> int:
        return self._order

    def reset(self, u0: float = 0.0, y0: float = 0.0) -> None:
        """Reset history to a constant past (defaults to rest)."""
        self._u_hist = [float(u0)] * len(self._u_hist)
        self._y_hist = [float(y0)] * len(self._y_hist)

    def step(self, u: float) -> float:
        """Feed one input sample, return the corresponding output sample."""
        self._u_hist.insert(0, float(u))
        self._u_hist.pop()
        y = 0.0
        for i, b in enumerate(self._b):
            y += b * self._u_hist[self._input_lag + i]
        for i, a in enumerate(self._a):
            y -= a * self._y_hist[i]
        self._y_hist.insert(0, y)
        if self._y_hist:
            self._y_hist.pop()
        return y


def simulate(tf: TransferFunction, inputs: Iterable[float]) -> List[float]:
    """Run ``inputs`` through ``tf`` starting from rest; return outputs."""
    eq = DifferenceEquation(tf)
    return [eq.step(u) for u in inputs]


def step_response(tf: TransferFunction, n: int, amplitude: float = 1.0) -> List[float]:
    """Response to a step of ``amplitude`` over ``n`` samples."""
    if n < 0:
        raise ControlError("sample count must be non-negative")
    return simulate(tf, [amplitude] * n)


def impulse_response(tf: TransferFunction, n: int, amplitude: float = 1.0) -> List[float]:
    """Response to a single-sample impulse over ``n`` samples."""
    if n < 0:
        raise ControlError("sample count must be non-negative")
    inputs: Sequence[float] = [amplitude] + [0.0] * (n - 1) if n else []
    return simulate(tf, inputs)
