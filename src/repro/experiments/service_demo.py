"""Sharded service experiment: skewed arrivals, coordinated vs independent.

The scenario the service layer exists for: N shards, one hotspot source
offering a multiple of the others' load. Run the same workload once with
the coordinator disabled (``"independent"`` — N disjoint paper loops) and
once per coordinated mode, and compare the worst shard's delay violation
and the fleet's loss. The per-mode runs are independent seeded
simulations, so they fan out over the experiment process pool like any
other job matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..metrics.qos import QosMetrics
from ..service import (
    FleetConfig,
    ServiceConfig,
    ServiceResult,
    build_fleet,
    build_service,
)
from ..workloads import (
    Arrival,
    hotspot_weights,
    multi_source_arrivals,
    skewed_source_traces,
)
from .config import ExperimentConfig
from .parallel import Job, run_jobs
from .runner import make_workload

DEFAULT_MODES = ("independent", "headroom")


def build_service_workload(config: ExperimentConfig,
                           svc: ServiceConfig,
                           workload_kind: str = "web") -> List[Arrival]:
    """The skew/hotspot workload: per-source scaled copies of a base trace.

    Every source reuses the temporal shape of the named base workload
    ('web'/'pareto'); regular sources run at ``svc.per_source_rate`` mean
    tuples/s (default: 55% of one shard's baseline capacity at the equal
    headroom split) and the hotspot at ``hotspot_factor`` times that.
    """
    base = make_workload(workload_kind, config)
    shard_capacity = (svc.total_headroom / svc.n_shards) * config.capacity
    per_source = (svc.per_source_rate if svc.per_source_rate is not None
                  else 0.55 * shard_capacity)
    weights = hotspot_weights(svc.n_sources, svc.hotspot_factor,
                              svc.hotspot_index)
    traces = skewed_source_traces(base, weights, per_source_mean=per_source,
                                  names=svc.source_names)
    return multi_source_arrivals(traces, poisson=config.poisson_arrivals,
                                 seed=config.seed)


def run_service_experiment(config: ExperimentConfig,
                           svc: ServiceConfig,
                           workload_kind: str = "web") -> ServiceResult:
    """One full service run (deterministic given the two configs).

    A :class:`~repro.service.FleetConfig` spec runs as a true-parallel
    :class:`~repro.service.fleet.ProcessFleet` (deterministic too when
    ``sync=True``); a plain :class:`~repro.service.ServiceConfig` runs
    the lockstep :class:`~repro.service.StreamService`.
    """
    arrivals = build_service_workload(config, svc, workload_kind)
    runtime = (build_fleet(config, svc) if isinstance(svc, FleetConfig)
               else build_service(config, svc))
    recorder = getattr(runtime, "flight_recorder", None)
    if recorder is not None and recorder.replay_spec is not None:
        # incident bundles replay through this very function, so record
        # which synthetic workload fed the run
        recorder.replay_spec["workload_kind"] = workload_kind
    return runtime.run(arrivals, config.duration)


@dataclass(frozen=True)
class ServiceComparison:
    """The same skewed workload under several coordination modes."""

    results: Dict[str, ServiceResult]

    def worst_shard_violation(self) -> Dict[str, float]:
        """Mode -> the worst shard's accumulated delay violation."""
        return {mode: result.worst_shard("accumulated_violation")[1]
                for mode, result in self.results.items()}

    def aggregate_qos(self) -> Dict[str, QosMetrics]:
        return {mode: result.aggregate_qos()
                for mode, result in self.results.items()}

    def coordination_gain(self, mode: str = "headroom",
                          baseline: str = "independent") -> float:
        """Worst-shard violation ratio baseline/mode (> 1: coordination wins)."""
        violations = self.worst_shard_violation()
        if violations[mode] <= 0:
            return float("inf") if violations[baseline] > 0 else 1.0
        return violations[baseline] / violations[mode]


@dataclass(frozen=True)
class FleetComparison:
    """The same workload run lockstep and as a true-parallel fleet."""

    lockstep: ServiceResult
    fleet: ServiceResult

    @property
    def speedup(self) -> float:
        """Lockstep wall-clock over fleet wall-clock (> 1: fleet wins).

        Only meaningful on multi-core machines; on one CPU the fleet
        pays process overhead for no parallelism.
        """
        if self.fleet.wall_seconds <= 0:
            return float("inf")
        return self.lockstep.wall_seconds / self.fleet.wall_seconds

    def aggregates_match(self) -> bool:
        """True when both runs produced identical per-shard aggregates.

        Exact equality, not tolerance: a sync-mode fleet reproduces the
        lockstep trajectory float-for-float, so ``periods``, arrivals,
        departures and drops must agree bit-for-bit per shard.
        """
        if set(self.lockstep.shard_records) != set(self.fleet.shard_records):
            return False
        for name, lock in self.lockstep.shard_records.items():
            par = self.fleet.shard_records[name]
            for attr in ("periods", "departures", "offered_total",
                         "entry_dropped_total"):
                if getattr(lock, attr) != getattr(par, attr):
                    return False
        return True


def fleet_comparison(config: Optional[ExperimentConfig] = None,
                     svc: Optional[FleetConfig] = None,
                     workload_kind: str = "web") -> FleetComparison:
    """Run the hotspot scenario lockstep, then as a process fleet.

    The two legs share the exact same configs and workload; with
    ``svc.sync`` left on, :meth:`FleetComparison.aggregates_match` is the
    deterministic-equivalence check and :attr:`FleetComparison.speedup`
    the wall-clock win. Runs serially (the fleet wants the machine's
    cores to itself for an honest timing).
    """
    config = config or ExperimentConfig()
    svc = svc or FleetConfig()
    if not isinstance(svc, FleetConfig):
        raise ExperimentError("fleet_comparison needs a FleetConfig spec")
    lockstep = run_service_experiment(config, svc.as_lockstep(),
                                      workload_kind)
    fleet = run_service_experiment(config, svc, workload_kind)
    return FleetComparison(lockstep=lockstep, fleet=fleet)


def service_comparison(config: Optional[ExperimentConfig] = None,
                       svc: Optional[ServiceConfig] = None,
                       modes: Sequence[str] = DEFAULT_MODES,
                       workload_kind: str = "web",
                       workers: Optional[int] = None) -> ServiceComparison:
    """Run the hotspot scenario once per coordination mode (one pool pass)."""
    if not modes:
        raise ExperimentError("need at least one coordination mode")
    config = config or ExperimentConfig()
    svc = svc or ServiceConfig()
    jobs = [
        Job(config=config, workload_kind=workload_kind,
            service=svc.with_mode(mode), key=mode)
        for mode in modes
    ]
    results = run_jobs(jobs, workers=workers)
    return ServiceComparison(dict(zip(modes, results)))
