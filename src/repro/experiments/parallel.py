"""Parallel experiment fan-out.

Every figure reproduction and ablation is a sweep of independent,
fully-seeded simulations (strategies x workloads x actuators x seeds).
This module turns one such sweep into a list of picklable :class:`Job`
specs and executes them on a :class:`~concurrent.futures.ProcessPoolExecutor`
via :func:`run_jobs`.

Determinism contract: a :class:`Job` carries *everything* that influences
its run (config, seeds, strategy, actuator, workload spec), and
:func:`execute_job` derives all randomness from those seeds, so executing a
job in a worker process, in the parent process, or twice in a row yields
bit-identical :class:`~repro.metrics.recorder.RunRecord` series (only the
informational ``wall_seconds`` stamp differs between runs). The serial
fallback therefore produces exactly the results the pool would.

Environment knobs:

* ``REPRO_PARALLEL=0`` (also ``false``/``off``/``no``) forces the serial
  fallback regardless of the requested worker count;
* ``REPRO_WORKERS=N`` sets the default pool size (default: CPU count).

Failure handling: a job that dies for *transient* infrastructure reasons
(worker process killed, pool broken, per-job wait timeout) is retried once
serially in the parent process — which, by the determinism contract, gives
the same answer a healthy worker would have. Deterministic exceptions from
the experiment itself propagate to the caller unchanged. Jobs that cannot
be pickled (e.g. closure-based controller factories) quietly run serially.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

try:  # BrokenProcessPool moved around across minor versions
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient interpreters
    class BrokenProcessPool(RuntimeError):
        """Placeholder that never matches a raised exception."""

from ..core.estimation import (
    KalmanCostEstimator,
    LastValueEstimator,
    WindowMedianEstimator,
)
from ..errors import ExperimentError
from ..metrics.recorder import RunRecord
from ..service.config import ServiceConfig
from ..workloads import CostTrace, RateTrace
from .config import ExperimentConfig
from .runner import make_cost_trace, make_workload, run_strategy

#: sentinel for "derive the Fig. 14 cost trace from the job's config"
AUTO = "auto"

#: named cost-estimator factories usable from a picklable Job spec;
#: each maps the config's base cost to a fresh estimator. ``None`` keeps
#: the config's default (the slow Borealis-like EWMA).
ESTIMATOR_SPECS: Dict[str, Callable[[float], object]] = {
    "last": LastValueEstimator,
    "median5": lambda c: WindowMedianEstimator(c, window=5),
    "kalman": KalmanCostEstimator,
}


@dataclass(frozen=True)
class Job:
    """One fully-specified experiment run.

    Exactly one of ``workload`` (an explicit :class:`RateTrace`) or
    ``workload_kind`` (``'web'``/``'pareto'``, generated in the worker from
    the job's config) must be provided. ``cost_trace`` defaults to the
    :data:`AUTO` sentinel, meaning "build the Fig. 14 trace from the
    config" (which honours ``config.use_cost_trace``); pass ``None`` to
    disable cost variations outright or an explicit :class:`CostTrace` to
    pin one.
    """

    strategy: Union[str, Callable] = "CTRL"
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    workload_kind: Optional[str] = None
    workload: Optional[RateTrace] = None
    cost_trace: Union[str, CostTrace, None] = AUTO
    actuator: str = "entry"
    target: Union[float, Callable[[int], float], None] = None
    controller_kwargs: Optional[dict] = None
    estimator: Optional[str] = None       # key into ESTIMATOR_SPECS
    #: engine backend name for repro.dsms.make_engine; None follows the
    #: job config's ``engine_backend``
    engine_kind: Optional[str] = None
    scheduler: Optional[str] = None       # spec string, see runner.make_scheduler
    seed: Optional[int] = None            # overrides config.seed when set
    arrival_seed: Optional[int] = None
    key: Optional[str] = None             # caller-chosen label
    #: when set, the job runs a whole sharded service (N coordinated
    #: control loops over a skewed multi-source workload derived from
    #: ``workload_kind``) and yields a ServiceResult instead of a RunRecord
    service: Optional[ServiceConfig] = None

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.workload_kind is None):
            raise ExperimentError(
                "a Job needs exactly one of 'workload' or 'workload_kind'"
            )
        if self.service is not None and self.workload_kind is None:
            raise ExperimentError(
                "a service job derives its skewed per-source workload from "
                "'workload_kind'; explicit workloads are not supported"
            )
        if self.estimator is not None and self.estimator not in ESTIMATOR_SPECS:
            raise ExperimentError(
                f"unknown estimator spec {self.estimator!r}; "
                f"pick from {sorted(ESTIMATOR_SPECS)}"
            )

    @property
    def label(self) -> str:
        if self.key is not None:
            return self.key
        strategy = (self.strategy if isinstance(self.strategy, str)
                    else getattr(self.strategy, "__name__", "custom"))
        kind = self.workload_kind or "trace"
        return f"{strategy}/{kind}/{self.actuator}/seed={self.resolved_config().seed}"

    def resolved_config(self) -> ExperimentConfig:
        """The config this job actually runs with (per-job seed applied)."""
        if self.seed is None:
            return self.config
        return replace(self.config, seed=self.seed)


def _execute_job_relayed(job: Job, relay_queue) -> RunRecord:
    """Pool-worker entry point: run the job with its bus relayed home.

    Module-level (and thus picklable) wrapper around :func:`execute_job`
    that forwards every event the job emits on this worker's default bus
    to the parent's :class:`~repro.obs.relay.EventRelay` queue, labelled
    with this worker's pid. Only the pool path uses it — serial and
    retry runs already emit on the parent bus directly.
    """
    from ..obs.relay import worker_relay  # lazy: keep plain sweeps light

    with worker_relay(relay_queue):
        return execute_job(job)


def execute_job(job: Job) -> RunRecord:
    """Run one job to completion in the current process (deterministic)."""
    config = job.resolved_config()
    if job.service is not None:
        # service jobs run a whole coordinated fleet; imported lazily so
        # plain single-loop sweeps never touch the service layer
        from .service_demo import run_service_experiment

        return run_service_experiment(  # type: ignore[return-value]
            config, job.service, workload_kind=job.workload_kind,
        )
    workload = (job.workload if job.workload is not None
                else make_workload(job.workload_kind, config))
    if isinstance(job.cost_trace, str):
        if job.cost_trace != AUTO:
            raise ExperimentError(
                f"unknown cost_trace spec {job.cost_trace!r}"
            )
        cost_trace = make_cost_trace(config)
    else:
        cost_trace = job.cost_trace
    spec = None if job.estimator is None else ESTIMATOR_SPECS[job.estimator]
    estimator_factory = (None if spec is None
                         else (lambda: spec(config.base_cost)))
    return run_strategy(
        job.strategy, workload, config, cost_trace,
        target=job.target,
        actuator=job.actuator,
        arrival_seed=job.arrival_seed,
        controller_kwargs=job.controller_kwargs,
        estimator_factory=estimator_factory,
        engine_kind=job.engine_kind,
        scheduler=job.scheduler,
    )


# ---------------------------------------------------------------------- #
# pool management
# ---------------------------------------------------------------------- #
def parallel_enabled() -> bool:
    """False when ``REPRO_PARALLEL`` disables the pool."""
    return os.environ.get("REPRO_PARALLEL", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def default_workers() -> int:
    """Pool size: ``REPRO_WORKERS`` when set, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ExperimentError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def _picklable(job: Job) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


def run_jobs(jobs: Sequence[Job],
             workers: Optional[int] = None,
             timeout: Optional[float] = None,
             relay=None) -> List[RunRecord]:
    """Execute ``jobs`` and return their records in submission order.

    ``workers`` caps the process pool (default: :func:`default_workers`,
    never more than there are jobs). ``timeout`` is the per-job wait budget
    in wall seconds once the caller starts waiting on that job; a job that
    exceeds it, or whose worker dies, is retried once serially in the
    parent. With ``REPRO_PARALLEL=0``, one job, or one worker, everything
    runs serially in-process — producing bit-identical records either way.

    ``relay`` (a started-or-not :class:`~repro.obs.relay.EventRelay`)
    makes pool workers stream their bus events back to the parent, so
    live consumers — metrics, health, the :class:`~repro.obs.serve.ObsServer`
    dashboard — observe the whole fan-out with per-worker provenance.
    Events relayed mid-run arrive as workers produce them; call
    ``relay.flush()`` after :func:`run_jobs` returns to barrier on the
    tail. Serial paths (fallback, unpicklable jobs, the transient-failure
    retry) skip the relay: their events are already live on the parent
    bus. The relay never changes the returned records.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), len(jobs)))
    if not parallel_enabled() or workers == 1 or len(jobs) == 1:
        return [execute_job(job) for job in jobs]

    results: List[Optional[RunRecord]] = [None] * len(jobs)
    pool_indices = [i for i, job in enumerate(jobs) if _picklable(job)]
    serial_indices = [i for i in range(len(jobs)) if i not in set(pool_indices)]

    if pool_indices:
        if relay is not None:
            relay.start()  # idempotent; caller still owns stop()
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pool_indices)))
        try:
            if relay is not None:
                futures = {i: pool.submit(_execute_job_relayed, jobs[i],
                                          relay.queue)
                           for i in pool_indices}
            else:
                futures = {i: pool.submit(execute_job, jobs[i])
                           for i in pool_indices}
            for i, future in futures.items():
                try:
                    results[i] = future.result(timeout=timeout)
                except (BrokenProcessPool, _FutureTimeoutError, OSError):
                    # transient infrastructure failure: the single retry runs
                    # serially here, which determinism makes equivalent
                    results[i] = execute_job(jobs[i])
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    for i in serial_indices:
        results[i] = execute_job(jobs[i])
    return results  # type: ignore[return-value]


def run_jobs_keyed(jobs: Sequence[Job],
                   workers: Optional[int] = None,
                   timeout: Optional[float] = None,
                   relay=None) -> Dict[str, RunRecord]:
    """Like :func:`run_jobs` but returns ``{job.label: record}``.

    Labels must be unique across ``jobs``.
    """
    jobs = list(jobs)
    labels = [job.label for job in jobs]
    if len(set(labels)) != len(labels):
        raise ExperimentError("job labels must be unique for keyed execution")
    records = run_jobs(jobs, workers=workers, timeout=timeout, relay=relay)
    return dict(zip(labels, records))
