"""Canonical experiment configuration (paper Section 5).

The paper's settings: identification network with capacity ~190 tuples/s,
headroom ``H = 0.97``, control period ``T = 1000 ms``, delay target
``yd = 2000 ms``, 400-second runs, CTRL gains ``b0 = 0.4, b1 = -0.31,
a = -0.8``, Fig. 14 cost variations, Web and Pareto(beta=1) input traces.

Two deliberate calibration choices (argued in DESIGN.md §5):

* the per-tuple cost estimate is smoothed with an EWMA whose *wall-clock*
  time constant is ~20 s (``cost_tau``), modeling the long sampling window
  of the Borealis statistics subsystem; that estimation lag is precisely
  what exposes the open-loop shedder's failure modes under the Fig. 14
  cost variations — an estimator converging within one period would hide
  them;
* every control cycle charges a small CPU cost (``control_overhead``) for
  monitoring and shedder reconfiguration; negligible at the paper's
  T = 1 s, it is what makes very small control periods counterproductive
  (the left side of Fig. 19's U-shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from ..core.estimation import CostEstimator, EwmaEstimator

#: paper defaults
DEFAULT_CAPACITY = 190.0          # tuples/s at H = 1
DEFAULT_HEADROOM = 0.97
DEFAULT_PERIOD = 1.0              # seconds
DEFAULT_TARGET = 2.0              # seconds
DEFAULT_DURATION = 400.0          # seconds
DEFAULT_MEAN_RATE = 230.0         # offered load of the Web trace
DEFAULT_PARETO_MEAN_RATE = 160.0  # offered load of the Pareto trace
                                  # (spiky: long sub-capacity stretches with
                                  # bursts to the 800/s cap, as in Fig. 13)
DEFAULT_COST_TAU = 20.0           # cost-estimator time constant, seconds
DEFAULT_CONTROL_OVERHEAD = 0.003  # CPU seconds per control cycle


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs shared by the paper-reproduction experiments."""

    capacity: float = DEFAULT_CAPACITY
    headroom: float = DEFAULT_HEADROOM
    period: float = DEFAULT_PERIOD
    target: float = DEFAULT_TARGET
    duration: float = DEFAULT_DURATION
    mean_rate: float = DEFAULT_MEAN_RATE
    pareto_mean_rate: float = DEFAULT_PARETO_MEAN_RATE
    cost_tau: float = DEFAULT_COST_TAU
    control_overhead: float = DEFAULT_CONTROL_OVERHEAD
    seed: int = 42
    use_cost_trace: bool = True    # apply the Fig. 14 cost variations
    poisson_arrivals: bool = True  # Poisson within-period arrival placement
    #: engine backend driven by :func:`repro.dsms.make_engine` — "full"
    #: (discrete-event), "fluid" (scalar Eq. 2 FIFO) or "batch"
    #: (vectorized fluid spans; needs the ``repro[fast]`` extra)
    engine_backend: str = "full"

    @property
    def base_cost(self) -> float:
        """Expected CPU seconds per tuple (the paper's ~5.26 ms)."""
        return 1.0 / self.capacity

    @property
    def n_periods(self) -> int:
        return int(round(self.duration / self.period))

    def make_cost_estimator(self) -> CostEstimator:
        """An EWMA whose time constant is ``cost_tau`` *seconds*.

        The per-period weight is ``1 - exp(-T / tau)`` so the estimator's
        lag is the same wall-clock duration at every control period,
        mirroring a fixed statistics window.
        """
        alpha = 1.0 - math.exp(-self.period / self.cost_tau)
        return EwmaEstimator(self.base_cost, max(alpha, 1e-6))

    def scaled(self, **changes) -> "ExperimentConfig":
        """A modified copy (e.g. shorter duration for quick benchmarks)."""
        return replace(self, **changes)


#: the configuration used by the paper's evaluation
PAPER_CONFIG = ExperimentConfig()

#: a quick configuration for CI: same shapes, shorter runs
QUICK_CONFIG = ExperimentConfig(duration=120.0)
