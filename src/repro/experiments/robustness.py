"""Robustness experiments (paper Figs. 16 and 17).

* :func:`aurora_retuned` (Fig. 16) — can AURORA be rescued by assuming a
  smaller headroom (H = 0.96, i.e. shedding more aggressively)? The paper
  finds it stays unstable on the Web input and, where it does stabilize,
  pays substantially more data loss than CTRL.
* :func:`burstiness_sweep` (Fig. 17) — metrics across Pareto bias factors
  beta in {0.1, ..., 1.5}, each normalized to the beta = 1.5 value of the
  same strategy. CTRL stays flat; AURORA degrades sharply as the input
  becomes burstier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..metrics.qos import QosMetrics
from ..metrics.recorder import RunRecord
from ..workloads import pareto_rate_trace_with_mean
from .config import ExperimentConfig
from .runner import make_cost_trace, make_workload, run_strategy

#: the paper's Fig. 17 sweep
PAPER_BIAS_FACTORS = (0.1, 0.25, 0.5, 1.0, 1.25, 1.5)


@dataclass(frozen=True)
class RetunedAuroraResult:
    """Fig. 16 bundle for one workload."""

    workload: str
    aurora_record: RunRecord
    aurora_metrics: QosMetrics
    ctrl_metrics: QosMetrics

    @property
    def relative_loss(self) -> float:
        """AURORA(H=0.96) data loss relative to CTRL (paper: ~1.37 on Pareto)."""
        if self.ctrl_metrics.loss_ratio == 0:
            return float("inf") if self.aurora_metrics.loss_ratio > 0 else 1.0
        return self.aurora_metrics.loss_ratio / self.ctrl_metrics.loss_ratio


def aurora_retuned(workload_kind: str,
                   config: Optional[ExperimentConfig] = None,
                   headroom_override: float = 0.96,
                   backend: Optional[str] = None) -> RetunedAuroraResult:
    """Fig. 16: AURORA with a deliberately pessimistic capacity estimate.

    ``backend="batch"`` runs both comparators as one vectorized grid on
    the :mod:`repro.experiments.batch_sweep` fast path.
    """
    config = config or ExperimentConfig()
    if backend == "batch":
        from .batch_sweep import GridPoint, run_batch_grid

        points = [
            GridPoint(config=config, strategy="AURORA",
                      workload_kind=workload_kind,
                      headroom_override=headroom_override,
                      keep_record=True, key="aurora"),
            GridPoint(config=config, strategy="CTRL",
                      workload_kind=workload_kind, key="ctrl"),
        ]
        aurora_res, ctrl_res = run_batch_grid(points)
        return RetunedAuroraResult(
            workload=workload_kind,
            aurora_record=aurora_res.record,
            aurora_metrics=aurora_res.qos,
            ctrl_metrics=ctrl_res.qos,
        )
    workload = make_workload(workload_kind, config)
    cost_trace = make_cost_trace(config)
    aurora = run_strategy(
        "AURORA", workload, config, cost_trace,
        controller_kwargs={"headroom_override": headroom_override},
    )
    ctrl = run_strategy("CTRL", workload, config, cost_trace)
    return RetunedAuroraResult(
        workload=workload_kind,
        aurora_record=aurora,
        aurora_metrics=aurora.qos(),
        ctrl_metrics=ctrl.qos(),
    )


@dataclass(frozen=True)
class BurstinessSweepResult:
    """Fig. 17 for one strategy: metrics per bias factor."""

    strategy: str
    metrics: Dict[float, QosMetrics]

    def normalized(self, reference_beta: float = 1.5) -> Dict[float, Dict[str, float]]:
        """Each metric relative to its value at ``reference_beta``."""
        ref = self.metrics[reference_beta]

        def safe(a: float, b: float) -> float:
            return a / b if b > 1e-12 else (float("inf") if a > 1e-12 else 1.0)

        return {
            beta: {
                "accumulated_violation": safe(q.accumulated_violation,
                                              ref.accumulated_violation),
                "delayed_tuples": safe(q.delayed_tuples, ref.delayed_tuples),
                "max_overshoot": safe(q.max_overshoot, ref.max_overshoot),
                "loss_ratio": safe(q.loss_ratio, ref.loss_ratio),
            }
            for beta, q in self.metrics.items()
        }

    def spread(self, metric: str = "accumulated_violation") -> float:
        """max/min of the normalized metric across the sweep — the paper's
        robustness figure of merit (small = flat = robust)."""
        values = [m[metric] for m in self.normalized().values()
                  if m[metric] != float("inf")]
        lo = min(values)
        return max(values) / lo if lo > 0 else float("inf")


def burstiness_sweep(strategy: str,
                     config: Optional[ExperimentConfig] = None,
                     bias_factors: Sequence[float] = PAPER_BIAS_FACTORS,
                     backend: Optional[str] = None
                     ) -> BurstinessSweepResult:
    """Fig. 17: one strategy across Pareto bias factors.

    ``backend="batch"`` runs the whole sweep as one vectorized grid on
    the :mod:`repro.experiments.batch_sweep` fast path.
    """
    config = config or ExperimentConfig()
    if backend == "batch":
        from .batch_sweep import GridPoint, run_batch_grid

        points = [
            GridPoint(config=config, strategy=strategy,
                      workload_kind="pareto", beta=beta, key=f"beta={beta}")
            for beta in bias_factors
        ]
        results = run_batch_grid(points)
        return BurstinessSweepResult(
            strategy=strategy,
            metrics={beta: r.qos
                     for beta, r in zip(bias_factors, results)},
        )
    cost_trace = make_cost_trace(config)
    metrics: Dict[float, QosMetrics] = {}
    for beta in bias_factors:
        workload = pareto_rate_trace_with_mean(
            config.n_periods, beta=beta, target_mean=config.pareto_mean_rate,
            period=config.period, seed=config.seed,
        )
        record = run_strategy(strategy, workload, config, cost_trace)
        metrics[beta] = record.qos()
    return BurstinessSweepResult(strategy=strategy, metrics=metrics)
