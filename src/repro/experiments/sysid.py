"""System identification experiments (paper Section 4.2, Figs. 5-7).

These run the engine *without* any control loop and verify the dynamic
model the controller design rests on:

* :func:`step_response` (Fig. 5) — below capacity the delay is constant;
  above it the virtual queue integrates and the delay grows linearly
  (``Δy`` converges to a constant).
* :func:`model_verification` (Figs. 6, 7) — compare measured per-period
  delays against Eq. 2 predictions built from runtime ``q(k)`` counts, for
  several candidate headroom values; the correct ``H`` minimizes the
  modeling error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..dsms import identification_network, make_engine
from ..errors import ExperimentError
from ..metrics.qos import delays_by_arrival_period
from ..workloads import RateTrace, arrivals_from_trace
from .config import ExperimentConfig


@dataclass(frozen=True)
class OpenLoopRun:
    """Per-period observations of an uncontrolled engine."""

    rates: List[float]          # fin(k) offered, tuples/s
    queue_at_boundary: List[int]   # q(k) at the end of each period
    delays: List[float]         # measured mean delay of period-k arrivals
    measured_cost: float        # realized CPU seconds per departed tuple


def open_loop_run(trace: RateTrace, config: ExperimentConfig,
                  drain: float = 300.0) -> OpenLoopRun:
    """Feed a rate trace straight into the engine and observe."""
    engine = make_engine(
        "full",
        network=identification_network(capacity=config.capacity),
        headroom=config.headroom, rng=random.Random(config.seed))
    arrivals = arrivals_from_trace(trace, seed=config.seed)
    engine.submit_many(arrivals)
    q_series: List[int] = []
    n = len(trace)
    for k in range(1, n + 1):
        engine.run_until(k * trace.period)
        q_series.append(engine.outstanding)
    # drain so that every tuple's delay resolves
    engine.run_until(n * trace.period + drain)
    departures = engine.drain_departures()
    delays = delays_by_arrival_period(departures, trace.period)
    delays += [0.0] * (n - len(delays))
    cost = engine.cpu_used / engine.departed_total if engine.departed_total else 0.0
    return OpenLoopRun(
        rates=list(trace),
        queue_at_boundary=q_series,
        delays=delays[:n],
        measured_cost=cost,
    )


# --------------------------------------------------------------------- #
# Fig. 5
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StepResponseResult:
    """One Fig. 5 curve: a step to ``rate`` tuples/s at ``step_at`` seconds."""

    rate: float
    delays: List[float]         # y(k), Fig. 5B
    delay_increments: List[float]  # Δy(k) = y(k) - y(k-1), Fig. 5C

    @property
    def saturated(self) -> bool:
        """True when the input exceeded capacity (delay kept growing)."""
        tail = self.delay_increments[-10:]
        return sum(tail) / len(tail) > 0.01


def step_response(rates: Sequence[float] = (150.0, 190.0, 200.0, 300.0),
                  config: ExperimentConfig = None,
                  duration: float = 50.0,
                  step_at: float = 10.0,
                  idle_rate: float = 10.0) -> Dict[float, StepResponseResult]:
    """The Fig. 5 experiment: step inputs at several magnitudes."""
    config = config or ExperimentConfig()
    if step_at >= duration:
        raise ExperimentError("step must occur before the end of the run")
    results: Dict[float, StepResponseResult] = {}
    n = int(round(duration / config.period))
    k_step = int(round(step_at / config.period))
    for rate in rates:
        trace = RateTrace(
            [idle_rate] * k_step + [rate] * (n - k_step), config.period
        )
        run = open_loop_run(trace, config)
        deltas = [0.0] + [run.delays[i] - run.delays[i - 1]
                          for i in range(1, len(run.delays))]
        results[rate] = StepResponseResult(
            rate=rate, delays=run.delays, delay_increments=deltas
        )
    return results


# --------------------------------------------------------------------- #
# Figs. 6 and 7
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModelFit:
    """Eq. 2 predictions vs measurement for one candidate headroom."""

    headroom: float
    predicted: List[float]
    errors: List[float]         # predicted - measured, per period

    @property
    def rms_error(self) -> float:
        if not self.errors:
            return 0.0
        return (sum(e * e for e in self.errors) / len(self.errors)) ** 0.5


@dataclass(frozen=True)
class ModelVerificationResult:
    """The Fig. 6/7 bundle: measured series plus fits for each H."""

    measured: List[float]
    fits: Dict[float, ModelFit]
    measured_cost: float

    def best_headroom(self) -> float:
        return min(self.fits.values(), key=lambda f: f.rms_error).headroom


def model_verification(trace: RateTrace,
                       config: ExperimentConfig = None,
                       candidate_headrooms: Sequence[float] = (0.95, 0.97, 1.00),
                       ) -> ModelVerificationResult:
    """Fit Eq. 2 (ŷ(k) = (q(k-1)+1) c/H) against a measured run.

    The run itself uses the config's true headroom; the candidate fits ask
    which ``H`` value best explains the data — the paper's Fig. 6B shows
    0.97 beating 0.95 and 1.00 on its Borealis installation, and the same
    procedure here recovers the engine's configured headroom.
    """
    config = config or ExperimentConfig()
    run = open_loop_run(trace, config)
    c = run.measured_cost
    fits: Dict[float, ModelFit] = {}
    for h in candidate_headrooms:
        predicted = []
        for k in range(len(trace)):
            # Eq. 2 uses the queue the period's arrivals meet; with fast
            # ramps the mid-period (trapezoidal) queue is the unbiased
            # choice — at the paper's T = 1 s the difference is small
            q_prev = run.queue_at_boundary[k - 1] if k > 0 else 0
            q_mid = 0.5 * (q_prev + run.queue_at_boundary[k])
            predicted.append((q_mid + 1) * c / h)
        errors = [
            p - m for p, m in zip(predicted, run.delays)
            if m > 0.0  # skip periods with no delivered arrivals
        ]
        fits[h] = ModelFit(headroom=h, predicted=predicted, errors=errors)
    return ModelVerificationResult(
        measured=run.delays, fits=fits, measured_cost=c
    )
