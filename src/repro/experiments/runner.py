"""Shared machinery: build an engine + control loop and run one strategy."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Union

from ..core import (
    AdaptiveController,
    AuroraOpenLoopController,
    BackpressureController,
    BaselineController,
    ControlLoop,
    Controller,
    DsmsModel,
    EntryActuator,
    InNetworkActuator,
    Monitor,
    PolePlacementController,
)
from ..dsms import (
    DepthFirstScheduler,
    Engine,
    RoundRobinScheduler,
    Scheduler,
    identification_network,
    make_engine,
)
from ..errors import ExperimentError
from ..metrics.recorder import RunRecord
from ..obs.logconf import get_logger
from ..shedding import BoundedEntryShedder, LsrmShedder, QueueShedder
from ..workloads import (
    CostTrace,
    RateTrace,
    cached_arrivals_from_trace,
    fig14_cost_trace,
    pareto_rate_trace_with_mean,
    web_rate_trace,
)
from .config import ExperimentConfig

#: strategy name -> controller factory
STRATEGIES: Dict[str, Callable[[DsmsModel], Controller]] = {
    "CTRL": PolePlacementController,
    "BASELINE": BaselineController,
    "AURORA": AuroraOpenLoopController,
    "BACKPRESSURE": BackpressureController,
    "ADAPTIVE": AdaptiveController,
}

ACTUATORS = ("entry", "queue", "lsrm")

_log = get_logger("experiments")


def make_workload(kind: str, config: ExperimentConfig,
                  beta: float = 1.0) -> RateTrace:
    """The paper's two input traces by name ('web' or 'pareto')."""
    n = config.n_periods
    if kind == "web":
        return web_rate_trace(n, mean_rate=config.mean_rate,
                              period=config.period, seed=config.seed)
    if kind == "pareto":
        return pareto_rate_trace_with_mean(
            n, beta=beta, target_mean=config.pareto_mean_rate,
            period=config.period, seed=config.seed,
        )
    raise ExperimentError(f"unknown workload kind {kind!r}")


def make_cost_trace(config: ExperimentConfig) -> Optional[CostTrace]:
    """The Fig. 14 cost trace, or None when the config disables it."""
    if not config.use_cost_trace:
        return None
    return fig14_cost_trace(int(config.duration), base_cost=config.base_cost,
                            seed=config.seed)


def make_scheduler(spec: Optional[str], network) -> Optional[Scheduler]:
    """Build a scheduler from a picklable spec string.

    ``None`` keeps the engine default (depth-first). Recognized specs:
    ``'depth_first'``, ``'round_robin'``, and ``'round_robin:<batch>'``.
    """
    if spec is None:
        return None
    if spec == "depth_first":
        return DepthFirstScheduler(network)
    if spec == "round_robin":
        return RoundRobinScheduler(network)
    if spec.startswith("round_robin:"):
        try:
            batch = int(spec.split(":", 1)[1])
        except ValueError:
            raise ExperimentError(
                f"bad round_robin batch in scheduler spec {spec!r}"
            ) from None
        return RoundRobinScheduler(network, batch=batch)
    raise ExperimentError(
        f"unknown scheduler spec {spec!r}; use 'depth_first', "
        "'round_robin' or 'round_robin:<batch>'"
    )


def build_engine(config: ExperimentConfig,
                 cost_trace: Optional[CostTrace] = None,
                 engine_seed: int = 0,
                 scheduler: Optional[str] = None) -> Engine:
    """A fresh identification-network engine wired to the cost trace."""
    multiplier = (cost_trace.as_multiplier(config.base_cost)
                  if cost_trace is not None else None)
    network = identification_network(capacity=config.capacity)
    return make_engine(
        "full",
        network=network,
        headroom=config.headroom,
        scheduler=make_scheduler(scheduler, network),
        cost_multiplier=multiplier,
        rng=random.Random(engine_seed),
    )


def run_strategy(strategy: Union[str, Callable[[DsmsModel], Controller]],
                 workload: RateTrace,
                 config: ExperimentConfig,
                 cost_trace: Optional[CostTrace] = None,
                 target: Union[float, Callable[[int], float], None] = None,
                 actuator: str = "entry",
                 alpha_cap: float = 1.0,
                 arrival_seed: Optional[int] = None,
                 controller_kwargs: Optional[dict] = None,
                 estimator_factory: Optional[Callable[[], object]] = None,
                 engine_kind: Optional[str] = None,
                 scheduler: Optional[str] = None,
                 bus=None,
                 tracer=None,
                 tuple_tracer=None) -> RunRecord:
    """Run one strategy over one workload; returns the full run record.

    ``estimator_factory`` overrides the config's cost estimator (used by
    the estimator ablation benchmark). ``engine_kind`` names an engine
    backend for :func:`repro.dsms.make_engine` — ``"full"`` (discrete
    event), ``"fluid"`` (scalar Eq. 2 FIFO) or ``"batch"`` (vectorized
    fluid spans); ``None`` takes ``config.engine_backend``. The fluid
    backends support only the entry actuator. ``scheduler`` is a spec
    string for :func:`make_scheduler` (full engine only). ``bus``,
    ``tracer`` and ``tuple_tracer`` thread straight into the
    :class:`ControlLoop` for live observability (see :mod:`repro.obs`).
    ``alpha_cap`` < 1 bounds the entry shedder's drop probability (a
    per-run loss SLA); capping below the overload's required drop rate
    saturates the actuator — the canonical way to force the
    queue-divergence regime the sysid/health detectors and the flight
    recorder's incident path are designed for.
    """
    if isinstance(strategy, str):
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            raise ExperimentError(
                f"unknown strategy {strategy!r}; pick from {sorted(STRATEGIES)}"
            ) from None
    else:
        factory = strategy
    if actuator not in ACTUATORS:
        raise ExperimentError(f"unknown actuator {actuator!r}; pick from {ACTUATORS}")
    if engine_kind is None:
        engine_kind = config.engine_backend
    if engine_kind == "full":
        engine = build_engine(config, cost_trace, scheduler=scheduler)
    elif engine_kind in ("fluid", "batch"):
        if actuator != "entry":
            raise ExperimentError(
                "the fluid engines have no operator queues; use actuator='entry'"
            )
        if scheduler is not None:
            raise ExperimentError(
                "the fluid engines have no operator scheduler to configure"
            )
        multiplier = (cost_trace.as_multiplier(config.base_cost)
                      if cost_trace is not None else None)
        kwargs = dict(cost=config.base_cost, headroom=config.headroom,
                      cost_multiplier=multiplier)
        if engine_kind == "batch" and cost_trace is not None:
            # the cost trace is piecewise-constant on its own period grid;
            # telling the batch engine makes its span sampling exact
            kwargs["multiplier_period"] = cost_trace.period
        engine = make_engine(engine_kind, **kwargs)
    else:
        raise ExperimentError(f"unknown engine kind {engine_kind!r}")
    model = DsmsModel(cost=config.base_cost, headroom=config.headroom,
                      period=config.period)
    estimator = (estimator_factory() if estimator_factory is not None
                 else config.make_cost_estimator())
    monitor = Monitor(engine, model, cost_estimator=estimator)
    controller = factory(model, **(controller_kwargs or {}))
    if actuator == "entry":
        if alpha_cap < 1.0:
            act = EntryActuator(BoundedEntryShedder(alpha_cap=alpha_cap))
        else:
            act = EntryActuator()
    elif actuator == "queue":
        act = InNetworkActuator(QueueShedder(engine, random.Random(config.seed)))
    else:
        act = InNetworkActuator(LsrmShedder(engine, random.Random(config.seed)))
    loop = ControlLoop(
        engine, controller, monitor, act,
        target=config.target if target is None else target,
        period=config.period,
        cycle_cost=config.control_overhead,
        bus=bus,
        tracer=tracer,
        tuple_tracer=tuple_tracer,
    )
    # memoized on disk by workload hash so pool workers materialize each
    # distinct trace once (see repro.workloads.cache)
    arrivals = cached_arrivals_from_trace(
        workload,
        poisson=config.poisson_arrivals,
        seed=config.seed if arrival_seed is None else arrival_seed,
    )
    strategy_name = strategy if isinstance(strategy, str) else factory.__name__
    _log.debug("running strategy %s over %d arrivals (engine=%s, actuator=%s)",
               strategy_name, len(arrivals), engine_kind, actuator)
    record = loop.run(arrivals, config.duration)
    _log.info("strategy %s: %d periods, %d offered, %d entry-dropped, "
              "wall %.3fs", strategy_name, len(record.periods),
              record.offered_total, record.entry_dropped_total,
              record.wall_seconds)
    return record


def run_all_strategies(workload: RateTrace, config: ExperimentConfig,
                       cost_trace: Optional[CostTrace] = None,
                       strategies: Optional[List[str]] = None,
                       actuator: str = "entry",
                       workers: Optional[int] = None) -> Dict[str, RunRecord]:
    """Run several strategies over the same workload (Fig. 12/15 helper).

    The strategies are independent seeded simulations, so they fan out over
    the experiment process pool (see :mod:`repro.experiments.parallel`);
    ``workers=1`` or ``REPRO_PARALLEL=0`` runs them serially with
    bit-identical results.
    """
    from .parallel import Job, run_jobs

    names = strategies or ["CTRL", "BASELINE", "AURORA"]
    jobs = [Job(strategy=name, config=config, workload=workload,
                cost_trace=cost_trace, actuator=actuator)
            for name in names]
    records = run_jobs(jobs, workers=workers)
    return dict(zip(names, records))
