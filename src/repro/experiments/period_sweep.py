"""Control-period sweep (paper Fig. 19).

Runs CTRL with nine control periods from 31.25 ms to 8000 ms (doubling)
and reports each metric relative to the best value observed across the
sweep. The paper finds a usable band around [250, 1000] ms: too-large T
violates the sampling theorem for the input's burst spectrum (delay
violations explode beyond ~4 s), while too-small T degrades because the
per-period measurements of y(k) and c(k) average too few tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..metrics.qos import QosMetrics
from .config import ExperimentConfig
from .parallel import Job, run_jobs

#: the paper's nine periods, in seconds
PAPER_PERIODS = (0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class PeriodSweepResult:
    """Fig. 19 bundle: metrics per control period."""

    metrics: Dict[float, QosMetrics]

    def relative_to_best(self) -> Dict[float, Dict[str, float]]:
        """Each metric divided by the smallest value across the sweep."""
        def best(attr) -> float:
            return min(attr(q) for q in self.metrics.values())

        b_acc = best(lambda q: q.accumulated_violation) or 1e-12
        b_del = best(lambda q: q.delayed_tuples) or 1e-12
        b_ovr = best(lambda q: q.max_overshoot) or 1e-12
        b_loss = best(lambda q: q.loss_ratio) or 1e-12
        return {
            t: {
                "accumulated_violation": q.accumulated_violation / b_acc,
                "delayed_tuples": q.delayed_tuples / b_del,
                "max_overshoot": q.max_overshoot / b_ovr,
                "loss_ratio": q.loss_ratio / b_loss,
            }
            for t, q in self.metrics.items()
        }

    def best_period(self, metric: str = "accumulated_violation") -> float:
        rel = self.relative_to_best()
        return min(rel, key=lambda t: rel[t][metric])


def period_sweep(config: Optional[ExperimentConfig] = None,
                 periods: Sequence[float] = PAPER_PERIODS,
                 strategy: str = "CTRL",
                 workload_kind: str = "web",
                 workers: Optional[int] = None,
                 backend: Optional[str] = None,
                 cross_check: bool = False) -> PeriodSweepResult:
    """Fig. 19: the same run at different control periods.

    With ``backend=None`` (or any scalar backend name) each period is an
    independent seeded simulation fanned out over the experiment process
    pool (workload generation included — every period resamples its own
    trace, exactly as the serial version did).

    ``backend="batch"`` instead runs the whole sweep as one vectorized
    grid on the :mod:`repro.experiments.batch_sweep` fast path (needs the
    ``repro[fast]`` extra); ``cross_check=True`` additionally re-runs
    every period on the scalar fluid engine and raises if violation time
    or loss ratio disagree beyond 1%.
    """
    config = config or ExperimentConfig()
    if backend == "batch":
        from .batch_sweep import GridPoint, cross_check_grid, run_batch_grid

        points = [
            GridPoint(config=config.scaled(period=t), strategy=strategy,
                      workload_kind=workload_kind, key=f"T={t}")
            for t in periods
        ]
        results = run_batch_grid(points)
        if cross_check:
            cross_check_grid(points, results)
        return PeriodSweepResult(
            metrics={t: r.qos for t, r in zip(periods, results)}
        )
    jobs = [
        Job(strategy=strategy, config=config.scaled(period=t),
            workload_kind=workload_kind, key=f"T={t}",
            engine_kind=backend)
        for t in periods
    ]
    records = run_jobs(jobs, workers=workers)
    metrics: Dict[float, QosMetrics] = {
        t: record.qos() for t, record in zip(periods, records)
    }
    return PeriodSweepResult(metrics=metrics)
