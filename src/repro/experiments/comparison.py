"""Strategy comparison experiments (paper Figs. 12 and 15).

Runs CTRL, BASELINE and AURORA over the Web and Pareto traces with the
Fig. 14 cost variations, and reports the paper's four metrics in absolute
form plus Fig. 12's ratios-to-CTRL, along with the Fig. 15 transient
``y(k)`` series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.qos import QosMetrics, relative_metrics
from ..metrics.recorder import RunRecord
from .config import ExperimentConfig
from .runner import make_cost_trace, make_workload, run_all_strategies


@dataclass(frozen=True)
class ComparisonResult:
    """Figs. 12 + 15 for one workload."""

    workload: str
    records: Dict[str, RunRecord]
    metrics: Dict[str, QosMetrics]

    def ratios_to_ctrl(self) -> Dict[str, Dict[str, float]]:
        """Fig. 12: each strategy's metrics relative to CTRL."""
        ref = self.metrics["CTRL"]
        return {
            name: relative_metrics(q, ref)
            for name, q in self.metrics.items()
        }

    def transient(self, strategy: str) -> List[float]:
        """Fig. 15: the y(k) series for one strategy."""
        return self.records[strategy].true_delays()


def compare_strategies(workload_kind: str,
                       config: Optional[ExperimentConfig] = None,
                       strategies: Optional[List[str]] = None,
                       actuator: str = "entry") -> ComparisonResult:
    """Run the Fig. 12/15 experiment for 'web' or 'pareto'."""
    config = config or ExperimentConfig()
    workload = make_workload(workload_kind, config)
    cost_trace = make_cost_trace(config)
    records = run_all_strategies(workload, config, cost_trace,
                                 strategies=strategies, actuator=actuator)
    metrics = {name: rec.qos() for name, rec in records.items()}
    return ComparisonResult(
        workload=workload_kind, records=records, metrics=metrics
    )


def compare_both_workloads(config: Optional[ExperimentConfig] = None
                           ) -> Dict[str, ComparisonResult]:
    """The full Fig. 12: both the Web and the Pareto input."""
    config = config or ExperimentConfig()
    return {
        kind: compare_strategies(kind, config)
        for kind in ("web", "pareto")
    }
