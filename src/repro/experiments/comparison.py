"""Strategy comparison experiments (paper Figs. 12 and 15).

Runs CTRL, BASELINE and AURORA over the Web and Pareto traces with the
Fig. 14 cost variations, and reports the paper's four metrics in absolute
form plus Fig. 12's ratios-to-CTRL, along with the Fig. 15 transient
``y(k)`` series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.qos import QosMetrics, relative_metrics
from ..metrics.recorder import RunRecord
from .config import ExperimentConfig
from .parallel import Job, run_jobs
from .runner import make_cost_trace, make_workload, run_all_strategies

DEFAULT_STRATEGIES = ("CTRL", "BASELINE", "AURORA")


@dataclass(frozen=True)
class ComparisonResult:
    """Figs. 12 + 15 for one workload."""

    workload: str
    records: Dict[str, RunRecord]
    metrics: Dict[str, QosMetrics]

    def ratios_to_ctrl(self) -> Dict[str, Dict[str, float]]:
        """Fig. 12: each strategy's metrics relative to CTRL."""
        ref = self.metrics["CTRL"]
        return {
            name: relative_metrics(q, ref)
            for name, q in self.metrics.items()
        }

    def transient(self, strategy: str) -> List[float]:
        """Fig. 15: the y(k) series for one strategy."""
        return self.records[strategy].true_delays()


def _bundle(workload_kind: str, records: Dict[str, RunRecord]
            ) -> ComparisonResult:
    metrics = {name: rec.qos() for name, rec in records.items()}
    return ComparisonResult(
        workload=workload_kind, records=records, metrics=metrics
    )


def compare_strategies(workload_kind: str,
                       config: Optional[ExperimentConfig] = None,
                       strategies: Optional[List[str]] = None,
                       actuator: str = "entry",
                       workers: Optional[int] = None) -> ComparisonResult:
    """Run the Fig. 12/15 experiment for 'web' or 'pareto'."""
    config = config or ExperimentConfig()
    workload = make_workload(workload_kind, config)
    cost_trace = make_cost_trace(config)
    records = run_all_strategies(workload, config, cost_trace,
                                 strategies=strategies, actuator=actuator,
                                 workers=workers)
    return _bundle(workload_kind, records)


def compare_both_workloads(config: Optional[ExperimentConfig] = None,
                           strategies: Optional[List[str]] = None,
                           workers: Optional[int] = None
                           ) -> Dict[str, ComparisonResult]:
    """The full Fig. 12: both the Web and the Pareto input.

    All workload x strategy combinations fan out over one process pool, so
    the whole figure costs roughly one simulation of wall-clock time given
    enough cores (serial fallback: ``REPRO_PARALLEL=0`` or ``workers=1``).
    """
    config = config or ExperimentConfig()
    names = list(strategies or DEFAULT_STRATEGIES)
    kinds = ("web", "pareto")
    jobs = [
        Job(strategy=name, config=config, workload_kind=kind,
            key=f"{kind}/{name}")
        for kind in kinds
        for name in names
    ]
    records = run_jobs(jobs, workers=workers)
    by_kind: Dict[str, Dict[str, RunRecord]] = {kind: {} for kind in kinds}
    for job, record in zip(jobs, records):
        by_kind[job.workload_kind][job.strategy] = record
    return {kind: _bundle(kind, by_kind[kind]) for kind in kinds}
