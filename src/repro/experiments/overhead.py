"""Controller computational overhead (paper Section 5.1).

The paper measures ~20 microseconds per control decision on a Pentium 4
2.4 GHz — trivial against control periods of hundreds of milliseconds.
This module times one controller step (the Eq. 10 arithmetic plus the
actuation bookkeeping) on the host machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core import DsmsModel, Measurement, PolePlacementController
from .config import ExperimentConfig


def _measurement(k: int, model: DsmsModel) -> Measurement:
    """A synthetic measurement with representative magnitudes."""
    q = 350 + (k % 37)
    return Measurement(
        k=k,
        time=float(k),
        queue_length=q,
        cost=model.cost * (1.0 + 0.1 * ((k % 10) - 5) / 5.0),
        measured_cost=model.cost,
        inflow_rate=250.0,
        outflow_rate=180.0,
        delay_estimate=model.delay_estimate(q),
        admitted=250,
        departed=180,
        shed=0,
        departures=[],
    )


@dataclass(frozen=True)
class OverheadResult:
    """Per-decision controller cost."""

    iterations: int
    total_seconds: float

    @property
    def microseconds_per_decision(self) -> float:
        return 1e6 * self.total_seconds / self.iterations


def controller_overhead(iterations: int = 100_000,
                        config: Optional[ExperimentConfig] = None
                        ) -> OverheadResult:
    """Time ``iterations`` CTRL decisions back to back."""
    config = config or ExperimentConfig()
    model = DsmsModel(cost=config.base_cost, headroom=config.headroom,
                      period=config.period)
    controller = PolePlacementController(model)
    measurements = [_measurement(k, model) for k in range(100)]
    start = time.perf_counter()
    for k in range(iterations):
        controller.decide(measurements[k % 100], config.target)
    elapsed = time.perf_counter() - start
    return OverheadResult(iterations=iterations, total_seconds=elapsed)
