"""Experiment harness: one module per figure of the paper's evaluation.

See DESIGN.md §4 for the experiment index (figure -> module -> benchmark).
"""

from .batch_sweep import (
    BATCH_STRATEGIES,
    BatchPointResult,
    CrossCheckReport,
    GridPoint,
    cross_check_grid,
    run_batch_grid,
    scalar_reference,
)
from .config import PAPER_CONFIG, QUICK_CONFIG, ExperimentConfig
from .comparison import ComparisonResult, compare_both_workloads, compare_strategies
from .overhead import OverheadResult, controller_overhead
from .parallel import (
    ESTIMATOR_SPECS,
    Job,
    default_workers,
    execute_job,
    parallel_enabled,
    run_jobs,
    run_jobs_keyed,
)
from .period_sweep import PAPER_PERIODS, PeriodSweepResult, period_sweep
from .robustness import (
    PAPER_BIAS_FACTORS,
    BurstinessSweepResult,
    RetunedAuroraResult,
    aurora_retuned,
    burstiness_sweep,
)
from .runner import (
    ACTUATORS,
    STRATEGIES,
    build_engine,
    make_cost_trace,
    make_scheduler,
    make_workload,
    run_all_strategies,
    run_strategy,
)
from .service_demo import (
    DEFAULT_MODES,
    FleetComparison,
    ServiceComparison,
    build_service_workload,
    fleet_comparison,
    run_service_experiment,
    service_comparison,
)
from .setpoint import PAPER_SCHEDULE, SetpointResult, schedule_fn, setpoint_tracking
from .sysid import (
    ModelFit,
    ModelVerificationResult,
    OpenLoopRun,
    StepResponseResult,
    model_verification,
    open_loop_run,
    step_response,
)

__all__ = [
    "ACTUATORS",
    "BATCH_STRATEGIES",
    "BatchPointResult",
    "BurstinessSweepResult",
    "ComparisonResult",
    "CrossCheckReport",
    "GridPoint",
    "DEFAULT_MODES",
    "ESTIMATOR_SPECS",
    "ExperimentConfig",
    "Job",
    "ModelFit",
    "ModelVerificationResult",
    "OpenLoopRun",
    "OverheadResult",
    "PAPER_BIAS_FACTORS",
    "PAPER_CONFIG",
    "PAPER_PERIODS",
    "PAPER_SCHEDULE",
    "PeriodSweepResult",
    "QUICK_CONFIG",
    "RetunedAuroraResult",
    "STRATEGIES",
    "FleetComparison",
    "ServiceComparison",
    "SetpointResult",
    "StepResponseResult",
    "aurora_retuned",
    "build_engine",
    "build_service_workload",
    "burstiness_sweep",
    "compare_both_workloads",
    "compare_strategies",
    "controller_overhead",
    "cross_check_grid",
    "default_workers",
    "execute_job",
    "make_cost_trace",
    "make_scheduler",
    "make_workload",
    "model_verification",
    "open_loop_run",
    "parallel_enabled",
    "period_sweep",
    "run_all_strategies",
    "run_batch_grid",
    "run_jobs",
    "run_jobs_keyed",
    "fleet_comparison",
    "run_service_experiment",
    "run_strategy",
    "scalar_reference",
    "schedule_fn",
    "service_comparison",
    "setpoint_tracking",
    "step_response",
]
