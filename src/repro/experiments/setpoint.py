"""Setpoint-tracking experiment (paper Fig. 18).

The target delay is changed at runtime — 1 s initially, 3 s at the 150th
second, 5 s at the 300th — and the three strategies' y(k) trajectories are
compared. CTRL converges quickly to each new target; AURORA (open loop)
does not respond to yd at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..metrics.recorder import RunRecord
from .config import ExperimentConfig
from .runner import make_cost_trace, make_workload, run_strategy

#: the paper's schedule: (period index, target seconds)
PAPER_SCHEDULE = ((0, 1.0), (150, 3.0), (300, 5.0))


def schedule_fn(schedule: Sequence[Tuple[int, float]]):
    """Turn a sorted (from_period, target) list into a k -> yd function."""
    if not schedule:
        raise ExperimentError("empty target schedule")
    steps = sorted(schedule)
    if steps[0][0] != 0:
        raise ExperimentError("schedule must define the target from period 0")

    def fn(k: int) -> float:
        current = steps[0][1]
        for start, value in steps:
            if k >= start:
                current = value
            else:
                break
        return current
    return fn


@dataclass(frozen=True)
class SetpointResult:
    """Fig. 18 bundle."""

    records: Dict[str, RunRecord]
    schedule: Tuple[Tuple[int, float], ...]

    def transient(self, strategy: str) -> List[float]:
        return self.records[strategy].true_delays()

    def settling_periods(self, strategy: str, change_at: int,
                         tolerance: float = 0.25) -> int:
        """Periods until y(k) stays within ``tolerance`` of the new target.

        Returns a large sentinel (the remaining horizon) when the strategy
        never settles — AURORA's expected behaviour.
        """
        fn = schedule_fn(self.schedule)
        target = fn(change_at)
        y = self.transient(strategy)
        horizon = len(y)
        next_change = min((s for s, __ in self.schedule if s > change_at),
                          default=horizon)
        for k in range(change_at, next_change):
            window = y[k:min(k + 5, next_change)]
            if window and all(abs(v - target) <= tolerance * target
                              for v in window):
                return k - change_at
        return next_change - change_at


def setpoint_tracking(config: Optional[ExperimentConfig] = None,
                      schedule: Sequence[Tuple[int, float]] = PAPER_SCHEDULE,
                      strategies: Sequence[str] = ("CTRL", "BASELINE", "AURORA"),
                      workload_kind: str = "web") -> SetpointResult:
    """Fig. 18: run the strategies under a time-varying delay target."""
    config = config or ExperimentConfig()
    workload = make_workload(workload_kind, config)
    cost_trace = make_cost_trace(config)
    fn = schedule_fn(schedule)
    records = {
        name: run_strategy(name, workload, config, cost_trace, target=fn)
        for name in strategies
    }
    return SetpointResult(records=records, schedule=tuple(schedule))
