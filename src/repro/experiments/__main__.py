"""Command-line figure regeneration: ``python -m repro.experiments <figure>``.

Runs one paper experiment at the full 400-second setting and prints the
same rows/series the figure reports. ``all`` runs everything (minutes).

Examples::

    python -m repro.experiments fig12
    python -m repro.experiments fig19 --duration 200
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys

from ..metrics.report import ascii_series, format_table, qos_table, ratio_table
from ..obs.logconf import configure_logging, get_logger
from .comparison import compare_both_workloads, compare_strategies
from .config import ExperimentConfig
from .overhead import controller_overhead
from .period_sweep import PAPER_PERIODS, period_sweep
from .robustness import PAPER_BIAS_FACTORS, aurora_retuned, burstiness_sweep
from .setpoint import PAPER_SCHEDULE, setpoint_tracking
from .sysid import model_verification, step_response
from .runner import make_workload
from ..workloads import sinusoid_rate, step_rate


def _fig5(config: ExperimentConfig) -> None:
    results = step_response(config=config)
    rows = []
    for rate, r in sorted(results.items()):
        tail = r.delay_increments[-8:]
        rows.append([f"{rate:.0f}", f"{r.delays[-1]:.2f}",
                     f"{sum(tail) / len(tail):.3f}",
                     "saturated" if r.saturated else "steady"])
    print(format_table(["rate t/s", "final y (s)", "dy/dk", "regime"], rows))


def _fig6(config: ExperimentConfig) -> None:
    result = model_verification(step_rate(80, 10, 10.0, 300.0), config)
    rows = [[f"{h:.2f}", f"{f.rms_error:.3f}"]
            for h, f in sorted(result.fits.items())]
    print(format_table(["candidate H", "RMS error (s)"], rows))
    print(f"best H = {result.best_headroom():.2f}")


def _fig7(config: ExperimentConfig) -> None:
    result = model_verification(sinusoid_rate(200, 50, 0.0, 400.0), config)
    rows = [[f"{h:.2f}", f"{f.rms_error:.3f}"]
            for h, f in sorted(result.fits.items())]
    print(format_table(["candidate H", "RMS error (s)"], rows))
    print(f"best H = {result.best_headroom():.2f}")


def _fig12(config: ExperimentConfig) -> None:
    for kind, res in compare_both_workloads(config).items():
        print(f"\n[{kind}] absolute:")
        print(qos_table(res.metrics))
        print(f"[{kind}] relative to CTRL:")
        print(ratio_table(res.metrics, reference="CTRL"))


def _fig13(config: ExperimentConfig) -> None:
    for kind in ("web", "pareto"):
        trace = make_workload(kind, config)
        print(ascii_series(list(trace), title=f"{kind} rate (t/s)",
                           y_label="time (s) ->"))


def _fig14(config: ExperimentConfig) -> None:
    from .runner import make_cost_trace
    trace = make_cost_trace(config)
    print(ascii_series([v * 1000 for v in trace], title="cost (ms)",
                       y_label="time (s) ->"))


def _fig15(config: ExperimentConfig) -> None:
    res = compare_strategies("web", config)
    for name in ("CTRL", "BASELINE", "AURORA"):
        print(ascii_series(res.transient(name), title=f"{name} y(k) (s)",
                           y_label="time (s) ->"))
        print()


def _fig16(config: ExperimentConfig) -> None:
    rows = []
    for kind in ("web", "pareto"):
        r = aurora_retuned(kind, config)
        rows.append([kind, f"{r.aurora_metrics.accumulated_violation:.0f}",
                     f"{r.ctrl_metrics.accumulated_violation:.0f}",
                     f"{r.relative_loss:.2f}"])
    print(format_table(["workload", "aurora(0.96) acc_viol", "ctrl acc_viol",
                        "loss ratio"], rows))


def _fig17(config: ExperimentConfig) -> None:
    for name in ("CTRL", "AURORA"):
        sweep = burstiness_sweep(name, config)
        rows = [[f"{b:.2f}", f"{q.accumulated_violation:.0f}",
                 f"{q.loss_ratio:.3f}"]
                for b, q in sorted(sweep.metrics.items())]
        print(f"[{name}]")
        print(format_table(["beta", "acc_viol (s)", "loss"], rows))


def _fig18(config: ExperimentConfig) -> None:
    res = setpoint_tracking(config.scaled(use_cost_trace=False),
                            schedule=PAPER_SCHEDULE)
    for name in ("CTRL", "BASELINE", "AURORA"):
        print(ascii_series(res.transient(name), title=f"{name} y(k) (s)",
                           y_label="time (s) ->"))
        print()


def _fig19(config: ExperimentConfig) -> None:
    sweep = period_sweep(config, periods=PAPER_PERIODS)
    rows = [[f"{t * 1000:.2f}", f"{q.accumulated_violation:.0f}",
             f"{q.loss_ratio:.3f}"]
            for t, q in sorted(sweep.metrics.items())]
    print(format_table(["T (ms)", "acc_viol (s)", "loss"], rows))


def _overhead(config: ExperimentConfig) -> None:
    r = controller_overhead()
    print(f"{r.microseconds_per_decision:.2f} us per control decision "
          f"({r.iterations} iterations)")


FIGURES = {
    "fig5": _fig5, "fig6": _fig6, "fig7": _fig7, "fig12": _fig12,
    "fig13": _fig13, "fig14": _fig14, "fig15": _fig15, "fig16": _fig16,
    "fig17": _fig17, "fig18": _fig18, "fig19": _fig19,
    "overhead": _overhead,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's evaluation figures.",
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument("--duration", type=float, default=400.0,
                        help="simulated seconds per run (default 400)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    # progress goes through the repro.* loggers (REPRO_LOG/REPRO_LOG_JSON
    # control level and shape); only the figures' tables stay on stdout
    configure_logging()
    log = get_logger("experiments.cli")
    config = ExperimentConfig(duration=args.duration, seed=args.seed)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for i, name in enumerate(names, start=1):
        log.info("running %s (%d/%d, duration=%.0fs, seed=%d)",
                 name, i, len(names), args.duration, args.seed)
        print(f"=== {name} " + "=" * (70 - len(name)))
        FIGURES[name](config)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
