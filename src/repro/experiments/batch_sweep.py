"""Vectorized closed-loop grid sweeps on the batch fluid backend.

The paper's tuning and robustness results (Figs. 16/17/19) are parameter
*grids*: the same feedback loop re-run across control periods, delay
targets, burstiness factors or retuned comparators. The scalar path
simulates every grid point tuple-by-tuple; this module instead advances a
whole stack of grid points one control period per iteration, with the
:class:`~repro.dsms.batch.FluidLanes` kernel holding every lane's queue
state, mirroring the scalar loop signal-for-signal:

* arrivals come from the *same* materialized (and disk-cached) arrival
  lists, binned into per-period offered counts;
* entry shedding follows the deterministic error-diffusion decimation of
  :class:`~repro.core.actuator.SamplingActuator` in closed form
  (``floor`` of the accumulated admit ratio), so the admitted tuples match
  the scalar reference tuple-for-tuple;
* service comes from a precomputed **completion schedule**: an exact
  replay of the :class:`~repro.dsms.fluid.VirtualQueueEngine` tuple clock.
  The schedule opens with a short event-exact prefix simulation (until the
  backlog pins the server busy) and continues analytically segment by
  segment — serving windows minus the control-cycle charge, split at
  cost-trace cells, including the engine's ``max(0, cost - progress)``
  repricing of the in-service tuple at each cost step. While a lane stays
  backlogged (the regime that produces delay violations), its per-period
  completions and completion *times* are exactly the scalar engine's, and
  the schedule is shared by every lane of the same workload;
* monitor (EWMA cost estimate, Eq. 11 delay estimate) and controllers
  (CTRL / BASELINE / AURORA / BACKPRESSURE) are the scalar recursions
  transcribed onto lane vectors.

QoS is computed at the *event* level — per-tuple delays from the exact
admitted-arrival times and scheduled completion times — so the metrics
replicate :func:`~repro.metrics.qos.compute_qos` rather than approximating
it with fluid curves. See THEORY.md §8 for the exactness argument.

:func:`cross_check_grid` re-runs grid points on the scalar
:class:`~repro.dsms.fluid.VirtualQueueEngine` through the real
:class:`~repro.core.loop.ControlLoop` stack (with the deterministic
sampling actuator and in-period cycle charging, so both paths share one
trajectory definition) and asserts violation time and loss ratio agree
within tolerance.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    ControlLoop,
    DsmsModel,
    Monitor,
    SamplingActuator,
)
from ..core.pole_placement import design_gains
from ..dsms import make_engine
from ..dsms.batch import FluidLanes, HAVE_NUMPY, require_numpy
from ..errors import ExperimentError
from ..metrics.qos import QosMetrics
from ..metrics.recorder import PeriodRecord, RunRecord
from ..workloads import cached_arrivals_from_trace
from .config import ExperimentConfig
from .runner import STRATEGIES, make_cost_trace, make_workload

if HAVE_NUMPY:  # pragma: no branch - the image ships numpy
    import numpy as np

#: strategies the vectorized controller bank implements
BATCH_STRATEGIES = ("CTRL", "BASELINE", "AURORA", "BACKPRESSURE")

#: queue length at which the schedule switches from the event-exact prefix
#: simulation to the analytic busy-server continuation; at ~64 tuples the
#: probability of the overloaded queue ever draining back below the head
#: tuple is negligible, so the tuple clock stays phase-locked
_SATURATION_BACKLOG = 64


@dataclass(frozen=True)
class GridPoint:
    """One fully-specified closed-loop run inside a batch grid."""

    config: ExperimentConfig
    strategy: str = "CTRL"
    workload_kind: str = "web"
    beta: float = 1.0                        # Pareto bias (workload 'pareto')
    target: Optional[float] = None           # None -> config.target
    headroom_override: Optional[float] = None  # AURORA retune (Fig. 16)
    max_queue: int = 368                     # BACKPRESSURE buffer bound
    keep_record: bool = False                # build a full RunRecord
    key: str = ""

    def __post_init__(self) -> None:
        if self.strategy not in BATCH_STRATEGIES:
            raise ExperimentError(
                f"batch sweeps support strategies {BATCH_STRATEGIES}, "
                f"got {self.strategy!r}"
            )

    @property
    def resolved_target(self) -> float:
        return self.config.target if self.target is None else float(self.target)

    @property
    def label(self) -> str:
        return self.key or (
            f"{self.strategy}/{self.workload_kind}/T={self.config.period}"
        )


@dataclass(frozen=True)
class BatchPointResult:
    """Outcome of one grid point: QoS plus the per-period trajectories."""

    point: GridPoint
    qos: QosMetrics
    offered: "np.ndarray"   # per-period offered counts
    admitted: "np.ndarray"  # per-period admitted counts
    served: "np.ndarray"    # per-period delivered counts
    queue: "np.ndarray"     # q(k) at each period boundary
    record: Optional[RunRecord] = None  # per-period signals (keep_record)


@dataclass(frozen=True)
class CrossCheckReport:
    """Batch-vs-scalar agreement for one grid point."""

    key: str
    batch_qos: QosMetrics
    scalar_qos: QosMetrics
    violation_err: float    # relative, against the scalar reference
    loss_err: float         # absolute difference of loss ratios
    scalar_wall: float      # seconds spent in the scalar reference run
    ok: bool


# --------------------------------------------------------------------- #
# inputs shared by the batch lanes and the scalar reference
# --------------------------------------------------------------------- #
def _input_key(point: GridPoint) -> tuple:
    """Workloads/schedules are shared between lanes with this same key."""
    c = point.config
    return (point.workload_kind, point.beta, c.period, c.duration,
            c.capacity, c.headroom, c.control_overhead, c.mean_rate,
            c.pareto_mean_rate, c.seed, c.use_cost_trace, c.poisson_arrivals)


#: process-local memo of materialized inputs; grids revisit the same few
#: workloads many times (batch lanes + their scalar cross-checks), and
#: regenerating a web trace costs more than simulating it
_INPUTS_MEMO: Dict[tuple, tuple] = {}
_INPUTS_MEMO_MAX = 16


def _point_inputs(point: GridPoint):
    """Workload, cost trace and materialized arrivals for one grid point.

    Memoized on :func:`_input_key` (the callers never mutate the returned
    objects); evicts oldest-first once :data:`_INPUTS_MEMO_MAX` distinct
    workloads are live.
    """
    key = _input_key(point)
    hit = _INPUTS_MEMO.get(key)
    if hit is not None:
        return hit
    config = point.config
    workload = make_workload(point.workload_kind, config, beta=point.beta)
    cost_trace = make_cost_trace(config)
    arrivals = cached_arrivals_from_trace(
        workload, poisson=config.poisson_arrivals, seed=config.seed,
    )
    while len(_INPUTS_MEMO) >= _INPUTS_MEMO_MAX:
        _INPUTS_MEMO.pop(next(iter(_INPUTS_MEMO)))
    _INPUTS_MEMO[key] = (workload, cost_trace, arrivals)
    return _INPUTS_MEMO[key]


def _period_counts(ts: "np.ndarray", period: float,
                   n_periods: int) -> "np.ndarray":
    """Offered tuples per control period (ControlLoop's due-binning)."""
    if not len(ts):
        return np.zeros(n_periods, dtype=np.int64)
    idx = np.floor(ts / period).astype(np.int64)
    idx = np.clip(idx, 0, n_periods - 1)
    return np.bincount(idx, minlength=n_periods)


# --------------------------------------------------------------------- #
# the completion schedule (shared tuple clock of the scalar engine)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Schedule:
    """Busy-server completion schedule for one (workload, config) pair."""

    times: "np.ndarray"     # completion instants, sorted ascending
    cum: "np.ndarray"       # (K+1,) completions by each period boundary
    sat: "np.ndarray"       # (K,) completions inside each period
    cpu: "np.ndarray"       # (K,) service CPU per period while busy
    prefix_periods: int     # periods covered by the event-exact prefix


def _build_schedule(config: ExperimentConfig, cost_trace,
                    arrivals) -> _Schedule:
    """Replay the scalar engine's tuple clock for one workload.

    Phase 1 drives a real :class:`~repro.dsms.fluid.VirtualQueueEngine`
    (admitting everything — during loop start-up every actuator's ratio is
    still 1.0) with the exact ControlLoop clocking until the backlog pins
    the server busy. Phase 2 continues analytically: per serving window
    (period minus the in-period cycle charge), split at cost-trace cells,
    completions tick every ``cost/headroom`` seconds with the engine's
    ``max(0, cost - progress)`` head-tuple repricing at each cost change.
    """
    T = config.period
    K = config.n_periods
    h = config.headroom
    cycle = config.control_overhead
    base = config.base_cost
    mult = (cost_trace.as_multiplier(base) if cost_trace is not None
            else None)
    engine = make_engine("fluid", cost=base, headroom=h,
                         cost_multiplier=mult)
    cpu = np.zeros(K)
    it = iter(arrivals)
    pending = next(it, None)
    last_cpu = 0.0
    P = 0
    while P < K:
        boundary = (P + 1) * T
        while pending is not None and pending[0] < boundary:
            t = pending[0]
            if t > engine.now:
                engine.run_until(t)
            engine.submit(max(t, P * T, engine.now))
            pending = next(it, None)
        pre = boundary - cycle / h
        engine.run_until(max(pre, engine.now))
        if cycle:
            engine.consume_cpu(cycle)
        engine.run_until(max(boundary, engine.now))
        cpu[P] = engine.cpu_used - last_cpu - cycle
        last_cpu = engine.cpu_used
        P += 1
        if engine.outstanding >= _SATURATION_BACKLOG:
            break
    parts: List["np.ndarray"] = []
    prefix = engine.drain_departures()
    if prefix:
        parts.append(np.fromiter((d.departed for d in prefix), dtype=float,
                                 count=len(prefix)))
    if P < K:
        # continue from the engine's exact head-tuple progress
        cont = _analytic_continuation(config, cost_trace, P,
                                      engine._progress, cpu)
        if len(cont):
            parts.append(cont)
    times = np.concatenate(parts) if parts else np.empty(0)
    boundaries = np.arange(1, K + 1) * T
    cum = np.concatenate(
        [[0], np.searchsorted(times, boundaries, side="right")]
    ).astype(np.int64)
    return _Schedule(times=times, cum=cum, sat=np.diff(cum), cpu=cpu,
                     prefix_periods=P)


def _reference_continuation(config: ExperimentConfig, cost_trace, P: int,
                            p_cpu: float, cpu: "np.ndarray") -> "np.ndarray":
    """Scalar reference for the analytic busy-server continuation.

    The original per-period/per-segment Python loop, kept verbatim as the
    pinning oracle for :func:`_analytic_continuation` — the vectorized
    version must reproduce these completion instants (to float dust) and
    their exact count. Mutates ``cpu[P:]`` like the vectorized path.
    """
    T = config.period
    K = config.n_periods
    h = config.headroom
    cycle = config.control_overhead
    base = config.base_cost
    mult = (cost_trace.as_multiplier(base) if cost_trace is not None
            else None)
    cell = cost_trace.period if cost_trace is not None else None
    seg_t: List[float] = []
    seg_n: List[int] = []
    seg_pitch: List[float] = []
    for k in range(P, K):
        start = k * T
        pre = (k + 1) * T - cycle / h
        cpu[k] = (pre - start) * h
        bounds = [start]
        if cell is not None:
            j = math.floor(start / cell + 1e-9) + 1
            while j * cell < pre - 1e-12:
                bounds.append(j * cell)
                j += 1
        bounds.append(pre)
        for s, e in zip(bounds[:-1], bounds[1:]):
            c = base if mult is None else base * mult(s)
            budget = (e - s) * h
            first = max(0.0, c - p_cpu)
            if budget < first:
                p_cpu += budget
                continue
            n = 1 + int((budget - first) / c + 1e-12)
            p_cpu = max(budget - first - (n - 1) * c, 0.0)
            seg_t.append(s + first / h)
            seg_n.append(n)
            seg_pitch.append(c / h)
    if not seg_n:
        return np.empty(0)
    ns = np.asarray(seg_n)
    rep_t = np.repeat(np.asarray(seg_t), ns)
    rep_p = np.repeat(np.asarray(seg_pitch), ns)
    intra = np.arange(int(ns.sum())) - np.repeat(np.cumsum(ns) - ns, ns)
    return rep_t + intra * rep_p


def _analytic_continuation(config: ExperimentConfig, cost_trace, P: int,
                           p_cpu: float, cpu: "np.ndarray") -> "np.ndarray":
    """Vectorized busy-server continuation (periods ``P..K``).

    Replaces :func:`_reference_continuation`'s per-period loop with array
    construction in three steps:

    1. **segments** — every period contributes one serving window
       ``[k*T, (k+1)*T - cycle/h)`` split at cost-trace cell boundaries;
       segment starts/ends/costs come from one ragged scatter (the
       boundary predicate ``j*cell < pre - 1e-12`` is re-applied exactly,
       so segmentation matches the scalar loop segment-for-segment);
    2. **runs** — consecutive segments with the same per-tuple cost merge
       into runs; within a run completions tick uniformly in *CPU budget*
       coordinates, so each run needs only the head-tuple progress at
       entry. That recursion is inherently sequential but O(#cost
       changes), a few hundred plain-float ops instead of one Python
       iteration per period per segment;
    3. **expansion** — completions materialize via one global
       ``searchsorted`` of their budget coordinates into the segment
       budget prefix-sum, mapping budget back to wall-clock inside the
       owning segment.

    While a lane is saturated this reproduces the scalar engine's tuple
    clock; the pinning test asserts count equality and time agreement
    against :func:`_reference_continuation` on real workloads.
    """
    T = config.period
    K = config.n_periods
    h = config.headroom
    cycle = config.control_overhead
    base = config.base_cost
    ks = np.arange(P, K)
    starts = ks * T
    pres = (ks + 1) * T - cycle / h
    cpu[P:K] = (pres - starts) * h

    # --- 1. segment boundaries at cost-trace cells -------------------- #
    if cost_trace is not None:
        cell = cost_trace.period
        j0 = np.floor(starts / cell + 1e-9).astype(np.int64) + 1
        nb = np.maximum(
            np.ceil((pres - 1e-12) / cell).astype(np.int64) - j0, 0)
        # the scalar predicate is j*cell < pre - 1e-12; undo any off-by-one
        # the ceil rounding introduced at exact-boundary floats
        over = (nb > 0) & ~((j0 + nb - 1) * cell < pres - 1e-12)
        nb = nb - over
        nb = nb + ((j0 + nb) * cell < pres - 1e-12)
    else:
        nb = np.zeros(len(ks), dtype=np.int64)
    nseg = nb + 1
    S = int(nseg.sum())
    first = np.cumsum(nseg) - nseg
    rep = np.repeat(np.arange(len(ks)), nseg)
    intra = np.arange(S) - first[rep]
    seg_s = np.where(intra == 0, starts[rep], 0.0)
    seg_e = np.where(intra == nb[rep], pres[rep], 0.0)
    if cost_trace is not None:
        seg_s = np.where(intra > 0, (j0[rep] + intra - 1) * cell, seg_s)
        seg_e = np.where(intra < nb[rep], (j0[rep] + intra) * cell, seg_e)
        vals = np.asarray(cost_trace.values)
        idx = np.clip((seg_s // cell).astype(np.int64), 0, len(vals) - 1)
        # the same float ops as ``base * mult(s)`` — bit-equal costs
        c = base * (vals[idx] / base)
    else:
        c = np.full(S, base)
    B = (seg_e - seg_s) * h

    # --- 2. equal-cost runs + the O(R) head-tuple recursion ----------- #
    change = np.empty(S, dtype=bool)
    change[0] = True
    np.not_equal(c[1:], c[:-1], out=change[1:])
    run_first = np.flatnonzero(change)
    R = len(run_first)
    run_last = np.concatenate([run_first[1:], [S]]) - 1
    run_c = c[run_first]
    run_L = np.add.reduceat(B, run_first)
    cumB = np.cumsum(B)
    cumBprev = cumB - B
    run_base = cumBprev[run_first]
    q0s = np.empty(R)
    Ms = np.empty(R, dtype=np.int64)
    p = float(p_cpu)
    lc = run_c.tolist()
    lL = run_L.tolist()
    for r in range(R):
        cr = lc[r]
        q0 = p if p < cr else cr
        x = q0 + lL[r]
        M = int(x / cr + 1e-12)
        p = x - M * cr
        if p < 0.0:
            p = 0.0
        q0s[r] = q0
        Ms[r] = M

    # --- 3. expand completions, map budget -> wall-clock -------------- #
    Mtot = int(Ms.sum())
    if Mtot == 0:
        return np.empty(0)
    rrep = np.repeat(np.arange(R), Ms)
    m = np.arange(Mtot) - np.repeat(np.cumsum(Ms) - Ms, Ms)
    u = run_base[rrep] + (m + 1) * run_c[rrep] - q0s[rrep]
    j = np.searchsorted(cumB, u, side="left")
    j = np.clip(j, run_first[rrep], run_last[rrep])
    return seg_s[j] + (u - cumBprev[j]) / h


def _ragged_indices(dst_starts, src_starts, lengths):
    """Index arrays copying ``lengths[i]`` items from each src/dst start."""
    lengths = lengths.astype(np.int64)
    total = int(lengths.sum())
    offs = np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
    return (np.repeat(dst_starts, lengths) + offs,
            np.repeat(src_starts, lengths) + offs)


# --------------------------------------------------------------------- #
# the vectorized closed loop
# --------------------------------------------------------------------- #
def run_batch_grid(points: Sequence[GridPoint]) -> List[BatchPointResult]:
    """Run a whole grid of closed-loop simulations on the batch backend.

    All points advance together, one control period per iteration, inside
    one stacked :class:`~repro.dsms.batch.FluidLanes` call per period;
    results come back in input order. Points may mix control periods and
    strategies freely — shorter runs simply pad out.
    """
    require_numpy()
    points = list(points)
    if not points:
        raise ExperimentError("batch grid needs at least one point")
    g = len(points)

    inputs: Dict[tuple, tuple] = {}
    schedules: Dict[tuple, _Schedule] = {}
    stamps: Dict[tuple, "np.ndarray"] = {}
    keys = []
    for p in points:
        key = _input_key(p)
        keys.append(key)
        if key not in inputs:
            inputs[key] = _point_inputs(p)
            arrivals = inputs[key][2]
            stamps[key] = np.fromiter((a[0] for a in arrivals), dtype=float,
                                      count=len(arrivals))
            schedules[key] = _build_schedule(p.config, inputs[key][1],
                                             arrivals)

    Ks = np.array([p.config.n_periods for p in points])
    Kmax = int(Ks.max())
    T = np.array([p.config.period for p in points])
    headroom = np.array([p.config.headroom for p in points])
    base_cost = np.array([p.config.base_cost for p in points])
    cycle = np.array([p.config.control_overhead for p in points])
    target = np.array([p.resolved_target for p in points])
    ewma_a = np.maximum(np.array([
        1.0 - math.exp(-p.config.period / p.config.cost_tau) for p in points
    ]), 1e-6)
    gains = design_gains()

    counts = np.zeros((g, Kmax), dtype=np.int64)
    sat = np.zeros((g, Kmax))
    cpu_sched = np.zeros((g, Kmax))
    for i, p in enumerate(points):
        K = int(Ks[i])
        counts[i, :K] = _period_counts(stamps[keys[i]], float(T[i]), K)
        sat[i, :K] = schedules[keys[i]].sat
        cpu_sched[i, :K] = schedules[keys[i]].cpu

    m_ctrl = np.array([p.strategy == "CTRL" for p in points], dtype=float)
    m_base = np.array([p.strategy == "BASELINE" for p in points], dtype=float)
    m_aur = np.array([p.strategy == "AURORA" for p in points], dtype=float)
    m_bp = np.array([p.strategy == "BACKPRESSURE" for p in points],
                    dtype=float)
    h_eff = np.array([
        p.headroom_override if p.headroom_override is not None
        else p.config.headroom for p in points
    ])
    max_queue = np.array([float(p.max_queue) for p in points])

    # per-period average service cost while busy (tracks the cost trace);
    # used to charge CPU for tuples served in under-loaded periods
    avg_cost = np.where(sat > 0, cpu_sched / np.maximum(sat, 1.0),
                        base_cost[:, None])

    lanes = FluidLanes(g, cost=1.0, headroom=1.0)
    acc = np.zeros(g)              # error-diffusion accumulator
    allowance = np.full(g, np.inf)
    expected = np.zeros(g)         # inflow estimate (last period's offered)
    cost_est = base_cost.copy()
    e_prev = np.zeros(g)
    u_prev = np.zeros(g)

    adm_h = np.zeros((g, Kmax))
    srv_h = np.zeros((g, Kmax))
    q_h = np.zeros((g, Kmax))
    ratio_h = np.zeros((g, Kmax))
    acc_h = np.zeros((g, Kmax))
    any_records = any(p.keep_record for p in points)
    if any_records:
        extra = {name: np.zeros((g, Kmax)) for name in
                 ("delay", "cost", "v", "u", "err")}

    gain_b0 = gains.b0
    gain_b1 = gains.b1
    gain_a = gains.a
    inv_T = 1.0 / T
    has_ctrl = bool(m_ctrl.any())
    has_base = bool(m_base.any())
    has_aur = bool(m_aur.any())
    has_bp = bool(m_bp.any())
    all_ctrl = has_ctrl and not (has_base or has_aur or has_bp)
    countsf = counts.astype(float)
    old_err = np.seterr(divide="ignore", invalid="ignore")
    try:
        for k in range(Kmax):
            n = countsf[:, k]
            ratio = np.where(expected > 0.0,
                             np.minimum(np.maximum(
                                 allowance / expected, 0.0), 1.0), 1.0)
            acc_h[:, k] = acc
            ratio_h[:, k] = ratio
            total = acc + n * ratio
            admitted = np.minimum(np.floor(total), n)
            acc = np.maximum(total - admitted, 0.0)

            served = lanes.run_period(admitted, sat[:, k])
            q = lanes.q
            full = served == sat[:, k]
            cpu = np.where(full, cpu_sched[:, k],
                           served * avg_cost[:, k]) + cycle
            measured = cpu / served            # inf/nan when idle: masked
            good = np.isfinite(measured) & (measured > 0.0)
            cost_est = cost_est + ewma_a * np.where(
                good, measured - cost_est, 0.0)
            outflow = served * inv_T
            delay_est = (q + 1.0) * cost_est / headroom

            e = target - delay_est
            if has_ctrl:
                gain = headroom / (cost_est * T)
                u_ctrl = (gain * (gain_b0 * e + gain_b1 * e_prev)
                          - gain_a * u_prev)
                if all_ctrl:
                    v = u_ctrl + outflow
                    u_prev = u_ctrl
                else:
                    v = m_ctrl * (u_ctrl + outflow)
                    u_prev = m_ctrl * u_ctrl + (1.0 - m_ctrl) * u_prev
            else:
                u_ctrl = 0.0
                v = 0.0
            if has_base:
                v = v + m_base * ((target * headroom / cost_est - q) * inv_T
                                  + headroom / cost_est)
            if has_aur:
                v = v + m_aur * (h_eff / cost_est)
            if has_bp:
                v = v + m_bp * ((max_queue - q) * inv_T + outflow)
            e_prev = e
            allowance = np.maximum(v, 0.0) * T
            expected = n

            adm_h[:, k] = admitted
            srv_h[:, k] = served
            q_h[:, k] = q
            if any_records:
                extra["delay"][:, k] = delay_est
                extra["cost"][:, k] = cost_est
                extra["v"][:, k] = v
                extra["u"][:, k] = (m_ctrl * u_ctrl
                                    + m_base * (v - headroom / cost_est)
                                    + m_aur * (v - outflow)
                                    + m_bp * (v - outflow))
                extra["err"][:, k] = (m_ctrl + m_base) * e
    finally:
        np.seterr(**old_err)

    results = []
    for i, point in enumerate(points):
        K = int(Ks[i])
        sch = schedules[keys[i]]
        ts = stamps[keys[i]]
        qos = _lane_qos(point, ts, counts[i, :K], adm_h[i, :K], srv_h[i, :K],
                        sat[i, :K], cpu_sched[i, :K], ratio_h[i, :K],
                        acc_h[i, :K], sch)
        record = None
        if point.keep_record:
            record = _lane_record(point, i, K, counts, adm_h, srv_h, q_h,
                                  ratio_h, extra)
        results.append(BatchPointResult(
            point=point, qos=qos, offered=counts[i, :K].copy(),
            admitted=adm_h[i, :K].copy(), served=srv_h[i, :K].copy(),
            queue=q_h[i, :K].copy(), record=record,
        ))
    return results


def _lane_qos(point: GridPoint, ts, counts, admitted, served, sat, cpu_sched,
              ratio, acc0, sch: _Schedule) -> QosMetrics:
    """Event-level QoS for one lane, replicating ``compute_qos``.

    Admitted arrival times follow from the closed-form error diffusion;
    departure times come from the shared completion schedule wherever the
    lane ran the server saturated (exact), and track arrivals plus one
    service time in the rare under-loaded periods (whose delays sit far
    below the target either way).
    """
    config = point.config
    T = config.period
    K = len(counts)
    N = len(ts)
    yd = point.resolved_target
    offered_total = int(counts.sum())
    admitted_total = int(admitted.sum())
    shed = offered_total - admitted_total

    # exact admitted arrival instants from the error-diffusion state
    pk = np.clip(np.floor(ts / T).astype(np.int64), 0, K - 1)
    offs = np.concatenate([[0], np.cumsum(counts)])
    j = np.arange(N) - offs[pk]
    rho = ratio[pk]
    a0 = acc0[pk]
    adm_mask = np.floor(a0 + (j + 1) * rho) > np.floor(a0 + j * rho)
    arr = ts[adm_mask]
    if len(arr) < admitted_total:  # float-edge stragglers: pad at period end
        missing = admitted_total - len(arr)
        arr = np.sort(np.concatenate([arr, np.full(missing, K * T)]))

    S = int(round(served.sum()))
    if S <= 0:
        return QosMetrics(0.0, 0, 0.0, 0, shed, offered_total, 0.0)
    C = np.concatenate([[0], np.cumsum(served)]).astype(np.int64)
    srv_k = (C[1:] - C[:-1])
    sat_k = sat.astype(np.int64)
    dep = np.empty(S)
    saturated = (srv_k == sat_k) & (srv_k > 0)
    ks = np.nonzero(saturated)[0]
    if len(ks):
        dst, src = _ragged_indices(C[ks], sch.cum[ks], srv_k[ks])
        dep[dst] = sch.times[src]
    # under-loaded periods (the lane shed below the busy schedule): FIFO
    # service recursion dep_j = max(arr_j, dep_{j-1}) + pitch_j, run over
    # each maximal run of consecutive under-loaded periods and seeded with
    # the last completion before the run. With cp = cumsum(pitch) this is
    # dep_j = cp_j + max(seed, cummax(arr_j - cp_{j-1})), pure array math.
    under = ~saturated & (srv_k > 0)
    if under.any():
        pitch_k = np.where(sat_k > 0,
                           cpu_sched / np.maximum(sat_k, 1),
                           config.base_cost) / config.headroom
        edges = np.flatnonzero(np.diff(np.concatenate(
            [[False], under, [False]]).astype(np.int8)))
        for a, b in zip(edges[::2], edges[1::2]):     # periods [a, b) underloaded
            lo, hi = C[a], C[b]
            arr_run = arr[lo:hi]
            cp = np.cumsum(np.repeat(pitch_k[a:b], srv_k[a:b]))
            seed = dep[lo - 1] if lo > 0 else -np.inf
            slack = np.maximum.accumulate(
                arr_run - np.concatenate([[0.0], cp[:-1]]))
            dep[lo:hi] = cp + np.maximum(slack, seed)
    dep = np.maximum.accumulate(np.maximum(dep, arr[:S]))

    duration = K * T
    win = dep <= duration + 1e-9
    delay = dep[win] - arr[:S][win]
    delivered = int(win.sum())
    if delivered == 0:
        return QosMetrics(0.0, 0, 0.0, 0, shed, offered_total, 0.0)
    excess = delay - yd
    over = excess > 0.0
    return QosMetrics(
        accumulated_violation=float(excess[over].sum()),
        delayed_tuples=int(over.sum()),
        max_overshoot=float(max(excess.max(), 0.0)),
        delivered=delivered,
        shed=shed,
        offered=offered_total,
        mean_delay=float(delay.mean()),
    )


def _lane_record(point: GridPoint, i: int, K: int, counts, adm_h, srv_h,
                 q_h, ratio_h, extra) -> RunRecord:
    """Materialize one lane's per-period signals as a RunRecord.

    The record carries the full period series (so plots and the robustness
    dataclasses work unchanged) but no individual departures — use the
    :class:`BatchPointResult`'s precomputed ``qos`` instead of
    ``record.qos()``.
    """
    T = point.config.period
    record = RunRecord(period=T)
    yd = point.resolved_target
    for k in range(K):
        record.periods.append(PeriodRecord(
            k=k, time=(k + 1) * T, target=yd,
            delay_estimate=float(extra["delay"][i, k]),
            queue_length=int(q_h[i, k]),
            cost=float(extra["cost"][i, k]),
            inflow_rate=float(adm_h[i, k] / T),
            outflow_rate=float(srv_h[i, k] / T),
            offered=int(counts[i, k]), admitted=int(adm_h[i, k]),
            shed_retro=0, v=float(extra["v"][i, k]),
            u=float(extra["u"][i, k]), error=float(extra["err"][i, k]),
            alpha=float(1.0 - ratio_h[i, k]),
        ))
    record.duration = K * T
    record.offered_total = int(counts[i, :K].sum())
    record.entry_dropped_total = int(counts[i, :K].sum() - adm_h[i, :K].sum())
    return record


# --------------------------------------------------------------------- #
# scalar cross-check
# --------------------------------------------------------------------- #
def scalar_reference(point: GridPoint) -> Tuple[QosMetrics, float]:
    """Run one grid point on the scalar fluid engine (deterministically).

    Uses the real :class:`~repro.core.loop.ControlLoop` stack over
    :class:`~repro.dsms.fluid.VirtualQueueEngine`, with the deterministic
    :class:`~repro.core.actuator.SamplingActuator` and in-period cycle
    charging — the exact trajectory definition the batch lanes vectorize.
    Returns the QoS metrics and the wall-clock seconds the run took.
    """
    config = point.config
    _, cost_trace, arrivals = _point_inputs(point)
    multiplier = (cost_trace.as_multiplier(config.base_cost)
                  if cost_trace is not None else None)
    engine = make_engine("fluid", cost=config.base_cost,
                         headroom=config.headroom,
                         cost_multiplier=multiplier)
    model = DsmsModel(cost=config.base_cost, headroom=config.headroom,
                      period=config.period)
    monitor = Monitor(engine, model,
                      cost_estimator=config.make_cost_estimator())
    kwargs = {}
    if point.strategy == "AURORA" and point.headroom_override is not None:
        kwargs["headroom_override"] = point.headroom_override
    if point.strategy == "BACKPRESSURE":
        kwargs["max_queue"] = point.max_queue
    controller = STRATEGIES[point.strategy](model, **kwargs)
    loop = ControlLoop(
        engine, controller, monitor, SamplingActuator(),
        target=point.resolved_target,
        period=config.period,
        cycle_cost=config.control_overhead,
        charge_cycle_within_period=True,
    )
    start = _time.perf_counter()
    record = loop.run(arrivals, config.duration)
    wall = _time.perf_counter() - start
    return record.qos(), wall


def cross_check_grid(points: Sequence[GridPoint],
                     results: Sequence[BatchPointResult],
                     tolerance: float = 0.01,
                     violation_floor: float = 1.0) -> List[CrossCheckReport]:
    """Verify batch results against scalar reference runs, point by point.

    Violation time must agree within ``tolerance`` relative to the scalar
    value (with ``violation_floor`` seconds as the comparison floor so
    near-zero violations do not blow up the ratio); loss ratios must agree
    within ``tolerance`` absolutely. Raises
    :class:`~repro.errors.ExperimentError` listing every failing point.
    """
    reports: List[CrossCheckReport] = []
    failures: List[str] = []
    for point, res in zip(points, results):
        scalar_qos, wall = scalar_reference(point)
        denom = max(abs(scalar_qos.accumulated_violation), violation_floor)
        v_err = abs(res.qos.accumulated_violation
                    - scalar_qos.accumulated_violation) / denom
        l_err = abs(res.qos.loss_ratio - scalar_qos.loss_ratio)
        ok = v_err <= tolerance and l_err <= tolerance
        reports.append(CrossCheckReport(
            key=point.label, batch_qos=res.qos, scalar_qos=scalar_qos,
            violation_err=v_err, loss_err=l_err, scalar_wall=wall, ok=ok,
        ))
        if not ok:
            failures.append(
                f"{point.label}: violation err {v_err:.4f} "
                f"(batch {res.qos.accumulated_violation:.3f}s vs scalar "
                f"{scalar_qos.accumulated_violation:.3f}s), loss err "
                f"{l_err:.4f} (batch {res.qos.loss_ratio:.4f} vs scalar "
                f"{scalar_qos.loss_ratio:.4f})"
            )
    if failures:
        raise ExperimentError(
            "batch/scalar cross-check failed on "
            f"{len(failures)}/{len(reports)} grid points:\n  "
            + "\n  ".join(failures)
        )
    return reports
