"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ControlError(ReproError):
    """Errors from the control-theory toolkit (bad designs, degenerate TFs)."""


class UnstableDesignError(ControlError):
    """A requested controller design would produce an unstable closed loop."""


class NetworkError(ReproError):
    """Structural errors in a query network (cycles, dangling ports, ...)."""


class SchedulingError(ReproError):
    """Errors raised by the engine scheduler."""


class WorkloadError(ReproError):
    """Errors in workload/trace construction (bad parameters, empty traces)."""


class SheddingError(ReproError):
    """Errors in load-shedder configuration or plan construction."""


class BackendError(ReproError):
    """Errors in engine-backend selection (unknown name, missing extras)."""


class ExperimentError(ReproError):
    """Errors in experiment configuration or execution."""


class ServiceError(ReproError):
    """Errors in the sharded service layer (routing, coordination)."""


class ObservabilityError(ReproError):
    """Errors in the observability layer (bus, metrics registry, tracing)."""


class ServeError(ReproError):
    """Errors in the real-time serving front-end (ingestion, wire protocol)."""
