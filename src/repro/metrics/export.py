"""Exporting run records for external analysis (CSV / JSON).

``RunRecord`` objects hold everything a run produced; these helpers
flatten them into formats a notebook or gnuplot can consume, so the
figures can be replotted outside this library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..errors import ExperimentError
from .recorder import RunRecord

PathLike = Union[str, Path]

#: column order of the per-period CSV
PERIOD_FIELDS = (
    "k", "time", "target", "delay_estimate", "queue_length", "cost",
    "inflow_rate", "outflow_rate", "offered", "admitted", "shed_retro",
    "v", "u", "error", "alpha",
)


def periods_to_csv(record: RunRecord, path: PathLike) -> Path:
    """One row per control period (the online view of the run)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(PERIOD_FIELDS)
        for p in record.periods:
            writer.writerow([getattr(p, f) for f in PERIOD_FIELDS])
    return path


def departures_to_csv(record: RunRecord, path: PathLike) -> Path:
    """One row per resolved tuple: arrival, departure, delay, shed flag."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["arrived", "departed", "delay", "shed"])
        for d in record.departures:
            writer.writerow([d.arrived, d.departed, d.delay, int(d.shed)])
    return path


def record_to_json(record: RunRecord, path: PathLike,
                   include_departures: bool = False) -> Path:
    """Summary + per-period series as one JSON document."""
    qos = record.qos()
    doc = {
        "period": record.period,
        "duration": record.duration,
        "offered_total": record.offered_total,
        "entry_dropped_total": record.entry_dropped_total,
        "wall_seconds": record.wall_seconds,
        "drain_truncated": record.drain_truncated,
        "drain_leftover": record.drain_leftover,
        "qos": {
            "accumulated_violation": qos.accumulated_violation,
            "delayed_tuples": qos.delayed_tuples,
            "max_overshoot": qos.max_overshoot,
            "delivered": qos.delivered,
            "shed": qos.shed,
            "loss_ratio": qos.loss_ratio,
            "mean_delay": qos.mean_delay,
        },
        "periods": [
            {f: getattr(p, f) for f in PERIOD_FIELDS}
            for p in record.periods
        ],
        "true_delays": record.true_delays(),
    }
    if include_departures:
        doc["departures"] = [
            {"arrived": d.arrived, "departed": d.departed, "shed": d.shed}
            for d in record.departures
        ]
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2))
    return path


def load_json(path: PathLike) -> dict:
    """Read back a document written by :func:`record_to_json`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no such export: {path}")
    return json.loads(path.read_text())


def periods_to_jsonl(record: RunRecord, path: PathLike) -> Path:
    """One JSON object per period, one per line (streaming-friendly CSV twin)."""
    path = Path(path)
    with path.open("w") as fh:
        for p in record.periods:
            fh.write(json.dumps({f: getattr(p, f) for f in PERIOD_FIELDS}))
            fh.write("\n")
    return path


def load_jsonl(path: PathLike) -> list:
    """Read back rows written by :func:`periods_to_jsonl` (or a live sink).

    Ignores a trailing partial line, so it is safe to call on a file a
    :class:`~repro.obs.sinks.PeriodJsonlSink` is still appending to.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no such export: {path}")
    rows = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail of an in-flight write
    return rows


class PeriodJsonlWriter:
    """Append-as-you-go JSONL writer usable *mid-run*.

    Unlike :func:`periods_to_jsonl`, which needs the finished record, this
    accepts one :class:`~repro.metrics.recorder.PeriodRecord` at a time and
    flushes each row, so an experiment driver can stream the online view of
    a run to disk as it unfolds (hand :meth:`append` to a bus subscription,
    or call it from a custom period loop).
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.rows = 0
        self._fh = self.path.open("a")

    def append(self, period) -> None:
        self._fh.write(json.dumps(
            {f: getattr(period, f) for f in PERIOD_FIELDS}))
        self._fh.write("\n")
        self._fh.flush()
        self.rows += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "PeriodJsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def trace_to_json(flame: dict, path: PathLike) -> Path:
    """Write a flame summary (:meth:`~repro.obs.tracing.PeriodTracer.flame`
    or :func:`~repro.obs.tracing.merge_flames` output) next to the CSVs."""
    path = Path(path)
    path.write_text(json.dumps(flame, indent=2))
    return path
