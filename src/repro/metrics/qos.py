"""QoS metrics (paper Section 3).

The paper evaluates adaptation strategies on four quantities:

* **accumulated delay violations** — ``sum(y - yd)`` over all delivered
  tuples whose processing delay exceeded the target;
* **total delayed tuples** — the count of such tuples;
* **maximal overshoot** — the largest single ``y - yd`` (transient-state
  performance);
* **data loss ratio** — fraction of offered tuples discarded by shedding
  (the price paid for the adaptation).

Delay metrics are computed over *delivered* tuples: a tuple discarded by a
query operator (a filter) completed normal processing and counts; a tuple
discarded by the load shedder is lost data and counts toward loss, not
delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Union

from ..dsms.engine import Departure
from ..errors import ExperimentError

TargetLike = Union[float, Callable[[float], float]]


def _target_fn(target: TargetLike) -> Callable[[float], float]:
    if callable(target):
        return target
    value = float(target)
    if value < 0:
        raise ExperimentError(f"negative delay target {value}")
    return lambda t: value


@dataclass(frozen=True)
class QosMetrics:
    """Aggregated quality metrics for one run."""

    accumulated_violation: float   # seconds of delay beyond target, summed
    delayed_tuples: int            # tuples with delay > target
    max_overshoot: float           # worst single violation (seconds)
    delivered: int                 # tuples that completed processing
    shed: int                      # tuples lost to shedding
    offered: int                   # tuples offered to the system
    mean_delay: float              # mean delay of delivered tuples

    @property
    def loss_ratio(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def violation_ratio(self) -> float:
        """Fraction of delivered tuples that missed the target."""
        if self.delivered == 0:
            return 0.0
        return self.delayed_tuples / self.delivered


def compute_qos(departures: Iterable[Departure],
                target: TargetLike,
                offered: int) -> QosMetrics:
    """Aggregate the paper's four metrics from resolved departures.

    ``target`` may be a constant or a function of the tuple's *arrival*
    time (the Fig. 18 setpoint schedule); a tuple is judged against the
    target in force when it arrived.
    """
    if offered < 0:
        raise ExperimentError("offered count cannot be negative")
    fn = _target_fn(target)
    acc = 0.0
    delayed = 0
    worst = 0.0
    delivered = 0
    shed = 0
    total_delay = 0.0
    for d in departures:
        if d.shed:
            shed += 1
            continue
        delivered += 1
        total_delay += d.delay
        excess = d.delay - fn(d.arrived)
        if excess > 0:
            acc += excess
            delayed += 1
            if excess > worst:
                worst = excess
    return QosMetrics(
        accumulated_violation=acc,
        delayed_tuples=delayed,
        max_overshoot=worst,
        delivered=delivered,
        shed=shed,
        offered=offered,
        mean_delay=total_delay / delivered if delivered else 0.0,
    )


def combine_qos(metrics: Iterable[QosMetrics]) -> QosMetrics:
    """Aggregate per-shard QoS into one fleet-level summary.

    Extensive quantities (violation seconds, delayed/delivered/shed/offered
    counts) are summed, ``max_overshoot`` is the worst shard's overshoot,
    and ``mean_delay`` is weighted by each shard's delivered count.
    """
    metrics = list(metrics)
    if not metrics:
        raise ExperimentError("cannot combine zero QoS summaries")
    delivered = sum(m.delivered for m in metrics)
    total_delay = sum(m.mean_delay * m.delivered for m in metrics)
    return QosMetrics(
        accumulated_violation=sum(m.accumulated_violation for m in metrics),
        delayed_tuples=sum(m.delayed_tuples for m in metrics),
        max_overshoot=max(m.max_overshoot for m in metrics),
        delivered=delivered,
        shed=sum(m.shed for m in metrics),
        offered=sum(m.offered for m in metrics),
        mean_delay=total_delay / delivered if delivered else 0.0,
    )


def relative_metrics(candidate: QosMetrics, reference: QosMetrics,
                     epsilon: float = 1e-9) -> dict:
    """Per-metric ratios candidate/reference (the paper's Fig. 12 format)."""
    def ratio(a: float, b: float) -> float:
        return a / b if abs(b) > epsilon else float("inf") if a > epsilon else 1.0

    return {
        "accumulated_violation": ratio(candidate.accumulated_violation,
                                       reference.accumulated_violation),
        "delayed_tuples": ratio(candidate.delayed_tuples,
                                reference.delayed_tuples),
        "max_overshoot": ratio(candidate.max_overshoot,
                               reference.max_overshoot),
        "loss_ratio": ratio(candidate.loss_ratio, reference.loss_ratio),
    }


def delay_percentiles(departures: Iterable[Departure],
                      quantiles: Iterable[float] = (0.5, 0.95, 0.99)
                      ) -> dict:
    """Delay quantiles over delivered tuples (tail-latency view).

    The paper reports aggregate violations; percentile delays are the
    metric modern systems quote. Returns {quantile: delay-seconds}; empty
    input yields zeros.
    """
    delays = sorted(d.delay for d in departures if not d.shed)
    out = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ExperimentError(f"quantile {q} outside [0, 1]")
        if not delays:
            out[q] = 0.0
        else:
            idx = min(len(delays) - 1, int(q * len(delays)))
            out[q] = delays[idx]
    return out


def delays_by_arrival_period(departures: Iterable[Departure],
                             period: float) -> List[float]:
    """Average delivered delay grouped by the tuple's arrival period.

    This is the quantity the paper plots as ``y(k)`` in Figs. 5-7 and 15:
    the mean processing delay of the tuples that *arrived* during period k.
    Periods with no delivered arrivals carry 0.
    """
    if period <= 0:
        raise ExperimentError("period must be positive")
    sums: dict = {}
    counts: dict = {}
    last = -1
    for d in departures:
        if d.shed:
            continue
        k = int(d.arrived // period)
        sums[k] = sums.get(k, 0.0) + d.delay
        counts[k] = counts.get(k, 0) + 1
        last = max(last, k)
    return [sums.get(k, 0.0) / counts[k] if counts.get(k) else 0.0
            for k in range(last + 1)]
