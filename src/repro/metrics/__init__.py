"""QoS metrics, run recording, reporting, and export."""

from .export import (
    PeriodJsonlWriter,
    departures_to_csv,
    load_json,
    load_jsonl,
    periods_to_csv,
    periods_to_jsonl,
    record_to_json,
    trace_to_json,
)
from .qos import (
    QosMetrics,
    combine_qos,
    delay_percentiles,
    compute_qos,
    delays_by_arrival_period,
    relative_metrics,
)
from .recorder import PeriodRecord, RunRecord, merge_records

__all__ = [
    "PeriodJsonlWriter",
    "PeriodRecord",
    "QosMetrics",
    "RunRecord",
    "combine_qos",
    "compute_qos",
    "delay_percentiles",
    "delays_by_arrival_period",
    "departures_to_csv",
    "load_json",
    "load_jsonl",
    "merge_records",
    "periods_to_csv",
    "periods_to_jsonl",
    "record_to_json",
    "relative_metrics",
    "trace_to_json",
]
