"""Per-period time-series recording of a control run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..dsms.engine import Departure
from ..errors import ExperimentError
from .qos import QosMetrics, TargetLike, compute_qos, delays_by_arrival_period


@dataclass(frozen=True)
class PeriodRecord:
    """Everything observed/decided at one control boundary."""

    k: int
    time: float
    target: float            # yd in force during the period
    delay_estimate: float    # ŷ(k), the feedback signal
    queue_length: int        # q(k)
    cost: float              # c(k) estimate
    inflow_rate: float       # admitted tuples / s
    outflow_rate: float      # departures / s
    offered: int             # tuples offered (before entry shedding)
    admitted: int            # tuples admitted into the engine
    shed_retro: int          # tuples culled from queues at this boundary
    v: float                 # controller's desired admission rate
    u: float                 # raw controller output
    error: float             # e(k)
    alpha: float             # entry drop probability in force next period


@dataclass
class RunRecord:
    """Complete record of one simulated control run."""

    period: float
    periods: List[PeriodRecord] = field(default_factory=list)
    departures: List[Departure] = field(default_factory=list)
    offered_total: int = 0
    entry_dropped_total: int = 0   # tuples dropped before entering the engine
    duration: float = 0.0          # measured window (excludes the drain)
    wall_seconds: float = 0.0
    drain_truncated: bool = False  # end-of-run drain hit its virtual deadline
    drain_leftover: int = 0        # tuples still outstanding at truncation

    def add(self, record: PeriodRecord, departures: List[Departure]) -> None:
        self.periods.append(record)
        self.departures.extend(departures)

    # ------------------------------------------------------------------ #
    # derived series
    # ------------------------------------------------------------------ #
    def estimated_delays(self) -> List[float]:
        """ŷ(k) over time (the online feedback signal)."""
        return [p.delay_estimate for p in self.periods]

    def true_delays(self) -> List[float]:
        """Average delivered delay per arrival period (paper's y(k))."""
        return delays_by_arrival_period(self.departures, self.period)

    def queue_lengths(self) -> List[int]:
        return [p.queue_length for p in self.periods]

    def targets(self) -> List[float]:
        return [p.target for p in self.periods]

    def times(self) -> List[float]:
        return [p.time for p in self.periods]

    def qos(self, target: Optional[TargetLike] = None,
            within_window: bool = True) -> QosMetrics:
        """Aggregate QoS metrics; defaults to the recorded per-period targets.

        ``within_window=True`` (default) counts only tuples that departed
        during the measured run, matching how the paper records metrics
        online for a fixed 400-second experiment; tuples still queued at the
        end contribute nothing. Entry-shedder drops are added to the loss
        on top of in-network shed departures.
        """
        if target is None:
            schedule = {p.k: p.target for p in self.periods}
            default = self.periods[-1].target if self.periods else 0.0

            def fn(t: float) -> float:
                return schedule.get(int(t // self.period), default)
            target = fn
        departures = self.departures
        if within_window and self.duration > 0:
            departures = [d for d in departures if d.departed <= self.duration]
        base = compute_qos(departures, target, self.offered_total)
        return QosMetrics(
            accumulated_violation=base.accumulated_violation,
            delayed_tuples=base.delayed_tuples,
            max_overshoot=base.max_overshoot,
            delivered=base.delivered,
            shed=base.shed + self.entry_dropped_total,
            offered=self.offered_total,
            mean_delay=base.mean_delay,
        )


def merge_records(records: Sequence["RunRecord"]) -> "RunRecord":
    """Fleet-level view of several lockstep runs as one :class:`RunRecord`.

    The service layer runs one record per shard on a shared period grid;
    merging them index-wise yields an aggregate record the existing export
    helpers (:mod:`repro.metrics.export`) can write out unchanged. Counters
    (offered, admitted, queue length, rates) are summed across shards;
    intensive signals (delay estimate, cost, target, error, alpha) are
    averaged — the aggregate delay estimate is the *mean* shard view, so
    per-shard extremes must be read off the individual records.
    """
    records = list(records)
    if not records:
        raise ExperimentError("cannot merge zero run records")
    period = records[0].period
    if any(abs(r.period - period) > 1e-12 for r in records):
        raise ExperimentError("cannot merge records with different periods")
    merged = RunRecord(period=period)
    n_periods = max(len(r.periods) for r in records)
    for k in range(n_periods):
        rows = [r.periods[k] for r in records if k < len(r.periods)]
        n = len(rows)
        merged.periods.append(PeriodRecord(
            k=k,
            time=max(p.time for p in rows),
            target=sum(p.target for p in rows) / n,
            delay_estimate=sum(p.delay_estimate for p in rows) / n,
            queue_length=sum(p.queue_length for p in rows),
            cost=sum(p.cost for p in rows) / n,
            inflow_rate=sum(p.inflow_rate for p in rows),
            outflow_rate=sum(p.outflow_rate for p in rows),
            offered=sum(p.offered for p in rows),
            admitted=sum(p.admitted for p in rows),
            shed_retro=sum(p.shed_retro for p in rows),
            v=sum(p.v for p in rows),
            u=sum(p.u for p in rows),
            error=sum(p.error for p in rows) / n,
            alpha=sum(p.alpha for p in rows) / n,
        ))
    merged.departures = sorted(
        (d for r in records for d in r.departures),
        key=lambda d: (d.departed, d.arrived),
    )
    merged.offered_total = sum(r.offered_total for r in records)
    merged.entry_dropped_total = sum(r.entry_dropped_total for r in records)
    merged.duration = max(r.duration for r in records)
    merged.wall_seconds = max(r.wall_seconds for r in records)
    merged.drain_truncated = any(r.drain_truncated for r in records)
    merged.drain_leftover = sum(r.drain_leftover for r in records)
    return merged
