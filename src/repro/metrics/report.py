"""Plain-text rendering of experiment results (tables and ASCII charts).

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that output consistent and readable in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .qos import QosMetrics

#: the four headline metrics in the paper's Fig. 12 order
METRIC_COLUMNS = ("accumulated_violation", "delayed_tuples",
                  "max_overshoot", "loss_ratio")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3) -> str:
    """A simple aligned text table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)


def qos_row(name: str, q: QosMetrics) -> List[object]:
    """One table row in the standard metric order."""
    return [name, q.accumulated_violation, q.delayed_tuples,
            q.max_overshoot, q.loss_ratio]


def qos_table(results: Dict[str, QosMetrics]) -> str:
    """A table of absolute metrics, one row per strategy."""
    headers = ["strategy", "acc_violation_s", "delayed_tuples",
               "max_overshoot_s", "loss_ratio"]
    return format_table(headers, [qos_row(n, q) for n, q in results.items()])


def ratio_table(results: Dict[str, QosMetrics], reference: str) -> str:
    """The paper's Fig. 12 format: every metric relative to ``reference``."""
    from .qos import relative_metrics
    ref = results[reference]
    headers = ["strategy"] + list(METRIC_COLUMNS)
    rows = []
    for name, q in results.items():
        rel = relative_metrics(q, ref)
        rows.append([name] + [rel[m] for m in METRIC_COLUMNS])
    return format_table(headers, rows)


def ascii_series(values: Sequence[float], width: int = 72, height: int = 12,
                 title: Optional[str] = None,
                 y_label: str = "") -> str:
    """A crude line chart for time series (y(k) plots)."""
    if not values:
        return "(empty series)"
    lo = min(values)
    hi = max(values)
    if hi == lo:
        hi = lo + 1.0
    # downsample to the requested width
    n = len(values)
    step = max(1, n // width)
    cols = [max(values[i:i + step]) for i in range(0, n, step)][:width]
    grid = [[" "] * len(cols) for __ in range(height)]
    for x, v in enumerate(cols):
        row = int((v - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][x] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{hi:8.2f} "
        elif i == height - 1:
            label = f"{lo:8.2f} "
        else:
            label = " " * 9
        lines.append(label + "".join(row))
    if y_label:
        lines.append(" " * 9 + y_label)
    return "\n".join(lines)
