"""The paper's primary contribution: control-based load shedding.

Model (Eq. 2/3/11), pole-placement controller synthesis (Appendix A),
the CTRL/BASELINE/AURORA strategies, the monitor with estimated-delay
feedback, actuators binding decisions to load shedders, and the control
loop that ties them together.
"""

from .actuator import (
    Actuator,
    EntryActuator,
    InNetworkActuator,
    PriorityEntryActuator,
    SamplingActuator,
    SemanticEntryActuator,
)
from .adaptive import AdaptiveController, RlsGainEstimator
from .clock import Clock, ManualClock, WallClock
from .controller import (
    AuroraOpenLoopController,
    BackpressureController,
    BaselineController,
    ControlDecision,
    Controller,
    PolePlacementController,
)
from .estimation import (
    CostEstimator,
    EwmaEstimator,
    KalmanCostEstimator,
    LastValueEstimator,
    WindowMedianEstimator,
)
from .loop import ControlLoop
from .model import DsmsModel
from .monitor import Measurement, Monitor
from .prediction import (
    Ar1Predictor,
    ArrivalPredictor,
    HoltPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
)
from .window_adaptation import WindowAdaptationActuator
from .pole_placement import (
    PAPER_A,
    PAPER_B0,
    PAPER_B1,
    PAPER_POLES,
    ControllerGains,
    design_gains,
    paper_gains,
    poles_from_specs,
)

__all__ = [
    "Actuator",
    "Ar1Predictor",
    "ArrivalPredictor",
    "AdaptiveController",
    "AuroraOpenLoopController",
    "BackpressureController",
    "BaselineController",
    "Clock",
    "ControlDecision",
    "ControlLoop",
    "Controller",
    "ControllerGains",
    "CostEstimator",
    "DsmsModel",
    "EntryActuator",
    "EwmaEstimator",
    "InNetworkActuator",
    "KalmanCostEstimator",
    "LastValueEstimator",
    "HoltPredictor",
    "LastValuePredictor",
    "ManualClock",
    "Measurement",
    "Monitor",
    "MovingAveragePredictor",
    "PAPER_A",
    "PAPER_B0",
    "PAPER_B1",
    "PAPER_POLES",
    "PolePlacementController",
    "PriorityEntryActuator",
    "RlsGainEstimator",
    "SamplingActuator",
    "SemanticEntryActuator",
    "WallClock",
    "WindowAdaptationActuator",
    "WindowMedianEstimator",
    "design_gains",
    "paper_gains",
    "poles_from_specs",
]
