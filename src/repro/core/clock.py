"""Clock abstraction for wall-clock (real-time) control periods.

Everything else in this reproduction runs on the engine's *virtual*
clock: ``run_until`` advances simulated time instantly, so a 400-period
experiment completes in milliseconds. The paper's deployment, however,
is a live Borealis node where control periods are real seconds and the
monitor measures real queueing delay. :class:`WallClock` is the bridge:
it anchors an epoch at :meth:`start` and reports seconds-since-start,
so wall timestamps land directly on the engine's virtual time axis
(both are "seconds since the run began").

:class:`ManualClock` implements the same surface with explicitly
advanced time, so the real-time machinery (ingest stamping, period
tickers) stays deterministically testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class Clock:
    """Minimal clock surface shared by wall and manual clocks."""

    def start(self) -> None:
        """Anchor the epoch (no-op for clocks that don't need one)."""

    def now(self) -> float:
        """Seconds since the clock's epoch."""
        raise NotImplementedError

    def wait_until(self, deadline: float,
                   stop: Optional[threading.Event] = None) -> float:
        """Block until ``now() >= deadline`` (or ``stop`` is set).

        Returns the *lateness* ``now() - deadline`` on wakeup (>= 0 when
        the deadline was reached; may be negative if ``stop`` fired
        early). Lateness is the period-jitter signal surfaced by the
        live runner.
        """
        raise NotImplementedError


class WallClock(Clock):
    """Real time, measured from a monotonic epoch anchored at :meth:`start`.

    Uses :func:`time.monotonic` so NTP slews and system-clock jumps
    cannot move a control-period boundary. ``start()`` is idempotent;
    ``now()`` before ``start()`` anchors the epoch implicitly.
    """

    def __init__(self) -> None:
        self._epoch: Optional[float] = None
        self._lock = threading.Lock()

    def start(self) -> None:
        """Anchor the epoch: from here on ``now()`` counts real seconds."""
        with self._lock:
            if self._epoch is None:
                self._epoch = time.monotonic()

    @property
    def started(self) -> bool:
        """True once the epoch has been anchored."""
        return self._epoch is not None

    def now(self) -> float:
        if self._epoch is None:
            self.start()
        return time.monotonic() - self._epoch

    def wait_until(self, deadline: float,
                   stop: Optional[threading.Event] = None) -> float:
        while True:
            remaining = deadline - self.now()
            if remaining <= 0.0:
                return -remaining
            if stop is not None:
                # Event.wait returns True the moment stop is set, so a
                # shutdown request never waits out the rest of a period.
                if stop.wait(timeout=min(remaining, 0.1)):
                    return self.now() - deadline
            else:
                time.sleep(min(remaining, 0.1))


class ManualClock(Clock):
    """Deterministic clock for tests: time moves only via :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds and wake any waiters."""
        if dt < 0:
            raise ValueError(f"cannot move a clock backwards (dt={dt})")
        with self._cond:
            self._now += dt
            self._cond.notify_all()

    def wait_until(self, deadline: float,
                   stop: Optional[threading.Event] = None) -> float:
        with self._cond:
            while self._now < deadline:
                if stop is not None and stop.is_set():
                    return self._now - deadline
                # Poll-wait: advance() notifies, stop has no hook here.
                self._cond.wait(timeout=0.05)
            return self._now - deadline
