"""Actuators: binding controller decisions to concrete load shedders.

The paper's Section 4.5.2 describes two actuator styles and argues the
controller is agnostic between them because only the *amount* of discarded
load matters for the delay dynamics:

* :class:`EntryActuator` — proactive: converts the allowance into the
  Eq. 13 drop probability applied to arrivals during the coming period
  (requires an inflow estimate; the paper uses the last period's ``fin``);
* :class:`InNetworkActuator` — admits everything and continuously culls
  queued tuples (one random victim per arriving tuple, with the Eq. 13
  probability), via the random-location shedder or the LSRM; a boundary
  reconciliation removes any residual surplus. Continuous culling matters:
  shedding the whole surplus in one boundary batch would let the queue run
  inflated for most of the period and bias every tuple's delay upward.

Both keep offered/dropped counters so data-loss metrics are comparable.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Union

from ..errors import SheddingError
from ..shedding.base import drop_probability
from ..shedding.entry import EntryShedder
from ..shedding.lsrm import LsrmShedder
from ..shedding.priority import PriorityEntryShedder
from ..shedding.queue_shedder import QueueShedder
from ..shedding.semantic import SemanticEntryShedder


class Actuator(abc.ABC):
    """Applies one period's admission allowance."""

    #: True when drops happen before the engine (no Departure records) —
    #: loss accounting must then add ``dropped_total`` separately.
    drops_outside_engine = False

    def __init__(self):
        self.offered_total = 0
        self.dropped_total = 0

    @abc.abstractmethod
    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        """Arm the actuator for the coming period."""

    @abc.abstractmethod
    def admit(self, values: tuple = (), source: str = "") -> bool:
        """Filter one arriving tuple (True = pass it to the engine).

        ``values`` and ``source`` let value-aware (semantic) and
        priority-aware actuators choose victims; plain actuators ignore
        them.
        """

    def end_period(self, admitted: int) -> int:
        """Close the period; returns tuples shed retroactively (if any)."""
        return 0

    @property
    def loss_ratio(self) -> float:
        if self.offered_total == 0:
            return 0.0
        return self.dropped_total / self.offered_total


class EntryActuator(Actuator):
    """Eq. 13 coin-flip shedding at the stream entry."""

    drops_outside_engine = True

    def __init__(self, shedder: Optional[EntryShedder] = None):
        super().__init__()
        self.shedder = shedder or EntryShedder()

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        self.shedder.set_allowance(allowed_tuples, expected_inflow)

    def admit(self, values: tuple = (), source: str = "") -> bool:
        self.offered_total += 1
        ok = self.shedder.admit()
        if not ok:
            self.dropped_total += 1
        return ok

    @property
    def alpha(self) -> float:
        """Current drop probability (for logging)."""
        return self.shedder.alpha


class InNetworkActuator(Actuator):
    """Continuous in-network queue culling (random-location or LSRM)."""

    def __init__(self, shedder: Union[QueueShedder, LsrmShedder],
                 rng: Optional[random.Random] = None):
        super().__init__()
        self.shedder = shedder
        self.rng = rng or random.Random(0)
        self._alpha = 0.0
        self._allowance = float("inf")
        self._culled_this_period = 0

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        self._alpha = drop_probability(allowed_tuples, expected_inflow)
        self._allowance = max(allowed_tuples, 0.0)
        self._culled_this_period = 0
        self.shedder.trace_alpha = self._alpha

    def admit(self, values: tuple = (), source: str = "") -> bool:
        """Admit the arrival; cull one queued tuple with probability alpha."""
        self.offered_total += 1
        if self._alpha > 0.0 and self.rng.random() < self._alpha:
            got = self.shedder.shed_tuples(1)
            self.dropped_total += got
            self._culled_this_period += got
        return True

    def end_period(self, admitted: int) -> int:
        """Reconcile: remove any surplus the probabilistic culling missed."""
        if admitted < 0:
            raise SheddingError("admitted count cannot be negative")
        surplus = (admitted - self._culled_this_period) - self._allowance
        if surplus <= 0:
            return self._culled_this_period
        shed = self.shedder.shed_tuples(int(round(surplus)))
        self.dropped_total += shed
        return self._culled_this_period + shed

    @property
    def alpha(self) -> float:
        return self._alpha


class SemanticEntryActuator(Actuator):
    """Value-aware entry shedding: drop the least useful tuples first.

    Same allowance semantics as :class:`EntryActuator`, but victims are
    chosen by a utility function instead of a fair coin (the semantic
    shedding of the Aurora line of work). The realized loss ratio matches
    the statistical shedder's; the retained *utility* is higher.
    """

    drops_outside_engine = True

    def __init__(self, shedder: SemanticEntryShedder):
        super().__init__()
        self.shedder = shedder

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        self.shedder.set_allowance(allowed_tuples, expected_inflow)

    def admit(self, values: tuple = (), source: str = "") -> bool:
        self.offered_total += 1
        ok = self.shedder.admit(values)
        if not ok:
            self.dropped_total += 1
        return ok

    @property
    def alpha(self) -> float:
        return self.shedder.alpha

    @property
    def utility_retention(self) -> float:
        return self.shedder.utility_retention


class PriorityEntryActuator(Actuator):
    """Strict-priority entry shedding across multiple sources.

    The controller's aggregate allowance is water-filled down the priority
    order (paper Section 6's heterogeneous-guarantees extension): drops
    concentrate on the lowest-priority streams.
    """

    drops_outside_engine = True

    def __init__(self, shedder: PriorityEntryShedder):
        super().__init__()
        self.shedder = shedder

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        self.shedder.set_allowance(allowed_tuples, expected_inflow)

    def admit(self, values: tuple = (), source: str = "") -> bool:
        self.offered_total += 1
        ok = self.shedder.admit(source)
        if not ok:
            self.dropped_total += 1
        return ok

    @property
    def alpha(self) -> float:
        """Aggregate drop expectation over the current mix (for logging)."""
        probs = self.shedder.admit_probability
        if not probs:
            return 0.0
        return 1.0 - sum(probs.values()) / len(probs)

    def loss_by_source(self):
        return self.shedder.loss_by_source()


class SamplingActuator(Actuator):
    """Deterministic decimation — the paper's adaptation (ii).

    Instead of a coin flip, admit every n-th tuple where the stride is
    recomputed each period from the allowance (reducing the effective
    sampling rate of the sources). Deterministic spacing gives the same
    expected loss as Eq. 13 with lower variance, at the cost of aliasing
    risk on periodic data.
    """

    drops_outside_engine = True

    def __init__(self):
        super().__init__()
        self._admit_ratio = 1.0
        self._accumulator = 0.0

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        if expected_inflow <= 0:
            self._admit_ratio = 1.0
        else:
            self._admit_ratio = min(1.0, max(0.0,
                                             allowed_tuples / expected_inflow))

    def admit(self, values: tuple = (), source: str = "") -> bool:
        """Error-diffusion decimation: admit when the ratio accumulates to 1."""
        self.offered_total += 1
        self._accumulator += self._admit_ratio
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            return True
        self.dropped_total += 1
        return False

    @property
    def alpha(self) -> float:
        return 1.0 - self._admit_ratio
