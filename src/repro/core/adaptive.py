"""Adaptive control extension (paper Section 6, "immediate follow-up work").

The paper proposes using adaptive control to capture internal variations of
the system model (fast-changing per-tuple cost). The plant is a pure
integrator ``Δŷ(k) = g · u(k-1)`` with unknown gain ``g = c T / H``, so the
gain can be identified online by recursive least squares (RLS) with a
forgetting factor — no cost measurement needed — and the Eq. 10 control law
re-derived each period with ``1/ĝ`` in place of ``H/(cT)``.

When the loop lacks excitation (``u ≈ 0``: steady state), the RLS update is
skipped and the estimate coasts, falling back to the measurement-based cost
estimate, which keeps the adaptation well-posed.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ControlError
from .controller import ControlDecision, Controller
from .model import DsmsModel
from .monitor import Measurement
from .pole_placement import ControllerGains, design_gains


class RlsGainEstimator:
    """Scalar recursive least squares with exponential forgetting."""

    def __init__(self, initial_gain: float,
                 forgetting: float = 0.98,
                 initial_covariance: float = 1.0,
                 min_excitation: float = 1.0):
        if initial_gain <= 0:
            raise ControlError("initial gain must be positive")
        if not 0.5 < forgetting <= 1.0:
            raise ControlError(f"forgetting factor {forgetting} outside (0.5, 1]")
        if initial_covariance <= 0:
            raise ControlError("initial covariance must be positive")
        self.gain = float(initial_gain)
        self.forgetting = forgetting
        self.covariance = float(initial_covariance)
        self.min_excitation = min_excitation
        self.updates = 0

    def update(self, regressor: float, observation: float) -> float:
        """Fold in one (u(k-1), Δŷ(k)) pair; returns the gain estimate."""
        if abs(regressor) < self.min_excitation:
            return self.gain  # not enough excitation to learn from
        lam = self.forgetting
        p = self.covariance
        denom = lam + regressor * p * regressor
        k = p * regressor / denom
        error = observation - self.gain * regressor
        new_gain = self.gain + k * error
        if new_gain > 0:
            self.gain = new_gain
            self.covariance = (p - k * regressor * p) / lam
            self.updates += 1
        return self.gain


class AdaptiveController(Controller):
    """Pole-placement law with an online-identified plant gain."""

    name = "ADAPTIVE"

    def __init__(self, model: DsmsModel,
                 gains: Optional[ControllerGains] = None,
                 forgetting: float = 0.98,
                 min_excitation: float = 1.0):
        super().__init__(model)
        self.gains = gains or design_gains()
        self.estimator = RlsGainEstimator(
            initial_gain=model.gain,
            forgetting=forgetting,
            min_excitation=min_excitation,
        )
        self._e_prev = 0.0
        self._u_prev = 0.0
        self._y_prev: Optional[float] = None

    def decide(self, m: Measurement, target: float) -> ControlDecision:
        if target < 0:
            raise ControlError(f"negative delay target {target}")
        # identification step: Δŷ(k) = g * u(k-1)
        if self._y_prev is not None:
            self.estimator.update(self._u_prev, m.delay_estimate - self._y_prev)
        self._y_prev = m.delay_estimate
        e = target - m.delay_estimate
        inv_gain = 1.0 / self.estimator.gain   # replaces H/(cT)
        u = (inv_gain * (self.gains.b0 * e + self.gains.b1 * self._e_prev)
             - self.gains.a * self._u_prev)
        v = u + m.outflow_rate
        self._e_prev = e
        self._u_prev = u
        return ControlDecision(v=v, u=u, error=e)

    @property
    def identified_cost(self) -> float:
        """The per-tuple cost implied by the identified gain."""
        return self.estimator.gain * self.model.headroom / self.model.period

    def reset(self) -> None:
        self._e_prev = 0.0
        self._u_prev = 0.0
        self._y_prev = None
        self.estimator = RlsGainEstimator(
            initial_gain=self.model.gain,
            forgetting=self.estimator.forgetting,
            min_excitation=self.estimator.min_excitation,
        )
