"""The control loop's monitor (paper Fig. 3, Section 4.5.1).

Real-time measurement of the *output* (delay) is impossible — the
measurement lag is the output itself — so the monitor feeds back the
estimate ``ŷ(k) = q(k) c(k)/H + c(k)/H`` (Eq. 11) built from the counted
virtual queue length and the runtime cost estimate. It also records the
*true* delays as departures resolve, for offline metrics and for
model-verification experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..dsms.catalog import Catalog
from ..dsms.engine import Departure
from .estimation import CostEstimator, LastValueEstimator
from .model import DsmsModel


@dataclass(frozen=True)
class Measurement:
    """Everything the controller may use at one control boundary."""

    k: int                  # period index (the period that just ended)
    time: float             # virtual time at the boundary
    queue_length: int       # q(k): outstanding tuples now
    cost: float             # c(k): smoothed per-tuple cost estimate
    measured_cost: Optional[float]  # raw cost measurement this period
    inflow_rate: float      # fin(k) tuples/s admitted this period
    outflow_rate: float     # fout(k) tuples/s departed this period
    delay_estimate: float   # ŷ(k) from Eq. 11 — the feedback signal
    admitted: int           # tuples admitted this period
    departed: int           # source-tuple departures this period
    shed: int               # departures lost to shedding this period
    departures: List[Departure]  # resolved delays (for offline metrics)


class Monitor:
    """Snapshots the engine once per control period."""

    def __init__(self, engine, model: DsmsModel,
                 cost_estimator: Optional[CostEstimator] = None,
                 clock=None):
        self.engine = engine
        self.model = model
        self.catalog = Catalog(engine)
        self.cost_estimator = cost_estimator or LastValueEstimator(model.cost)
        #: optional wall clock (repro.core.clock.Clock); when set, the
        #: measurement's boundary time is real seconds-since-start rather
        #: than the engine's virtual now — live mode stamps arrivals on
        #: the same axis, so queue/cost feedback stays consistent.
        self.clock = clock
        self._k = 0

    def measure(self) -> Measurement:
        """Close the current period and produce its measurement."""
        stats = self.catalog.period()
        departures = self.engine.drain_departures()
        cost = self.cost_estimator.update(stats.cost_per_tuple)
        q = self.engine.outstanding
        m = Measurement(
            k=self._k,
            time=self.clock.now() if self.clock is not None else self.engine.now,
            queue_length=q,
            cost=cost,
            measured_cost=stats.cost_per_tuple,
            inflow_rate=stats.inflow_rate,
            outflow_rate=stats.outflow_rate,
            delay_estimate=self.model.delay_estimate(q, cost),
            admitted=stats.admitted,
            departed=stats.departed,
            shed=stats.shed,
            departures=departures,
        )
        self._k += 1
        return m
