"""Load-shedding controllers: CTRL (pole placement), and the comparators.

* :class:`PolePlacementController` — the paper's contribution (Eq. 10):
  ``u(k) = H/(cT) [b0 e(k) + b1 e(k-1)] - a u(k-1)``, with the gain
  recomputed each period from the current cost estimate ``c(k)`` so slow
  cost drift is tolerated (Section 4.4.1).
* :class:`BaselineController` — the simple model-only feedback comparator
  (Section 5): admit ``yd H/c - q(k)`` extra tuples plus the service-rate
  feedforward.
* :class:`AuroraOpenLoopController` — the Fig. 1 algorithm used by
  Aurora/STREAM: open loop, admit up to the capacity ``L0 = H/c(k-1)``
  regardless of system state.

Every controller maps a :class:`~repro.core.monitor.Measurement` and the
current target ``yd`` to a desired admission rate ``v`` in tuples/second.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..errors import ControlError
from .model import DsmsModel
from .monitor import Measurement
from .pole_placement import ControllerGains, design_gains


@dataclass(frozen=True)
class ControlDecision:
    """One period's actuation command."""

    v: float          # desired admission rate for the next period (tuples/s)
    u: float          # raw controller output (desired queue growth, tuples/s)
    error: float      # e(k) = yd - ŷ(k) (seconds); 0 for open-loop methods


class Controller(abc.ABC):
    """Maps measurements to admission-rate decisions."""

    name = "controller"

    def __init__(self, model: DsmsModel):
        self.model = model

    @abc.abstractmethod
    def decide(self, m: Measurement, target: float) -> ControlDecision:
        """Compute the next period's desired admission rate."""

    def reset(self) -> None:
        """Clear internal state between runs."""


class PolePlacementController(Controller):
    """The paper's CTRL method (Eq. 10 with pole-placement gains).

    ``anti_windup`` enables back-calculation: when the actuator saturates
    (cannot admit a negative number of tuples, nor more than arrive), the
    stored ``u(k-1)`` is replaced by the value the saturated actuation
    actually realized, preventing state wind-up during long overloads.
    The paper's experiments run without it; it is exposed for the ablation
    study.

    ``feedback`` selects the feedback signal: ``"estimate"`` (default) is
    the paper's Eq. 11 virtual-queue estimate ŷ(k); ``"measured"`` feeds
    back the average *actual* delay of tuples that departed during the
    period — the naive choice Section 4.5.1 rules out, because that
    measurement lags the true output by the delay itself. Exposed so the
    ablation benchmark can demonstrate the point.
    """

    name = "CTRL"

    def __init__(self, model: DsmsModel,
                 gains: Optional[ControllerGains] = None,
                 anti_windup: bool = False,
                 feedback: str = "estimate"):
        super().__init__(model)
        if feedback not in ("estimate", "measured"):
            raise ControlError(f"unknown feedback signal {feedback!r}")
        self.gains = gains or design_gains()
        self.anti_windup = anti_windup
        self.feedback = feedback
        self._e_prev = 0.0
        self._u_prev = 0.0

    def _feedback_signal(self, m: Measurement) -> float:
        if self.feedback == "estimate":
            return m.delay_estimate
        delivered = [d for d in m.departures if not d.shed]
        if not delivered:
            return m.delay_estimate  # nothing departed: fall back
        return sum(d.delay for d in delivered) / len(delivered)

    def decide(self, m: Measurement, target: float) -> ControlDecision:
        if target < 0:
            raise ControlError(f"negative delay target {target}")
        e = target - self._feedback_signal(m)
        gain = self.model.headroom / (m.cost * self.model.period)
        u = (gain * (self.gains.b0 * e + self.gains.b1 * self._e_prev)
             - self.gains.a * self._u_prev)
        v = u + m.outflow_rate
        if self.anti_windup:
            # back-calculate the u the saturated actuator can realize:
            # admissions are confined to [0, fin]
            v_realizable = min(max(v, 0.0), max(m.inflow_rate, 0.0))
            self._u_prev = v_realizable - m.outflow_rate
        else:
            self._u_prev = u
        self._e_prev = e
        return ControlDecision(v=v, u=u, error=e)

    def reset(self) -> None:
        self._e_prev = 0.0
        self._u_prev = 0.0


class BaselineController(Controller):
    """Model-only feedback (the paper's BASELINE comparator).

    From Eq. 11, a delay of ``yd`` corresponds to ``yd H/c(k)`` outstanding
    tuples, so ``u(k) = (yd H/c - q)/T`` and
    ``v(k) = u(k) + H/c`` (service-rate feedforward). Uses system state but
    no controller dynamics — the paper uses it to show that the *design*
    matters, not just feedback per se.
    """

    name = "BASELINE"

    def decide(self, m: Measurement, target: float) -> ControlDecision:
        if target < 0:
            raise ControlError(f"negative delay target {target}")
        q_target = target * self.model.headroom / m.cost
        u = (q_target - m.queue_length) / self.model.period
        v = u + self.model.headroom / m.cost
        return ControlDecision(v=v, u=u, error=target - m.delay_estimate)


class BackpressureController(Controller):
    """Bounded-buffer backpressure — what mainstream engines do instead.

    Modern stream processors rarely shed load; they apply *backpressure*:
    a bounded buffer of ``max_queue`` tuples admits arrivals while there is
    room and rejects (or blocks) the rest. Expressed in this framework the
    policy is a proportional law toward the buffer bound,
    ``v = (q_max - q)/T + fout`` — structurally the BASELINE formula with
    the queue target fixed by *memory*, not by the delay goal.

    The consequence this library's benchmarks demonstrate: backpressure
    regulates the queue *length*, so the resulting delay ``q_max · c/H``
    silently scales with the per-tuple cost — when cost doubles (Fig. 14's
    events), a backpressured system's latency doubles, while CTRL holds the
    delay and lets the queue-length target move instead.
    """

    name = "BACKPRESSURE"

    def __init__(self, model: DsmsModel, max_queue: int = 368):
        super().__init__(model)
        if max_queue < 1:
            raise ControlError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue

    def decide(self, m: Measurement, target: float) -> ControlDecision:
        u = (self.max_queue - m.queue_length) / self.model.period
        v = u + m.outflow_rate
        return ControlDecision(v=v, u=u, error=0.0)


class AuroraOpenLoopController(Controller):
    """The Fig. 1 open-loop algorithm (Aurora explicitly, STREAM implicitly).

    Admits up to the CPU capacity ``L0 = H/c(k-1)`` tuples per second: when
    the measured load exceeds ``L0`` the excess is shed, otherwise that much
    more load is allowed in. System output plays no role — the source of
    the instability, mis-convergence, and unnecessary-loss failure modes
    the paper demonstrates (Fig. 8, Section 4.3.2).

    ``headroom_override`` retunes the assumed capacity fraction, used by the
    Fig. 16 experiment (running AURORA with H = 0.96 instead of 0.97).
    """

    name = "AURORA"

    def __init__(self, model: DsmsModel,
                 headroom_override: Optional[float] = None):
        super().__init__(model)
        if headroom_override is not None and not 0.0 < headroom_override <= 1.0:
            raise ControlError(
                f"headroom override must be in (0, 1], got {headroom_override}"
            )
        self.headroom_override = headroom_override

    def decide(self, m: Measurement, target: float) -> ControlDecision:
        h = (self.headroom_override if self.headroom_override is not None
             else self.model.headroom)
        capacity = h / m.cost          # L0 in tuples/s
        return ControlDecision(v=capacity, u=capacity - m.outflow_rate,
                               error=0.0)
