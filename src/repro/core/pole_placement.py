"""Controller synthesis for the DSMS plant (paper Appendix A).

For the integrator plant ``G(z) = cT/(H(z-1))`` and a first-order controller
``C(z) = H(b0 z + b1) / (cT (z + a))`` (Eq. 15), matching the closed-loop
characteristic equation (Eq. 17) to the desired one (Eq. 14) gives::

    a - 1 + b0 = -(p1 + p2)          (z^1 coefficient)
    -a + b1    = p1 * p2             (z^0 coefficient)

The static-gain condition (Eq. 19) is ``b0 + b1 = (1-p1)(1-p2)``, which for
this integrator plant is *implied* by the two matching equations — the loop
has one remaining degree of freedom, the controller pole ``-a``. The paper
picks ``a = -0.8`` (with poles 0.7/0.7 this yields its published constants
``b0 = 0.4, b1 = -0.31``); we expose the same choice as
``controller_pole=0.8``.

:func:`gains_from_specs` maps engineering specs (convergence in N periods,
damping ratio) to pole locations, following the paper's reasoning: a pole
at 0.7 decays to 1/e in about three periods, damping 1 avoids oscillation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..control import Polynomial, TransferFunction
from ..errors import ControlError, UnstableDesignError
from .model import DsmsModel

#: the paper's published parameter set (Section 5)
PAPER_B0 = 0.4
PAPER_B1 = -0.31
PAPER_A = -0.8
PAPER_POLES = (0.7, 0.7)


@dataclass(frozen=True)
class ControllerGains:
    """Normalized controller parameters (independent of c, T, H).

    The full controller is ``C(z) = H(b0 z + b1)/(cT(z + a))``; the
    ``H/(cT)`` factor is applied at runtime with the current cost estimate
    (Section 4.4.1, "handling time-varying characteristics").
    """

    b0: float
    b1: float
    a: float

    def transfer_function(self, model: DsmsModel) -> TransferFunction:
        """The controller C(z) for a concrete model instance (Eq. 15)."""
        k = model.headroom / (model.cost * model.period)
        return TransferFunction(
            Polynomial([k * self.b0, k * self.b1]),
            Polynomial([1.0, self.a]),
        )

    def closed_loop(self, model: DsmsModel) -> TransferFunction:
        """Reference-to-output closed loop C G / (1 + C G) (Eq. 16)."""
        return (self.transfer_function(model) * model.plant()).feedback()

    def closed_loop_poles(self) -> Tuple[complex, complex]:
        """Roots of Eq. 17 — independent of c, T, H by construction."""
        char = Polynomial([1.0, self.a - 1.0 + self.b0, -self.a + self.b1])
        roots = char.roots()
        return complex(roots[0]), complex(roots[1])


def design_gains(poles: Tuple[float, float] = PAPER_POLES,
                 controller_pole: float = 0.8) -> ControllerGains:
    """Solve the Appendix-A Diophantine equations for the controller gains.

    ``poles`` are the desired closed-loop poles (must be a real pair or a
    conjugate pair inside the unit circle); ``controller_pole`` pins the
    free parameter ``a = -controller_pole``.
    """
    p1, p2 = complex(poles[0]), complex(poles[1])
    if abs((p1 + p2).imag) > 1e-12 or abs((p1 * p2).imag) > 1e-12:
        raise ControlError("closed-loop poles must be real or a conjugate pair")
    if abs(p1) >= 1.0 or abs(p2) >= 1.0:
        raise UnstableDesignError(f"requested poles {poles} not inside unit circle")
    if not -1.0 < controller_pole < 1.0:
        raise UnstableDesignError(
            f"controller pole {controller_pole} outside the unit circle"
        )
    sum_p = (p1 + p2).real
    prod_p = (p1 * p2).real
    a = -controller_pole
    b0 = 1.0 - sum_p - a        # from: a - 1 + b0 = -(p1 + p2)
    b1 = prod_p + a             # from: -a + b1 = p1 p2
    gains = ControllerGains(b0=b0, b1=b1, a=a)
    # Eq. 19 must hold automatically (integrator plant); verify defensively.
    static = gains.b0 + gains.b1
    expected = (1.0 - sum_p + prod_p)
    if abs(static - expected) > 1e-9:
        raise ControlError(
            f"static-gain identity violated (got {static}, want {expected})"
        )
    return gains


def poles_from_specs(convergence_periods: float = 3.0,
                     damping: float = 1.0) -> Tuple[complex, complex]:
    """Pole pair from convergence-rate and damping specs (Section 4.4.1).

    ``convergence_periods`` is the 1/e time constant in control periods
    (the paper uses 3, i.e. radius ``exp(-1/3) ≈ 0.7``); ``damping`` in
    (0, 1] sets oscillation (1 = critically damped, the paper's choice).
    """
    if convergence_periods <= 0:
        raise ControlError("convergence must be a positive number of periods")
    if not 0.0 < damping <= 1.0:
        raise ControlError(f"damping must be in (0, 1], got {damping}")
    sigma = -1.0 / convergence_periods          # continuous-equivalent decay
    if damping == 1.0:
        r = math.exp(sigma)
        return (complex(r, 0.0), complex(r, 0.0))
    theta = -sigma * math.sqrt(1.0 - damping ** 2) / damping
    if theta >= math.pi:
        raise ControlError(
            "requested damping/convergence alias past the Nyquist frequency; "
            "increase damping or slow the convergence"
        )
    r = math.exp(sigma)
    return (complex(r * math.cos(theta), r * math.sin(theta)),
            complex(r * math.cos(theta), -r * math.sin(theta)))


def paper_gains() -> ControllerGains:
    """The exact constants reported in Section 5 of the paper."""
    return ControllerGains(b0=PAPER_B0, b1=PAPER_B1, a=PAPER_A)
