"""Per-tuple cost estimators.

The monitor measures the realized CPU cost per departed tuple each period;
these estimators smooth that noisy measurement into the ``c(k)`` signal the
controller's ``H/(cT)`` gain and the BASELINE/AURORA formulas consume. The
Kalman filter is the stochastic extension the paper's conclusion proposes
("combining stochastic methods such as Kalman Filters with our controller
design").
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import Deque, Optional

from ..errors import ControlError


class CostEstimator(abc.ABC):
    """Streaming estimator of the per-tuple cost c(k)."""

    def __init__(self, initial: float):
        if initial <= 0:
            raise ControlError("initial cost estimate must be positive")
        self._estimate = float(initial)

    @property
    def estimate(self) -> float:
        return self._estimate

    def update(self, measured: Optional[float]) -> float:
        """Fold in one measurement (None = no departures this period)."""
        if measured is not None:
            if measured <= 0 or not math.isfinite(measured):
                return self._estimate  # ignore degenerate measurements
            self._estimate = self._fold(float(measured))
        return self._estimate

    @abc.abstractmethod
    def _fold(self, measured: float) -> float:
        """Combine the current estimate with a valid measurement."""


class LastValueEstimator(CostEstimator):
    """c(k) := last measured value (the paper's c(k-1) convention)."""

    def _fold(self, measured: float) -> float:
        return measured


class EwmaEstimator(CostEstimator):
    """Exponentially weighted moving average with weight ``alpha`` on new data."""

    def __init__(self, initial: float, alpha: float = 0.4):
        super().__init__(initial)
        if not 0.0 < alpha <= 1.0:
            raise ControlError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha

    def _fold(self, measured: float) -> float:
        return self.alpha * measured + (1.0 - self.alpha) * self._estimate


class WindowMedianEstimator(CostEstimator):
    """Median of the last ``window`` measurements (spike-robust)."""

    def __init__(self, initial: float, window: int = 5):
        super().__init__(initial)
        if window < 1:
            raise ControlError("window must be at least 1")
        self._values: Deque[float] = deque(maxlen=window)

    def _fold(self, measured: float) -> float:
        self._values.append(measured)
        ordered = sorted(self._values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


class KalmanCostEstimator(CostEstimator):
    """Scalar Kalman filter over a random-walk cost model.

    State: ``c(k) = c(k-1) + w``, ``w ~ N(0, process_var)``;
    measurement: ``m(k) = c(k) + v``, ``v ~ N(0, measurement_var)``.
    Tracks slow drift (the paper's assumption that costs change more slowly
    than arrival rates) while averaging out per-period sampling noise.
    """

    def __init__(self, initial: float,
                 process_var: float = 1e-8,
                 measurement_var: float = 1e-6,
                 initial_var: float = 1e-4):
        super().__init__(initial)
        if process_var <= 0 or measurement_var <= 0 or initial_var <= 0:
            raise ControlError("Kalman variances must be positive")
        self.process_var = process_var
        self.measurement_var = measurement_var
        self.variance = initial_var

    def _fold(self, measured: float) -> float:
        # predict
        prior_var = self.variance + self.process_var
        # update
        gain = prior_var / (prior_var + self.measurement_var)
        estimate = self._estimate + gain * (measured - self._estimate)
        self.variance = (1.0 - gain) * prior_var
        return estimate

    @property
    def kalman_gain(self) -> float:
        prior_var = self.variance + self.process_var
        return prior_var / (prior_var + self.measurement_var)
