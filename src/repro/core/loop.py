"""The feedback control loop (paper Fig. 3).

Each control period of length ``T``:

1. arrivals due in the period pass the actuator's admission filter and the
   survivors enter the engine;
2. the engine runs to the period boundary;
3. retroactive actuators cull any surplus from the queues;
4. the monitor measures the period (``q(k)``, ``c(k)``, ``fin``, ``fout``,
   ``ŷ(k)``);
5. the controller maps the error ``yd - ŷ(k)`` to a desired admission rate
   ``v(k)``;
6. the actuator is armed for the next period with the allowance
   ``v(k) * T`` and the inflow estimate (this period's offered count — the
   paper's "use ``fin(k)`` as the estimate of ``fin(k+1)``").

The loop works with both the full discrete-event engine and the fast
virtual-queue engine.

Two driving styles share the same per-period body:

* :meth:`ControlLoop.run` — the classic single-loop experiment: one
  arrival stream, one fixed duration;
* the stepped API (:meth:`begin` / :meth:`run_period` / :meth:`finish`) —
  used by the sharded service layer (:mod:`repro.service`), which clocks
  many loops in lockstep and lets a global coordinator adjust each loop's
  target (:meth:`set_target`) between periods.
"""

from __future__ import annotations

import time as _time
from contextlib import ExitStack
from typing import Callable, Iterable, List, Optional, Tuple, Union

from ..errors import ExperimentError
from ..metrics.recorder import PeriodRecord, RunRecord
from ..obs.bus import get_bus
from ..obs.events import (
    CompletionStats,
    DrainTruncated,
    PeriodDecision,
    RunFinished,
    RunStarted,
    ShedAction,
    TargetChanged,
)
from .actuator import Actuator, EntryActuator
from .controller import Controller
from .monitor import Monitor
from .prediction import ArrivalPredictor

Arrival = Tuple[float, Tuple, str]
TargetSchedule = Union[float, Callable[[int], float]]


class ControlLoop:
    """Monitor -> controller -> actuator, clocked every T seconds."""

    def __init__(self, engine, controller: Controller, monitor: Monitor,
                 actuator: Optional[Actuator] = None,
                 target: TargetSchedule = 2.0,
                 period: float = 1.0,
                 cycle_cost: float = 0.0,
                 predictor: Optional[ArrivalPredictor] = None,
                 drain_max_extra: float = 600.0,
                 charge_cycle_within_period: bool = False,
                 bus=None,
                 tracer=None,
                 tuple_tracer=None,
                 dither: float = 0.0):
        if period <= 0:
            raise ExperimentError(f"control period must be positive, got {period}")
        if cycle_cost < 0:
            raise ExperimentError("cycle cost cannot be negative")
        if drain_max_extra < 0:
            raise ExperimentError("drain budget cannot be negative")
        if not 0.0 <= dither < 1.0:
            raise ExperimentError(
                f"dither must be in [0, 1), got {dither}")
        self.engine = engine
        self.controller = controller
        self.monitor = monitor
        self.actuator = actuator or EntryActuator()
        self.period = period
        #: CPU seconds charged per control cycle for monitoring/actuation
        #: (statistics collection and shedder reconfiguration are not free;
        #: this is what makes very small control periods costly — Fig. 19)
        self.cycle_cost = cycle_cost
        #: forecaster for fin(k+1); None reproduces the paper's choice of
        #: reusing the current period's count verbatim
        self.predictor = predictor
        #: extra virtual seconds the end-of-run drain may spend emptying the
        #: backlog before giving up (the run record notes a truncated drain)
        self.drain_max_extra = drain_max_extra
        #: charge the cycle overhead *inside* the period (stop serving
        #: cycle_cost/H early) instead of after the boundary. The default
        #: (False, the historical behavior) lets the overhead creep the
        #: engine clock past each boundary; the in-period mode keeps the
        #: clock exactly on the period grid, which the batch sweep
        #: cross-check relies on to compare trajectories point-for-point.
        self.charge_cycle_within_period = charge_cycle_within_period
        #: observability event bus (the process default unless overridden;
        #: the service layer swaps in a shard-scoped emitter). Falsy while
        #: nobody subscribes, so emit sites guard with ``if self.bus:`` and
        #: the disabled path never allocates an event.
        self.bus = bus if bus is not None else get_bus()
        #: optional :class:`~repro.obs.tracing.PeriodTracer`; None (the
        #: default) skips every clock read
        self.tracer = tracer
        #: optional :class:`~repro.obs.tuptrace.TupleTracer` sampling
        #: per-tuple lifecycle spans; None (the default) skips everything
        self.tuple_tracer = tuple_tracer
        #: opt-in identifiability excitation: scale the actuator allowance
        #: by ``1 ± dither`` on alternating periods. A loop in steady
        #: state barely moves ``u``, which leaves closed-loop system
        #: identification starved of signal (docs/THEORY.md §15); a small
        #: deterministic square wave restores persistent excitation
        #: without touching the controller state or breaking replay.
        self.dither = float(dither)
        self._target = target
        self._target_in_force: Optional[float] = None

    def target_at(self, k: int) -> float:
        if callable(self._target):
            return float(self._target(k))
        return float(self._target)

    def set_target(self, target: TargetSchedule) -> None:
        """Replace the target schedule from outside the loop.

        Takes effect at the next control decision; the service layer's
        coordinator uses this to shift delay budget between shards while
        their loops are running.
        """
        self._target = target

    # ------------------------------------------------------------------ #
    # stepped API (one call per control period)
    # ------------------------------------------------------------------ #
    def begin(self) -> RunRecord:
        """Start a run: arm the actuator wide open, return a fresh record."""
        record = RunRecord(period=self.period)
        # first period: nothing measured yet -> admit everything
        self.actuator.begin_period(float("inf"), 0.0)
        self._target_in_force = None
        if self.bus:
            self.bus.emit(RunStarted(period=self.period))
        return record

    def run_period(self, record: RunRecord, k: int,
                   arrivals: Iterable[Arrival]) -> PeriodRecord:
        """Execute control period ``k``: feed its arrivals, measure, decide.

        ``arrivals`` must hold exactly the tuples with timestamps below the
        period boundary ``(k + 1) * period`` that have not been fed yet, in
        time order.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_period(k)
            mark = _time.perf_counter()
        boundary = (k + 1) * self.period
        offered = 0
        admitted = 0
        # engines that integrate whole spans at once (BatchFluidEngine)
        # ask for bulk submission: skip the per-arrival clock advance,
        # which only exists so *in-network* actuators see live queue state
        bulk = (getattr(self.engine, "prefers_bulk_submit", False)
                and self.actuator.drops_outside_engine)
        ttr = self.tuple_tracer
        for t, values, source in arrivals:
            # advance the engine to the arrival instant so in-network
            # actuators cull against the queue state the tuple actually
            # meets (entry actuators are indifferent to this)
            if not bulk and t > self.engine.now:
                self.engine.run_until(t)
            offered += 1
            ctx = ttr.on_arrival(t, source) if ttr is not None else None
            if self.actuator.admit(values, source):
                # the engine may sit slightly past the arrival instant
                # (it finishes the tuple in service); clamping to its
                # clock here is intended, so the engine's late-arrival
                # accounting stays reserved for genuine clock bugs
                t_submit = max(t, k * self.period)
                now = getattr(self.engine, "now", t_submit)
                if ctx is None:
                    self.engine.submit(max(t_submit, now), values, source)
                else:
                    self.engine.submit(max(t_submit, now), values, source,
                                       trace=ctx)
                admitted += 1
            elif ctx is not None:
                ttr.on_entry_drop(ctx, t, self.actuator, k)
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("ingest", now - mark)
            mark = now
        if self.cycle_cost and self.charge_cycle_within_period:
            # reserve the overhead inside the period so the clock lands
            # exactly on the boundary instead of creeping past it
            pre = boundary - self.cycle_cost / self.engine.headroom
            self.engine.run_until(max(pre, self.engine.now))
            self.engine.consume_cpu(self.cycle_cost)
            self.engine.run_until(max(boundary, self.engine.now))
        else:
            # the engine may already sit past the boundary (it finishes the
            # tuple in service, and the cycle overhead advances the clock)
            self.engine.run_until(max(boundary, self.engine.now))
            if self.cycle_cost:
                self.engine.consume_cpu(self.cycle_cost)
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("engine", now - mark)
            mark = now
        shed_retro = self.actuator.end_period(admitted)
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("actuator", now - mark)
            mark = now
        m = self.monitor.measure()
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("monitor", now - mark)
            mark = now
        target = self.target_at(k)
        decision = self.controller.decide(m, target)
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("controller", now - mark)
            mark = now
        allowance = max(0.0, decision.v) * self.period
        if self.dither:
            allowance *= 1.0 + (self.dither if k % 2 == 0 else -self.dither)
        if self.predictor is not None:
            self.predictor.update(float(offered))
            inflow_estimate = self.predictor.predict()
        else:
            inflow_estimate = float(offered)
        self.actuator.begin_period(allowance, inflow_estimate)
        if tracer is not None:
            now = _time.perf_counter()
            tracer.add("actuator", now - mark)
            mark = now
        period_record = PeriodRecord(
            k=k,
            time=m.time,
            target=target,
            delay_estimate=m.delay_estimate,
            queue_length=m.queue_length,
            cost=m.cost,
            inflow_rate=m.inflow_rate,
            outflow_rate=m.outflow_rate,
            offered=offered,
            admitted=admitted,
            shed_retro=shed_retro,
            v=decision.v,
            u=decision.u,
            error=decision.error,
            alpha=getattr(self.actuator, "alpha", 0.0),
        )
        record.add(period_record, m.departures)
        record.offered_total += offered
        bus = self.bus
        if bus:
            if self._target_in_force is not None \
                    and target != self._target_in_force:
                bus.emit(TargetChanged(old=self._target_in_force, new=target))
            entry_dropped = offered - admitted
            if entry_dropped > 0:
                bus.emit(ShedAction(k=k, action="entry", count=entry_dropped,
                                    alpha=period_record.alpha))
            if shed_retro > 0:
                bus.emit(ShedAction(k=k, action="retro", count=shed_retro,
                                    alpha=period_record.alpha))
            if m.departures:
                # per-period delay samples: feeds the tuple-latency
                # histogram and the dashboard percentile pane regardless
                # of whether span sampling is on
                bus.emit(CompletionStats(
                    k=k, count=len(m.departures),
                    shed=sum(1 for d in m.departures if d.shed),
                    delays=[d.delay for d in m.departures if not d.shed]))
            bus.emit(PeriodDecision(record=period_record))
        self._target_in_force = target
        if tracer is not None:
            tracer.add("bookkeeping", _time.perf_counter() - mark)
            tracer.end_period()
        return period_record

    def finish(self, record: RunRecord, n_periods: int) -> None:
        """Close a stepped run: account entry drops, drain the backlog."""
        record.duration = n_periods * self.period
        if self.actuator.drops_outside_engine:
            # in-network drops already appear as shed departures
            record.entry_dropped_total = self.actuator.dropped_total
        # let the backlog drain so every delivered tuple's delay is known
        with ExitStack() as scopes:
            if self.tracer is not None:
                scopes.enter_context(self.tracer.span("drain"))
            if self.tuple_tracer is not None:
                # service spans recorded during the final drain show up as
                # "drain" segments in the per-tuple traces
                scopes.enter_context(self.tuple_tracer.drain_scope("final"))
            drained = self._drain(record)
        if self.bus:
            if drained:
                # the drain's completions never close inside a period, so
                # emit them here or the latency histogram misses the tail
                self.bus.emit(CompletionStats(
                    k=len(record.periods), count=len(drained),
                    shed=sum(1 for d in drained if d.shed),
                    delays=[d.delay for d in drained if not d.shed]))
            if record.drain_truncated:
                self.bus.emit(DrainTruncated(leftover=record.drain_leftover,
                                             time=self.engine.now))
            self.bus.emit(RunFinished(periods=len(record.periods),
                                      duration=record.duration,
                                      drain_truncated=record.drain_truncated))

    # ------------------------------------------------------------------ #
    # classic single-call driver
    # ------------------------------------------------------------------ #
    def run(self, arrivals: Iterable[Arrival], duration: float) -> RunRecord:
        """Drive the loop for ``duration`` seconds of virtual time."""
        if duration <= 0:
            raise ExperimentError("duration must be positive")
        wall_start = _time.perf_counter()
        record = self.begin()
        arrival_iter = iter(arrivals)
        pending: Optional[Arrival] = next(arrival_iter, None)
        n_periods = int(round(duration / self.period))
        for k in range(n_periods):
            boundary = (k + 1) * self.period
            due: List[Arrival] = []
            while pending is not None and pending[0] < boundary:
                due.append(pending)
                pending = next(arrival_iter, None)
            self.run_period(record, k, due)
        self.finish(record, n_periods)
        record.wall_seconds = _time.perf_counter() - wall_start
        if self.tracer is not None:
            self.tracer.wall_seconds = record.wall_seconds
        return record

    def _drain(self, record: RunRecord,
               max_extra: Optional[float] = None) -> List:
        """Run the engine with no new input until the queue empties.

        The drain gives up after ``drain_max_extra`` virtual seconds; when
        that deadline truncates outstanding tuples the record's
        ``drain_truncated``/``drain_leftover`` fields say so (the flush that
        follows still force-completes them, but their timing is no longer a
        faithful quiescent drain). Returns the departures it resolved.
        """
        budget = self.drain_max_extra if max_extra is None else max_extra
        deadline = self.engine.now + budget
        while self.engine.outstanding > 0 and self.engine.now < deadline:
            self.engine.run_until(min(self.engine.now + 5.0, deadline))
        leftover = self.engine.outstanding
        if leftover > 0:
            record.drain_truncated = True
            record.drain_leftover = leftover
        self.engine.flush()
        drained = self.engine.drain_departures()
        record.departures.extend(drained)
        return drained
