"""Arrival-rate predictors (paper Section 6: "prediction strategies of
time series ... a promising direction").

The Eq. 13 actuator needs ``fin(k+1)`` and the paper simply reuses
``fin(k)``, which systematically under-sheds on monotone ramps (the
Fig. 8A failure it pins on AURORA also contaminates the closed loop's
actuation, though feedback corrects it a period later). These predictors
plug into :class:`~repro.core.loop.ControlLoop` to sharpen the estimate:

* :class:`LastValuePredictor` — the paper's choice (random-walk optimal);
* :class:`MovingAveragePredictor` — smooths heavy-tailed noise;
* :class:`HoltPredictor` — double exponential smoothing with a trend term,
  the right tool for ramps;
* :class:`Ar1Predictor` — online least-squares AR(1) around the running
  mean, the right tool for mean-reverting bursts.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque

from ..errors import ControlError


class ArrivalPredictor(abc.ABC):
    """One-step-ahead predictor of per-period arrival counts."""

    @abc.abstractmethod
    def update(self, observed: float) -> None:
        """Fold in the count observed for the period that just ended."""

    @abc.abstractmethod
    def predict(self) -> float:
        """Forecast the next period's count (never negative)."""

    def reset(self) -> None:
        """Clear state; default implementations are stateless enough."""


class LastValuePredictor(ArrivalPredictor):
    """fin(k+1) := fin(k) — the paper's estimator."""

    def __init__(self):
        self._last = 0.0

    def update(self, observed: float) -> None:
        self._last = max(0.0, float(observed))

    def predict(self) -> float:
        return self._last

    def reset(self) -> None:
        self._last = 0.0


class MovingAveragePredictor(ArrivalPredictor):
    """Mean of the last ``window`` observations."""

    def __init__(self, window: int = 5):
        if window < 1:
            raise ControlError("window must be at least 1")
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, observed: float) -> None:
        self._values.append(max(0.0, float(observed)))

    def predict(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def reset(self) -> None:
        self._values.clear()


class HoltPredictor(ArrivalPredictor):
    """Holt's linear (double exponential) smoothing: level + trend.

    ``level_alpha`` weights new observations into the level; ``trend_beta``
    weights level changes into the trend. On a steady ramp the one-step
    forecast is unbiased, which is exactly what last-value is not.
    """

    def __init__(self, level_alpha: float = 0.5, trend_beta: float = 0.3):
        if not 0.0 < level_alpha <= 1.0:
            raise ControlError(f"level_alpha {level_alpha} outside (0, 1]")
        if not 0.0 <= trend_beta <= 1.0:
            raise ControlError(f"trend_beta {trend_beta} outside [0, 1]")
        self.level_alpha = level_alpha
        self.trend_beta = trend_beta
        self._level = 0.0
        self._trend = 0.0
        self._seen = 0

    def update(self, observed: float) -> None:
        observed = max(0.0, float(observed))
        if self._seen == 0:
            self._level = observed
            self._trend = 0.0
        else:
            prev_level = self._level
            self._level = (self.level_alpha * observed
                           + (1.0 - self.level_alpha) * (self._level + self._trend))
            self._trend = (self.trend_beta * (self._level - prev_level)
                           + (1.0 - self.trend_beta) * self._trend)
        self._seen += 1

    def predict(self) -> float:
        return max(0.0, self._level + self._trend)

    def reset(self) -> None:
        self._level = 0.0
        self._trend = 0.0
        self._seen = 0


class Ar1Predictor(ArrivalPredictor):
    """Online AR(1) around a slowly-adapting mean.

    Model: ``x(k+1) - mu = phi (x(k) - mu) + noise``; ``phi`` is estimated
    by exponentially-weighted least squares. Mean-reverting bursts
    (phi < 1) are forecast back toward the mean instead of being assumed
    to persist.
    """

    def __init__(self, mean_alpha: float = 0.02, forgetting: float = 0.97):
        if not 0.0 < mean_alpha <= 1.0:
            raise ControlError(f"mean_alpha {mean_alpha} outside (0, 1]")
        if not 0.5 < forgetting <= 1.0:
            raise ControlError(f"forgetting {forgetting} outside (0.5, 1]")
        self.mean_alpha = mean_alpha
        self.forgetting = forgetting
        self._mean = 0.0
        self._last: float = 0.0
        self._sxx = 1e-6
        self._sxy = 0.0
        self._seen = 0

    @property
    def phi(self) -> float:
        return max(-0.99, min(0.99, self._sxy / self._sxx))

    def update(self, observed: float) -> None:
        observed = max(0.0, float(observed))
        if self._seen == 0:
            self._mean = observed
        else:
            x = self._last - self._mean
            y = observed - self._mean
            self._sxx = self.forgetting * self._sxx + x * x
            self._sxy = self.forgetting * self._sxy + x * y
            self._mean += self.mean_alpha * (observed - self._mean)
        self._last = observed
        self._seen += 1

    def predict(self) -> float:
        if self._seen == 0:
            return 0.0
        return max(0.0, self._mean + self.phi * (self._last - self._mean))

    def reset(self) -> None:
        self._mean = 0.0
        self._last = 0.0
        self._sxx = 1e-6
        self._sxy = 0.0
        self._seen = 0
