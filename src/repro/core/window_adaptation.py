"""Window-size adaptation — the paper's adaptation (iii).

Instead of discarding tuples, overload can be absorbed by "modifying
operator features such as window size of join operators" (paper Section
3): a smaller join window means fewer stored tuples to scan per probe,
hence a lower per-tuple CPU cost — the queries lose *recall* (matches
against evicted history) instead of losing input data.

:class:`WindowAdaptationActuator` converts the controller's allowance into
a window scale. With the linearized cost model
``c(s) = fixed_cost + join_cost_full * s`` (scan work proportional to
window occupancy), an allowance/inflow ratio ``rho`` requires
``c(s_next) = rho * c(s_now)``. When even the minimum window cannot absorb
the overload, the residual is shed by an embedded entry coin flip, so the
delay guarantee never depends on the windows alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..dsms.operators.windowed import WindowJoinOperator
from ..errors import SheddingError
from ..shedding.base import drop_probability
from .actuator import Actuator


class WindowAdaptationActuator(Actuator):
    """Shrink join windows first; shed only what windows cannot absorb."""

    drops_outside_engine = True

    def __init__(self, joins: Sequence[WindowJoinOperator],
                 fixed_cost: float,
                 join_cost_full: float,
                 min_scale: float = 0.1,
                 rng: Optional[random.Random] = None):
        super().__init__()
        if not joins:
            raise SheddingError("need at least one join to adapt")
        if fixed_cost <= 0 or join_cost_full <= 0:
            raise SheddingError("cost components must be positive")
        if not 0.0 < min_scale <= 1.0:
            raise SheddingError(f"min scale {min_scale} outside (0, 1]")
        self.joins: List[WindowJoinOperator] = list(joins)
        self.fixed_cost = float(fixed_cost)
        self.join_cost_full = float(join_cost_full)
        self.min_scale = float(min_scale)
        self.rng = rng or random.Random(0)
        self._alpha = 0.0

    @property
    def scale(self) -> float:
        """Current common window scale (all joins kept in lockstep)."""
        return self.joins[0].window_scale

    def _cost_at(self, scale: float) -> float:
        return self.fixed_cost + self.join_cost_full * scale

    def begin_period(self, allowed_tuples: float, expected_inflow: float) -> None:
        if expected_inflow <= 0:
            # idle input: restore full windows, admit everything
            self._set_scale(1.0)
            self._alpha = 0.0
            return
        rho = max(allowed_tuples, 0.0) / expected_inflow
        target_cost = rho * self._cost_at(self.scale)
        desired = (target_cost - self.fixed_cost) / self.join_cost_full
        scale = min(1.0, max(self.min_scale, desired))
        self._set_scale(scale)
        if desired < self.min_scale:
            # windows bottomed out: shed the residual load at the entry
            admissible = (target_cost / self._cost_at(self.min_scale)
                          * expected_inflow)
            self._alpha = drop_probability(admissible, expected_inflow)
        else:
            self._alpha = 0.0

    def _set_scale(self, scale: float) -> None:
        for join in self.joins:
            join.window_scale = scale

    def admit(self, values: tuple = (), source: str = "") -> bool:
        self.offered_total += 1
        if self._alpha > 0.0 and self.rng.random() < self._alpha:
            self.dropped_total += 1
            return False
        return True

    @property
    def alpha(self) -> float:
        return self._alpha
