"""The paper's dynamic DSMS model (Section 4.2).

Core relations:

* Eq. 2 — average delay of tuples arriving in period ``k``:
  ``y(k) = (c/H) * (q(k-1) + 1)``;
* Eq. 11 — the real-time *estimate* used as the feedback signal:
  ``ŷ(k) = q(k) c(k)/H + c(k)/H``;
* Eq. 4 — the z-domain plant: ``G(z) = cT / (H (z - 1))``, a discrete
  integrator driven by ``fin - fout``.

:class:`DsmsModel` bundles the three parameters (per-tuple cost ``c``,
headroom ``H``, control period ``T``) with these relations, plus the
inverse queries the BASELINE strategy and the actuators need (how many
outstanding tuples correspond to a delay target, service capacity, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..control import TransferFunction
from ..errors import ControlError


@dataclass(frozen=True)
class DsmsModel:
    """Parameters of the virtual-queue model."""

    cost: float       # expected CPU seconds per source tuple, the paper's c
    headroom: float   # fraction of CPU available for query processing, H
    period: float     # control / sampling period T in seconds

    def __post_init__(self):
        if self.cost <= 0:
            raise ControlError(f"cost must be positive, got {self.cost}")
        if not 0.0 < self.headroom <= 1.0:
            raise ControlError(f"headroom must be in (0, 1], got {self.headroom}")
        if self.period <= 0:
            raise ControlError(f"period must be positive, got {self.period}")

    # ------------------------------------------------------------------ #
    # Eq. 2 / Eq. 11
    # ------------------------------------------------------------------ #
    def delay_estimate(self, queue_length: float, cost: float = None) -> float:
        """Eq. 11: ŷ from the counted virtual queue length.

        ``cost`` overrides the nominal ``c`` with the current estimate
        ``c(k)`` when per-tuple cost varies.
        """
        c = self.cost if cost is None else cost
        if queue_length < 0:
            raise ControlError(f"negative queue length {queue_length}")
        return (queue_length + 1.0) * c / self.headroom

    def queue_for_delay(self, delay: float, cost: float = None) -> float:
        """Inverse of Eq. 11: outstanding tuples sustaining a given delay."""
        c = self.cost if cost is None else cost
        if delay < 0:
            raise ControlError(f"negative delay {delay}")
        return max(0.0, delay * self.headroom / c - 1.0)

    def service_rate(self, cost: float = None) -> float:
        """Steady-state throughput H/c in tuples per second (the paper's L0)."""
        c = self.cost if cost is None else cost
        return self.headroom / c

    # ------------------------------------------------------------------ #
    # Eq. 4
    # ------------------------------------------------------------------ #
    @property
    def gain(self) -> float:
        """The integrator gain cT/H."""
        return self.cost * self.period / self.headroom

    def plant(self) -> TransferFunction:
        """The z-domain plant G(z) = cT / (H (z - 1))."""
        return TransferFunction.integrator(self.gain)

    def with_cost(self, cost: float) -> "DsmsModel":
        """A copy with an updated cost estimate (time-varying c)."""
        return replace(self, cost=cost)

    def with_period(self, period: float) -> "DsmsModel":
        return replace(self, period=period)
