"""In-network queue shedder with random location choice.

This reproduces the shedder the paper's authors built for their evaluation
(Section 5): "The load shedder we built allows shedding from the queue and
randomly selects shedding locations. In other words, it is more general
than the first load shedder ... but lacks the optimization towards
non-delay parameters found in the Borealis load shedder."

Given a load amount ``Ls`` (CPU seconds) to remove — the paper's Section
4.5.2 quantity ``Ls = Lq + Li - La`` — it repeatedly picks a random
*queued tuple* (queues weighted by depth, i.e. every outstanding tuple is
an equally likely victim) and discards it, crediting that location's load
coefficient, until the target is met or the network is empty. Weighting by
depth rather than picking a uniformly random queue matters: most of the
backlog sits at the entry operator, and preferring near-empty downstream
queues would waste the CPU already invested in those tuples.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..dsms.engine import Engine
from ..errors import SheddingError
from .base import LoadShedder


class QueueShedder(LoadShedder):
    """Random-location in-network shedding on a full engine."""

    def __init__(self, engine: Engine, rng: Optional[random.Random] = None):
        super().__init__(rng)
        self.engine = engine
        self._coeffs: Dict[str, float] = {}
        self.load_shed_total = 0.0

    def refresh_coefficients(self) -> None:
        """Recompute load coefficients from observed selectivities."""
        self._coeffs = self.engine.network.load_coefficients()

    def shed_load(self, load_target: float) -> float:
        """Drop queued tuples until ~``load_target`` CPU seconds are saved.

        Returns the load actually saved (less than the target when the
        queues run dry first). The cost multiplier in force *now* scales
        each tuple's saved load, matching how the engine would have charged
        it.
        """
        if load_target < 0:
            raise SheddingError(f"negative load target {load_target}")
        if load_target == 0:
            return 0.0
        if not self._coeffs:
            self.refresh_coefficients()
        multiplier = self.engine.cost_multiplier(self.engine.now)
        saved = 0.0
        while saved < load_target:
            name = self._random_location()
            if name is None:
                break
            dropped = self.engine.shed_queue_count(
                name, 1, reason="load", shedder=type(self).__name__,
                alpha=self.trace_alpha)
            if dropped == 0:
                continue
            self.dropped_total += dropped
            saved += self._coeffs.get(name, 0.0) * multiplier * dropped
        self.load_shed_total += saved
        return saved

    def _random_location(self) -> Optional[str]:
        """A queue chosen with probability proportional to its depth."""
        queues = self.engine.queues
        total = sum(len(q) for q in queues.values())
        if total == 0:
            return None
        pick = self.rng.randrange(total)
        for name, q in queues.items():
            depth = len(q)
            if pick < depth:
                return name
            pick -= depth
        return None  # unreachable

    def shed_tuples(self, count: int) -> int:
        """Drop ``count`` tuples from random queues (tuple-count interface)."""
        if count < 0:
            raise SheddingError("shed count must be non-negative")
        shed = 0
        while shed < count:
            name = self._random_location()
            if name is None:
                break
            got = self.engine.shed_queue_count(
                name, 1, reason="cull", shedder=type(self).__name__,
                alpha=self.trace_alpha)
            shed += got
            self.dropped_total += got
        return shed

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        """Shed the tuple surplus from queues right now.

        With in-network shedding the "allowance" is enforced by removing
        ``q_now + expected_inflow - allowed`` tuples; incoming tuples are
        admitted and culled at the next boundary if still in excess.
        """
        surplus = (self.engine.queued_tuples + expected_inflow) - tuples_allowed
        self.offered_total += int(round(expected_inflow))
        if surplus > 0:
            self.shed_tuples(int(round(surplus)))
