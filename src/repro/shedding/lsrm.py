"""Load Shedding Roadmap (LSRM) — the Aurora/Borealis "where to shed" answer.

The paper delegates the *where* question to the existing Aurora work
(Tatbul et al., VLDB 2003): a precomputed roadmap of drop locations ordered
so that a required load reduction is met with minimal utility loss, where
utility is calculated from the data loss ratio only. This module implements
that construction on our query networks:

* every operator input is a candidate :class:`~repro.shedding.plan.DropLocation`;
* its **gain** is the location's load coefficient (CPU saved per drop);
* its **loss** is the expected number of network outputs the dropped tuple
  would have produced;
* the roadmap ranks locations by ascending loss/gain, so walking it greedily
  sheds a given load while losing the fewest results.

:class:`LsrmShedder` executes a plan against a live engine by discarding
queued tuples at the chosen locations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..dsms.engine import Engine
from ..dsms.network import QueryNetwork
from ..errors import SheddingError
from .base import LoadShedder
from .plan import DropLocation, SheddingPlan, rank_locations


def output_yield(network: QueryNetwork,
                 selectivities: Optional[Dict[str, float]] = None
                 ) -> Dict[str, float]:
    """Expected network-output tuples produced per tuple entering each operator.

    Computed bottom-up: an exit operator yields its own selectivity; an
    inner operator yields its selectivity times the sum of its consumers'
    yields (copies to multiple consumers each produce results).
    """
    sel = selectivities or {}
    yields: Dict[str, float] = {}
    for name in reversed(network.topological_order()):
        op = network.operators[name]
        s = sel.get(name, op.selectivity)
        consumers = network.successors(name)
        if not consumers:
            yields[name] = s
        else:
            yields[name] = s * sum(yields[succ] for succ, __ in consumers)
    return yields


class LoadSheddingRoadmap:
    """Precomputed, loss/gain-ordered drop locations for a network."""

    def __init__(self, network: QueryNetwork,
                 selectivities: Optional[Dict[str, float]] = None):
        coeffs = network.load_coefficients(selectivities)
        yields = output_yield(network, selectivities)
        self.locations: List[DropLocation] = rank_locations([
            DropLocation(operator=name, gain=coeffs[name], loss=yields[name])
            for name in network.operators
        ])
        self.network = network

    def plan_for_load(self, load_target: float,
                      queue_depths: Dict[str, int]) -> SheddingPlan:
        """Cheapest plan shedding ~``load_target`` CPU seconds from queues.

        Walks the roadmap in loss/gain order, taking as many queued victims
        at each location as needed (bounded by the queue depth there).
        """
        if load_target < 0:
            raise SheddingError(f"negative load target {load_target}")
        plan = SheddingPlan()
        remaining = load_target
        for loc in self.locations:
            if remaining <= 0:
                break
            if loc.gain <= 0:
                continue
            available = queue_depths.get(loc.operator, 0)
            if available <= 0:
                continue
            want = int(remaining // loc.gain) + 1
            take = min(want, available)
            plan.add(loc, take)
            remaining -= take * loc.gain
        return plan

    def best_location(self) -> DropLocation:
        """The single cheapest place to shed (head of the roadmap)."""
        return self.locations[0]


class LsrmShedder(LoadShedder):
    """Executes LSRM plans against a live engine."""

    def __init__(self, engine: Engine,
                 rng: Optional[random.Random] = None,
                 selectivities: Optional[Dict[str, float]] = None):
        super().__init__(rng)
        self.engine = engine
        self.roadmap = LoadSheddingRoadmap(engine.network, selectivities)
        self.load_shed_total = 0.0

    def refresh(self) -> None:
        """Rebuild the roadmap from current observed selectivities."""
        self.roadmap = LoadSheddingRoadmap(self.engine.network)

    def shed_load(self, load_target: float) -> float:
        """Shed ~``load_target`` CPU seconds, minimizing result loss."""
        depths = {name: len(q) for name, q in self.engine.queues.items()}
        plan = self.roadmap.plan_for_load(load_target, depths)
        saved = 0.0
        multiplier = self.engine.cost_multiplier(self.engine.now)
        gains = {loc.operator: loc.gain for loc in self.roadmap.locations}
        for op_name, count in plan.drops.items():
            got = self.engine.shed_queue_count(
                op_name, count, reason="load", shedder=type(self).__name__,
                alpha=self.trace_alpha)
            self.dropped_total += got
            saved += gains[op_name] * multiplier * got
        self.load_shed_total += saved
        return saved

    def shed_tuples(self, count: int) -> int:
        """Tuple-count interface: converts to load via the mean coefficient."""
        if count < 0:
            raise SheddingError("shed count must be non-negative")
        if count == 0:
            return 0
        shed = 0
        for loc in self.roadmap.locations:
            if shed >= count:
                break
            available = len(self.engine.queues[loc.operator])
            take = min(count - shed, available)
            if take > 0:
                got = self.engine.shed_queue_count(
                    loc.operator, take, reason="cull",
                    shedder=type(self).__name__, alpha=self.trace_alpha)
                shed += got
                self.dropped_total += got
        return shed

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        surplus = (self.engine.queued_tuples + expected_inflow) - tuples_allowed
        self.offered_total += int(round(expected_inflow))
        if surplus > 0:
            self.shed_tuples(int(round(surplus)))
