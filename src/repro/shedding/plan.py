"""Shedding-plan data structures.

A :class:`DropLocation` is one place in the query network where load can be
discarded, annotated with the two quantities Aurora's Load Shedding Roadmap
(LSRM) ranks locations by:

* **gain** — CPU load saved per tuple dropped there (the location's load
  coefficient: its own cost plus selectivity-weighted downstream cost);
* **loss** — query results lost per tuple dropped there (expected number of
  network outputs the tuple would have produced).

A :class:`SheddingPlan` is a concrete assignment of drop counts to
locations, totalling a given saved load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import SheddingError


@dataclass(frozen=True)
class DropLocation:
    """A candidate drop point (in front of operator ``operator``)."""

    operator: str
    gain: float   # CPU seconds saved per dropped tuple
    loss: float   # expected output tuples lost per dropped tuple

    @property
    def loss_gain_ratio(self) -> float:
        """Utility lost per unit of load saved (lower = better place to shed)."""
        if self.gain <= 0:
            return float("inf")
        return self.loss / self.gain


@dataclass
class SheddingPlan:
    """Per-location drop counts for one shedding action."""

    drops: Dict[str, int] = field(default_factory=dict)
    load_saved: float = 0.0
    outputs_lost: float = 0.0

    def add(self, location: DropLocation, count: int) -> None:
        if count < 0:
            raise SheddingError("drop count must be non-negative")
        if count == 0:
            return
        self.drops[location.operator] = self.drops.get(location.operator, 0) + count
        self.load_saved += location.gain * count
        self.outputs_lost += location.loss * count

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def __bool__(self) -> bool:
        return bool(self.drops)


def rank_locations(locations: List[DropLocation]) -> List[DropLocation]:
    """LSRM ordering: ascending loss/gain, ties broken by larger gain."""
    return sorted(locations, key=lambda l: (l.loss_gain_ratio, -l.gain))
