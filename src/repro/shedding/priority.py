"""Priority-aware shedding across multiple streams.

The paper's Section 6 proposes "heterogeneous quality guarantees for
streams with different priorities" as an extension. This shedder takes the
single aggregate allowance the controller produces and splits it across
named sources by strict priority with *water-filling*: high-priority
streams are admitted in full while any allowance remains; the drop burden
falls on the lowest priorities first. Within one priority class the
residual allowance is shared proportionally (a per-class coin flip).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import SheddingError
from .base import LoadShedder


class PriorityEntryShedder(LoadShedder):
    """Strict-priority admission control over multiple sources.

    ``priorities`` maps source name to a numeric priority (higher = more
    important). Expected per-source inflows are tracked from the observed
    mix of the previous period.
    """

    def __init__(self, priorities: Dict[str, float],
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if not priorities:
            raise SheddingError("need at least one source priority")
        self.priorities = dict(priorities)
        #: per-source admit probability for the current period
        self.admit_probability: Dict[str, float] = {
            name: 1.0 for name in priorities
        }
        self._seen_this_period: Dict[str, int] = {n: 0 for n in priorities}
        self._seen_last_period: Dict[str, int] = {n: 0 for n in priorities}
        self.dropped_by_source: Dict[str, int] = {n: 0 for n in priorities}
        self.offered_by_source: Dict[str, int] = {n: 0 for n in priorities}

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        """Water-fill the aggregate allowance down the priority order.

        The per-source inflow expectation is last period's observed count,
        rescaled so the mix sums to ``expected_inflow`` (the aggregate
        estimate the control loop supplies).
        """
        self._seen_last_period = dict(self._seen_this_period)
        self._seen_this_period = {n: 0 for n in self.priorities}
        mix_total = sum(self._seen_last_period.values())
        if mix_total <= 0:
            # no history: assume a uniform mix
            share = {n: 1.0 / len(self.priorities) for n in self.priorities}
        else:
            share = {n: c / mix_total
                     for n, c in self._seen_last_period.items()}
        expected = {n: share[n] * max(expected_inflow, 0.0)
                    for n in self.priorities}
        remaining = max(tuples_allowed, 0.0)
        # admit in descending priority; ties share proportionally
        for prio in sorted(set(self.priorities.values()), reverse=True):
            klass = [n for n, p in self.priorities.items() if p == prio]
            demand = sum(expected[n] for n in klass)
            if demand <= 0:
                for n in klass:
                    self.admit_probability[n] = 1.0
                continue
            if remaining >= demand:
                for n in klass:
                    self.admit_probability[n] = 1.0
                remaining -= demand
            else:
                fraction = remaining / demand
                for n in klass:
                    self.admit_probability[n] = fraction
                remaining = 0.0

    def admit(self, source: str = "") -> bool:
        """Per-source coin flip with the water-filled probability."""
        if source not in self.priorities:
            raise SheddingError(f"unknown source {source!r}")
        self.offered_total += 1
        self.offered_by_source[source] += 1
        self._seen_this_period[source] += 1
        p = self.admit_probability[source]
        if p >= 1.0 or self.rng.random() < p:
            return True
        self.dropped_total += 1
        self.dropped_by_source[source] += 1
        return False

    def loss_by_source(self) -> Dict[str, float]:
        """Per-source realized loss ratios."""
        out = {}
        for name in self.priorities:
            offered = self.offered_by_source[name]
            out[name] = (self.dropped_by_source[name] / offered
                         if offered else 0.0)
        return out
