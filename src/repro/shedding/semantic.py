"""Semantic (value-based) load shedding.

Besides statistical shedding that discards tuples randomly, the Aurora
work the paper builds on also explores *semantic* shedding that chooses
victim tuples based on a utility analysis (paper Section 2). This module
implements the entry-point variant: a user-supplied utility function maps
tuple values to a utility score, and when a fraction ``alpha`` of the
input must be shed, the shedder drops the tuples whose utility falls below
the running ``alpha``-quantile — preserving the most valuable data at the
same loss ratio as the statistical coin flip.

The quantile is tracked over a sliding reservoir of recent scores, so the
threshold adapts to drifting value distributions.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..errors import SheddingError
from .base import LoadShedder, drop_probability

UtilityFn = Callable[[Tuple], float]


class StreamingQuantile:
    """Sliding-window quantile estimate over the last ``window`` samples."""

    def __init__(self, window: int = 512):
        if window < 8:
            raise SheddingError("quantile window must be at least 8")
        self._samples: Deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile of the window, or None before any data."""
        if not 0.0 <= q <= 1.0:
            raise SheddingError(f"quantile {q} outside [0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def __len__(self) -> int:
        return len(self._samples)


class SemanticEntryShedder(LoadShedder):
    """Utility-ordered admission control at the stream entry.

    Given the same per-period allowance as the statistical
    :class:`~repro.shedding.entry.EntryShedder`, this shedder drops the
    *least useful* tuples instead of random ones: a tuple is dropped when
    its utility is below the running alpha-quantile of recent utilities.
    A small dithering band (±``dither``) around the threshold is resolved
    by a coin flip so the realized drop rate matches alpha even when many
    tuples share the same utility.
    """

    def __init__(self, utility: UtilityFn,
                 window: int = 512,
                 dither: float = 0.02,
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if dither < 0:
            raise SheddingError("dither must be non-negative")
        self.utility = utility
        self.alpha = 0.0
        self.dither = dither
        self._quantile = StreamingQuantile(window)
        #: total utility of admitted vs offered tuples (quality accounting)
        self.utility_admitted = 0.0
        self.utility_offered = 0.0

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        self.alpha = drop_probability(tuples_allowed, expected_inflow)

    def admit(self, values: Tuple = ()) -> bool:
        """Value-aware admission decision for one arriving tuple."""
        self.offered_total += 1
        score = float(self.utility(values))
        self.utility_offered += score
        self._quantile.add(score)
        if self.alpha <= 0.0:
            self.utility_admitted += score
            return True
        if self.alpha >= 1.0:
            self.dropped_total += 1
            return False
        threshold = self._quantile.quantile(self.alpha)
        if threshold is None:
            # no history yet: fall back to the statistical coin
            drop = self.rng.random() < self.alpha
        elif score < threshold - self.dither:
            drop = True
        elif score > threshold + self.dither:
            drop = False
        else:
            drop = self.rng.random() < self.alpha
        if drop:
            self.dropped_total += 1
            return False
        self.utility_admitted += score
        return True

    @property
    def utility_retention(self) -> float:
        """Fraction of offered utility that survived shedding."""
        if self.utility_offered == 0:
            return 1.0
        return self.utility_admitted / self.utility_offered
