"""Entry-point load shedder (the paper's first actuator, Section 4.5.2).

Treats the DSMS as a black box: each arriving tuple is admitted with
probability ``1 - alpha`` where ``alpha`` is recomputed every control period
from the controller's desired inflow (Eq. 13). Dropped tuples never enter
the query network.
"""

from __future__ import annotations

import random
from typing import Optional

from .base import LoadShedder, drop_probability


class EntryShedder(LoadShedder):
    """Coin-flip admission control in front of the engine."""

    def __init__(self, rng: Optional[random.Random] = None):
        super().__init__(rng)
        self.alpha = 0.0

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        self.alpha = drop_probability(tuples_allowed, expected_inflow)

    def admit(self) -> bool:
        """Flip the unfair coin for one arriving tuple."""
        self.offered_total += 1
        if self.alpha > 0.0 and self.rng.random() < self.alpha:
            self.dropped_total += 1
            return False
        return True
