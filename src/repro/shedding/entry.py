"""Entry-point load shedder (the paper's first actuator, Section 4.5.2).

Treats the DSMS as a black box: each arriving tuple is admitted with
probability ``1 - alpha`` where ``alpha`` is recomputed every control period
from the controller's desired inflow (Eq. 13). Dropped tuples never enter
the query network.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import SheddingError
from .base import LoadShedder, drop_probability


class EntryShedder(LoadShedder):
    """Coin-flip admission control in front of the engine."""

    def __init__(self, rng: Optional[random.Random] = None):
        super().__init__(rng)
        self.alpha = 0.0

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        self.alpha = drop_probability(tuples_allowed, expected_inflow)

    def admit(self) -> bool:
        """Flip the unfair coin for one arriving tuple."""
        self.offered_total += 1
        if self.alpha > 0.0 and self.rng.random() < self.alpha:
            self.dropped_total += 1
            return False
        return True


class BoundedEntryShedder(EntryShedder):
    """An entry shedder whose drop probability can be capped externally.

    The sharded service layer runs one of these per shard: each shard's
    controller requests a drop probability via :meth:`set_allowance` as
    usual, and the global coordinator may then *cap* it so the fleet's
    aggregate expected loss stays within a configured bound (a loss SLA
    reconciled across shards each control period). ``requested_alpha``
    keeps the controller's uncapped demand so the coordinator can allocate
    the global drop budget proportionally to demand.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 alpha_cap: float = 1.0):
        super().__init__(rng)
        if not 0.0 <= alpha_cap <= 1.0:
            raise SheddingError(f"alpha cap {alpha_cap} outside [0, 1]")
        self.alpha_cap = alpha_cap
        #: the controller's uncapped drop probability for the coming period
        self.requested_alpha = 0.0

    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        self.requested_alpha = drop_probability(tuples_allowed, expected_inflow)
        self.alpha = min(self.requested_alpha, self.alpha_cap)

    def cap(self, alpha_cap: float) -> None:
        """Tighten (or relax) the cap; applies to the armed period too."""
        if not 0.0 <= alpha_cap <= 1.0:
            raise SheddingError(f"alpha cap {alpha_cap} outside [0, 1]")
        self.alpha_cap = alpha_cap
        self.alpha = min(self.requested_alpha, self.alpha_cap)
