"""Load-shedder (actuator) interface.

A load shedder is the control loop's *actuator* (paper Fig. 3): given the
controller's desired admissions for the next period, it discards load so the
engine receives approximately that amount. The paper studies two
realizations (Section 4.5.2):

* shedding *intact* tuples at the stream entry (:class:`EntryShedder` —
  Eq. 13's coin flip), and
* shedding *partially processed* tuples from queues inside the network
  (:class:`~repro.shedding.queue_shedder.QueueShedder`, plus the
  LSRM-optimized :class:`~repro.shedding.lsrm.LsrmShedder`),

and argues they are equivalent for delay control because the model depends
only on the outstanding load, not on where it is discarded.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..errors import SheddingError


class LoadShedder(abc.ABC):
    """Turns a desired admission count into actual drops."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)
        #: tuples deliberately discarded so far
        self.dropped_total = 0
        #: tuples offered to the shedder so far (entry shedders only)
        self.offered_total = 0
        #: drop probability in force, stamped by the owning actuator each
        #: period so per-tuple shed traces can record it (observability
        #: only — never read by the shedding logic itself)
        self.trace_alpha = 0.0

    @abc.abstractmethod
    def set_allowance(self, tuples_allowed: float, expected_inflow: float) -> None:
        """Configure shedding for the next control period.

        ``tuples_allowed`` is the controller's desired number of admissions
        during the next period (``v(k) * T``); ``expected_inflow`` is the
        estimate of how many tuples will arrive (the paper uses the current
        period's count, ``fin(k)``, for ``fin(k+1)``).
        """

    @property
    def loss_ratio(self) -> float:
        """Fraction of offered tuples dropped so far."""
        if self.offered_total == 0:
            return 0.0
        return self.dropped_total / self.offered_total


def drop_probability(tuples_allowed: float, expected_inflow: float) -> float:
    """The paper's Eq. 13: ``alpha = 1 - v(k)/fin(k+1)``, clamped to [0, 1].

    The clamp is the actuator-saturation guard: the controller may ask for
    more admissions than will arrive (alpha < 0 -> admit everything) or for
    negative admissions (alpha > 1 -> drop everything).
    """
    if expected_inflow < 0:
        raise SheddingError(f"negative expected inflow {expected_inflow}")
    if expected_inflow == 0:
        return 0.0
    alpha = 1.0 - tuples_allowed / expected_inflow
    return min(1.0, max(0.0, alpha))
