"""Load-shedder substrate: entry coin-flip, in-network random, and LSRM."""

from .base import LoadShedder, drop_probability
from .entry import BoundedEntryShedder, EntryShedder
from .lsrm import LoadSheddingRoadmap, LsrmShedder, output_yield
from .plan import DropLocation, SheddingPlan, rank_locations
from .priority import PriorityEntryShedder
from .queue_shedder import QueueShedder
from .semantic import SemanticEntryShedder, StreamingQuantile

__all__ = [
    "BoundedEntryShedder",
    "DropLocation",
    "EntryShedder",
    "LoadShedder",
    "LoadSheddingRoadmap",
    "LsrmShedder",
    "PriorityEntryShedder",
    "QueueShedder",
    "SemanticEntryShedder",
    "SheddingPlan",
    "StreamingQuantile",
    "drop_probability",
    "output_yield",
    "rank_locations",
]
