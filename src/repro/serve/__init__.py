"""Real-time serving front-end: network ingestion + wall-clock control.

The rest of the reproduction runs the paper's experiments on a virtual
clock; this package recreates the paper's *deployment* scenario — a live
node where tuples arrive over a real TCP socket, control periods are
real seconds, and the feedback controller holds the delay target against
genuine overload:

* :mod:`repro.serve.protocol` — the newline-framed wire format
  (JSON lines with a bare-CSV fallback),
* :mod:`repro.serve.ingest` — the asyncio TCP ingestion server and the
  arrival buffer that timestamps tuples on arrival,
* :mod:`repro.serve.live` — :class:`LiveRunner`, the wall-clock driver
  that ticks ``ControlLoop.run_period`` on timer boundaries, plus
  :func:`build_live_runner` to assemble a full live node from an
  :class:`~repro.experiments.config.ExperimentConfig`, and
  :class:`LiveService` / :func:`build_live_service` — the multi-shard
  variant that routes socket tuples through the service layer's
  versioned :class:`~repro.service.router.RoutingTable`, so live
  sources can be *migrated* between shards mid-run without clients
  reconnecting.

Pair with :mod:`repro.workloads.replay` to blast a recorded trace at the
socket at 1x…1000x speed.
"""

from .ingest import IngestBuffer, IngestServer, IngestStatsSnapshot
from .live import LiveRunner, LiveService, build_live_runner, build_live_service
from .protocol import MAX_LINE_BYTES, decode_line, encode_tuple

__all__ = [
    "IngestBuffer",
    "IngestServer",
    "IngestStatsSnapshot",
    "LiveRunner",
    "LiveService",
    "MAX_LINE_BYTES",
    "build_live_runner",
    "build_live_service",
    "decode_line",
    "encode_tuple",
]
