"""Asyncio TCP ingestion front-end and the arrival buffer behind it.

Tuples arrive over the network, get **timestamped on arrival** against
the run's :class:`~repro.core.clock.WallClock`, and wait in an
:class:`IngestBuffer` until the live runner's next control-period
boundary drains everything stamped before that boundary into
``ControlLoop.run_period``.

Design constraints that shaped this module:

* The arrival stamp is taken *inside* ``IngestBuffer.push`` under the
  buffer lock — two asyncio connection handlers interleaving a
  stamp-then-append sequence could otherwise enqueue out of time order,
  which the engine's arrival-ordering check rightly rejects.
* The buffer is bounded. When the replay generator outruns even the
  shedder's admission capacity, the *front door* drops (counted in
  ``dropped``) rather than growing without bound — exactly the
  "load shedding starts at the socket" posture of a production node.
* The asyncio loop runs on a dedicated daemon thread so the serving
  stack composes with the rest of the repo (plain-threaded control
  loop, stdlib HTTP observability server) without an async rewrite.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.clock import Clock
from ..errors import ServeError
from .protocol import MAX_LINE_BYTES, decode_line

#: one buffered arrival: (arrival time, values, source) — matches the
#: ``repro.workloads`` Arrival triple so run_period takes it unchanged
Arrival = Tuple[float, Tuple, str]


@dataclass(frozen=True)
class IngestStatsSnapshot:
    """Monotonic ingestion counters at one instant (thread-safe copy)."""

    accepted: int          # tuples stamped and buffered
    dropped: int           # tuples refused because the buffer was full
    malformed: int         # lines that failed to decode
    bytes_read: int        # raw bytes read off all sockets
    connections: int       # connections accepted over the server's life
    open_connections: int  # currently-open connections
    skew_last: float       # last observed (arrival - sender 't') seconds
    skew_max: float        # max observed skew


class IngestBuffer:
    """Bounded, time-stamping arrival queue between sockets and the loop."""

    def __init__(self, clock: Clock, maxlen: int = 100_000):
        if maxlen <= 0:
            raise ServeError(f"IngestBuffer maxlen must be positive: {maxlen}")
        self.clock = clock
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._items: List[Arrival] = []
        self.accepted = 0
        self.dropped = 0
        #: optional repro.obs.tuptrace.TupleTracer — front-door drops then
        #: leave a sampled "buffer_full" shed span so drop_audit can explain
        #: tuples that never reached the control loop
        self.tuple_tracer = None

    def push(self, values: Tuple, source: str) -> bool:
        """Stamp ``values`` with the clock's *now* and buffer it.

        Returns False (and counts a drop) when the buffer is full.
        """
        with self._lock:
            if len(self._items) >= self.maxlen:
                self.dropped += 1
                ttr = self.tuple_tracer
                if ttr is not None:
                    ttr.on_ingest_drop(self.clock.now(), source)
                return False
            self._items.append((self.clock.now(), values, source))
            self.accepted += 1
            return True

    def drain_until(self, boundary: float) -> List[Arrival]:
        """Remove and return every arrival stamped strictly before ``boundary``.

        Arrivals are appended in stamp order (the stamp is taken under
        this lock), so the prefix split preserves time order — the
        engine's submit-ordering invariant holds by construction.
        """
        with self._lock:
            cut = 0
            for cut, (t, _, _) in enumerate(self._items):
                if t >= boundary:
                    break
            else:
                cut = len(self._items)
            due, self._items = self._items[:cut], self._items[cut:]
            return due

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class IngestServer:
    """Asyncio TCP acceptor feeding an :class:`IngestBuffer`.

    Runs its event loop on a background daemon thread. ``start()``
    blocks until the socket is bound (so ``port`` is readable
    immediately, including when requested as 0 = ephemeral); ``stop()``
    closes the listener and every live client connection, then joins
    the thread.
    """

    def __init__(self, buffer: IngestBuffer, host: str = "127.0.0.1",
                 port: int = 0, default_source: str = "live"):
        self.buffer = buffer
        self.host = host
        self.port = port
        self.default_source = default_source
        self.malformed = 0
        self.bytes_read = 0
        self.connections = 0
        self.open_connections = 0
        self.skew_last = 0.0
        self.skew_max = 0.0
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._writers: set = set()

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise ServeError("IngestServer already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-ingest", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise ServeError("ingest server failed to start within 10s")
        if self._startup_error is not None:
            raise ServeError(
                f"ingest server failed to bind {self.host}:{self.port}: "
                f"{self._startup_error}")

    def stop(self) -> None:
        """Close listener + clients and join the server thread. Idempotent."""
        loop, thread = self._loop, self._thread
        if loop is not None and self._stop_async is not None:
            try:
                loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:
                pass  # loop already closed
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        self._loop = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except Exception as exc:  # bind failures surface via start()
            self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=MAX_LINE_BYTES + 2)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._writers):
                writer.close()

    # -- per-connection ----------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        self.open_connections += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.malformed += 1
                    break  # unframed garbage: cut the connection
                if not line:
                    break
                self.bytes_read += len(line)
                try:
                    values, source, sent = decode_line(
                        line, self.default_source)
                except ServeError:
                    self.malformed += 1
                    continue
                if sent is not None:
                    skew = time.time() - sent
                    self.skew_last = skew
                    if skew > self.skew_max:
                        self.skew_max = skew
                self.buffer.push(values, source)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # server teardown cancelled a mid-read handler; suppressing
            # lets the task finish cleanly (no "exception never retrieved"
            # noise from the streams machinery) — we are exiting anyway
            pass
        finally:
            self.open_connections -= 1
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # -- introspection -----------------------------------------------

    def snapshot(self) -> IngestStatsSnapshot:
        """Copy the counters (buffer's + socket-side) at this instant."""
        return IngestStatsSnapshot(
            accepted=self.buffer.accepted,
            dropped=self.buffer.dropped,
            malformed=self.malformed,
            bytes_read=self.bytes_read,
            connections=self.connections,
            open_connections=self.open_connections,
            skew_last=self.skew_last,
            skew_max=self.skew_max,
        )
