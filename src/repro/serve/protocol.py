"""Newline-framed wire protocol for the ingestion front-end.

One tuple per line, two accepted shapes:

* **JSON object** — ``{"v": [430, 212, 317], "s": "bike", "t": 1754650000.1}``
  where ``v`` is the tuple's value list (required), ``s`` an optional
  source/stream name, and ``t`` an optional sender-side epoch timestamp
  (``time.time()``) used to measure arrival skew.
* **Bare CSV** — ``430,212,317`` — values only, attributed to the
  connection's default source. This is the lowest-friction path: a
  Citi-Bike CSV row can be piped at the socket with ``nc`` alone.

Arrival timestamps are **always assigned server-side** on arrival (the
paper's monitor measures queueing delay from arrival at the node, and a
client-supplied clock can't be trusted); ``t`` only feeds the skew
gauge, never the control loop.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from ..errors import ServeError

#: hard cap on one framed line; longer lines are malformed by definition
#: (protects the server from an unframed or hostile client)
MAX_LINE_BYTES = 64 * 1024


def encode_tuple(values: Tuple, source: Optional[str] = None,
                 sent: Optional[float] = None) -> bytes:
    """Frame one tuple as a JSON line (trailing newline included)."""
    doc = {"v": list(values)}
    if source is not None:
        doc["s"] = source
    if sent is not None:
        doc["t"] = sent
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def _csv_values(text: str) -> Tuple:
    values = []
    for field in text.split(","):
        field = field.strip()
        try:
            values.append(int(field))
        except ValueError:
            try:
                values.append(float(field))
            except ValueError:
                values.append(field)
    return tuple(values)


def decode_line(line: bytes, default_source: str = "live",
                ) -> Tuple[Tuple, str, Optional[float]]:
    """Parse one framed line into ``(values, source, sent_epoch)``.

    Raises :class:`~repro.errors.ServeError` on malformed input (caller
    counts it and keeps the connection alive — one bad line must not
    drop a client).
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"line exceeds {MAX_LINE_BYTES} bytes")
    text = line.decode("utf-8", errors="strict").strip() \
        if isinstance(line, bytes) else str(line).strip()
    if not text:
        raise ServeError("empty line")
    if text[0] == "{":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeError(f"bad JSON frame: {exc}") from exc
        if not isinstance(doc, dict) or "v" not in doc:
            raise ServeError("JSON frame must be an object with a 'v' list")
        values = doc["v"]
        if not isinstance(values, list):
            raise ServeError("'v' must be a list")
        source = doc.get("s", default_source)
        if not isinstance(source, str) or not source:
            raise ServeError("'s' must be a non-empty string")
        sent = doc.get("t")
        if sent is not None and not isinstance(sent, (int, float)):
            raise ServeError("'t' must be a number (epoch seconds)")
        return tuple(values), source, (float(sent) if sent is not None
                                       else None)
    return _csv_values(text), default_source, None
