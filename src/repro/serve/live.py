"""The wall-clock control loop driver: the paper's deployment, live.

:class:`LiveRunner` turns an ordinary :class:`~repro.core.ControlLoop`
into a real-time serving node. A ticker thread sleeps to each period
boundary ``(k+1)·T`` on a :class:`~repro.core.clock.WallClock`, drains
the :class:`~repro.serve.ingest.IngestBuffer` of every tuple stamped
before the boundary, and hands them to ``ControlLoop.run_period`` — the
same per-period body every virtual experiment runs, now clocked by real
seconds. Arrival timestamps are wall seconds-since-start, so they land
directly on the engine's virtual time axis and the Fig. 3 feedback
(q(k), c(k), ŷ(k)) is computed over *real* queueing.

The engine stays a virtual-capacity simulator: ``run_until(boundary)``
executes instantly in wall time, but its queue builds exactly when the
socket's offered rate exceeds ``H/c`` tuples/s — so overload, shedding
and delay regulation are all faithful without burning a real CPU per
tuple, and the entry actuator bounds per-tick work to roughly
``capacity × T`` tuples however hard the socket is blasted.

:func:`build_live_runner` assembles the whole node (engine + monitor +
controller + actuator via :func:`~repro.service.shard.build_shard`) from
an :class:`~repro.experiments.config.ExperimentConfig`.
"""

from __future__ import annotations

import signal
import threading
import time as _time
from typing import Dict, List, Optional, Sequence

from ..core.clock import Clock, WallClock
from ..core.loop import ControlLoop
from ..errors import ServeError
from ..metrics.recorder import PeriodRecord, RunRecord
from ..obs.bus import get_bus
from ..obs.events import IngestStats
from ..obs.flight import FlightRecorder
from ..obs.health import HealthMonitor
from ..obs.sysid import SysIdMonitor
from .ingest import IngestBuffer, IngestServer


class LiveRunner:
    """Drives one control loop on wall-clock periods, fed by a socket.

    Lifecycle: :meth:`start` binds the ingest socket (and optionally an
    :class:`~repro.obs.serve.ObsServer`), anchors the clock and launches
    the ticker; :meth:`wait` blocks until ``max_periods`` have closed or
    :meth:`stop` is called; :meth:`stop` joins the ticker, runs the
    loop's virtual end-of-run drain, closes every socket, and returns
    the finished :class:`~repro.metrics.recorder.RunRecord`.
    """

    def __init__(self, loop: ControlLoop,
                 entry_source: str = "in",
                 clock: Optional[Clock] = None,
                 host: str = "127.0.0.1",
                 ingest_port: int = 0,
                 buffer_maxlen: int = 100_000,
                 default_source: str = "live",
                 serve: bool = False,
                 serve_port: Optional[int] = None,
                 max_periods: Optional[int] = None,
                 shard: Optional[str] = None,
                 sysid: bool = False,
                 flight: int = 0,
                 flight_dir: str = "incidents"):
        if max_periods is not None and max_periods <= 0:
            raise ServeError(f"max_periods must be positive: {max_periods}")
        self.loop = loop
        self.entry_source = entry_source
        self.clock = clock if clock is not None else WallClock()
        self.buffer = IngestBuffer(self.clock, maxlen=buffer_maxlen)
        self.ingest = IngestServer(self.buffer, host=host, port=ingest_port,
                                   default_source=default_source)
        self.serve = serve
        self.serve_port = serve_port
        #: the live ObsServer while serving; None otherwise
        self.obs_server = None
        self.max_periods = max_periods
        self.shard = shard
        #: live observers over the loop's bus. A live run depends on real
        #: arrival timing, so its bundles carry no replay spec — ``flight
        #: replay`` reports them as not replayable rather than guessing.
        self.sysid_monitor = None
        self.flight_recorder = None
        self._health_monitor = None
        if sysid or flight > 0:
            obs_bus = self.loop.bus if self.loop.bus else get_bus()
            self.loop.bus = obs_bus
            if sysid:
                self.sysid_monitor = SysIdMonitor(obs_bus)
            if flight > 0:
                self.flight_recorder = FlightRecorder(
                    obs_bus, ring=flight, directory=flight_dir,
                    runtime="live", status_fn=self.status)
                self._health_monitor = HealthMonitor(obs_bus)
                self.flight_recorder.watch(self._health_monitor)
        self.record: Optional[RunRecord] = None
        self._last: Optional[PeriodRecord] = None
        self._jitter = 0.0
        self._periods_done = 0
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._finished = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def ingest_port(self) -> int:
        """The bound TCP port tuples should be sent to."""
        return self.ingest.port

    def start(self) -> "LiveRunner":
        if self._ticker is not None:
            raise ServeError("LiveRunner already started")
        if self.serve:
            from ..obs.serve import ObsServer  # lazy: serving is opt-in
            self.obs_server = ObsServer(port=self.serve_port,
                                        bus=self.loop.bus,
                                        status_fn=self.status,
                                        flight=self.flight_recorder).start()
        self.ingest.start()
        # front-door drops show up in the sampled tuple traces too
        self.buffer.tuple_tracer = self.loop.tuple_tracer
        # the monitor stamps measurements with wall time from here on
        self.loop.monitor.clock = self.clock
        self.record = self.loop.begin()
        self.clock.start()  # period 0 begins *now*; arrivals stamp >= 0
        self._ticker = threading.Thread(
            target=self._run_ticker, name="repro-live-ticker", daemon=True)
        self._ticker.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticker exits (max_periods or stop). True if it did."""
        if self._ticker is None:
            return True
        self._ticker.join(timeout=timeout)
        return not self._ticker.is_alive()

    def stop(self, drain: bool = True) -> RunRecord:
        """Stop ticking, close the run record, shut every socket. Idempotent.

        ``drain=True`` runs the loop's usual end-of-run *virtual* drain so
        every delivered tuple's delay is resolved into the record.
        """
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=max(10.0, 3 * self.loop.period))
        with self._lock:
            if not self._finished:
                self._finished = True
                if drain:
                    self.loop.finish(self.record, self._periods_done)
                else:
                    self.record.duration = (
                        self._periods_done * self.loop.period)
        self.ingest.stop()
        if self.obs_server is not None:
            self.obs_server.stop()
            self.obs_server = None
        if self._health_monitor is not None:
            self._health_monitor.finalize()
            self._health_monitor.close()
        if self.sysid_monitor is not None:
            self.sysid_monitor.close()
        if self.flight_recorder is not None:
            self.flight_recorder.close()
        return self.record

    def handle_signals(self) -> None:
        """Route SIGINT/SIGTERM to a clean stop (call from the main thread).

        The first signal requests a graceful stop; the previous handlers
        are restored immediately after, so a second Ctrl-C still kills a
        process wedged in teardown. With a flight recorder attached,
        ``SIGUSR2`` dumps an incident bundle without stopping anything.
        """
        if self.flight_recorder is not None:
            self.flight_recorder.handle_signals()
        previous = {}

        def _on_signal(signum, frame):
            self._stop.set()
            for sig, handler in previous.items():
                try:
                    signal.signal(sig, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass

    def __enter__(self) -> "LiveRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the ticker: one run_period call per wall-clock boundary
    # ------------------------------------------------------------------ #
    def _run_ticker(self) -> None:
        loop, buffer, clock = self.loop, self.buffer, self.clock
        prev = self.ingest.snapshot()
        k = 0
        while not self._stop.is_set():
            if self.max_periods is not None and k >= self.max_periods:
                break
            boundary = (k + 1) * loop.period
            late = clock.wait_until(boundary, self._stop)
            if clock.now() < boundary:
                break  # stop fired mid-period; k never closed
            self._jitter = max(late, 0.0)
            tracer = loop.tracer
            if tracer is not None:
                # the buffer drain happens before run_period opens the
                # period; PeriodTracer.add charges it to the run totals so
                # live flame summaries still account for ingest time
                mark = _time.perf_counter()
                due = buffer.drain_until(boundary)
                tracer.add("ingest", _time.perf_counter() - mark)
            else:
                due = buffer.drain_until(boundary)
            snap = self.ingest.snapshot()
            bus = loop.bus
            if bus:
                bus.emit(IngestStats(
                    k=k,
                    accepted=snap.accepted - prev.accepted,
                    dropped=snap.dropped - prev.dropped,
                    malformed=snap.malformed - prev.malformed,
                    bytes_read=snap.bytes_read - prev.bytes_read,
                    connections=snap.open_connections,
                    rate=(snap.accepted - prev.accepted) / loop.period,
                    skew=snap.skew_last,
                    jitter=self._jitter,
                    buffered=len(buffer),
                    shard=self.shard,
                ))
            prev = snap
            # logical source names are a routing concept; tuples enter the
            # query network at the shard's one physical entry source
            arrivals = [(t, values, self.entry_source)
                        for t, values, _ in due]
            last = loop.run_period(self.record, k, arrivals)
            with self._lock:
                self._last = last
                self._periods_done = k + 1
            k += 1

    # ------------------------------------------------------------------ #
    # live introspection (the ObsServer's ``/status`` "service" view)
    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """A JSON-able snapshot of the live node right now."""
        snap = self.ingest.snapshot()
        with self._lock:
            last = self._last
            done = self._periods_done
        doc = {
            "mode": "live",
            "running": (self._ticker is not None and self._ticker.is_alive()),
            "clock": round(self.clock.now(), 3) if self.clock else None,
            "period": self.loop.period,
            "periods_done": done,
            "ingest_port": self.ingest.port,
            "tick_jitter": round(self._jitter, 4),
            "ingest": {
                "accepted": snap.accepted,
                "dropped": snap.dropped,
                "malformed": snap.malformed,
                "bytes_read": snap.bytes_read,
                "connections": snap.open_connections,
                "buffered": len(self.buffer),
                "skew_last": round(snap.skew_last, 4),
            },
        }
        if last is not None:
            doc.update({
                "k": last.k,
                "delay_estimate": last.delay_estimate,
                "target": last.target,
                "queue_length": last.queue_length,
                "alpha": last.alpha,
                "offered": last.offered,
                "admitted": last.admitted,
            })
        return doc


class LiveService:
    """N live shards behind one ingest socket, routed through one table.

    The real-time counterpart of
    :class:`~repro.service.service.StreamService`: one ticker thread
    drains the shared :class:`~repro.serve.ingest.IngestBuffer` at every
    wall-clock period boundary, routes each tuple through the service
    layer's versioned :class:`~repro.service.router.RoutingTable` by its
    wire-protocol ``source`` field, steps every shard's control loop, and
    lets the :class:`~repro.service.coordinator.HeadroomCoordinator`
    rebalance — including executing a planned source *migration*
    (drain -> cutover -> re-pin). Because routing happens per tick
    against the live table, socket tuples follow a migrated source to
    its new shard without clients reconnecting: senders keep writing the
    same source name to the same socket and only the table entry moves.
    """

    def __init__(self, shards: Sequence, table,
                 coordinator,
                 clock: Optional[Clock] = None,
                 host: str = "127.0.0.1",
                 ingest_port: int = 0,
                 buffer_maxlen: int = 100_000,
                 default_source: str = "live",
                 bus=None,
                 serve: bool = False,
                 serve_port: Optional[int] = None,
                 max_periods: Optional[int] = None,
                 sysid: bool = False,
                 flight: int = 0,
                 flight_dir: str = "incidents"):
        if not shards:
            raise ServeError("a live service needs at least one shard")
        if table.n_shards != len(shards):
            raise ServeError(
                f"routing table covers {table.n_shards} shards but the "
                f"service has {len(shards)}"
            )
        periods = {shard.loop.period for shard in shards}
        if len(periods) != 1:
            raise ServeError(
                f"all shards must share one control period, "
                f"got {sorted(periods)}"
            )
        if max_periods is not None and max_periods <= 0:
            raise ServeError(f"max_periods must be positive: {max_periods}")
        self.shards = list(shards)
        self.table = table
        self.coordinator = coordinator
        self.period = next(iter(periods))
        self.clock = clock if clock is not None else WallClock()
        self.buffer = IngestBuffer(self.clock, maxlen=buffer_maxlen)
        self.ingest = IngestServer(self.buffer, host=host, port=ingest_port,
                                   default_source=default_source)
        self.bus = bus if bus is not None else get_bus()
        for shard in self.shards:
            scoped = self.bus.scoped(shard.name)
            shard.loop.bus = scoped
            shard.engine.bus = scoped
        self.coordinator.bus = self.bus
        self.serve = serve
        self.serve_port = serve_port
        self.obs_server = None
        #: live observers (see :class:`LiveRunner`: live bundles carry no
        #: replay spec — real arrival timing is not reproducible)
        self.sysid = sysid
        self.sysid_monitor = SysIdMonitor(self.bus) if sysid else None
        self.flight_recorder = None
        self._health_monitor = None
        if flight > 0:
            self.flight_recorder = FlightRecorder(
                self.bus, ring=flight, directory=flight_dir,
                runtime="live", status_fn=self.status)
            self._health_monitor = HealthMonitor(self.bus)
            self.flight_recorder.watch(self._health_monitor)
        self.max_periods = max_periods
        self.records: Dict[str, RunRecord] = {}
        self._lasts: Dict[str, PeriodRecord] = {}
        self._jitter = 0.0
        self._periods_done = 0
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._finished = False
        self._lock = threading.Lock()
        self._records_list: List[RunRecord] = []
        self._wall_start = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def ingest_port(self) -> int:
        """The bound TCP port tuples should be sent to."""
        return self.ingest.port

    def start(self) -> "LiveService":
        if self._ticker is not None:
            raise ServeError("LiveService already started")
        if self.serve:
            from ..obs.serve import ObsServer  # lazy: serving is opt-in
            self.obs_server = ObsServer(port=self.serve_port, bus=self.bus,
                                        status_fn=self.status,
                                        flight=self.flight_recorder).start()
        if self.flight_recorder is not None:
            self.flight_recorder.handle_signals()
        self.ingest.start()
        # buffer-full drops happen before routing, so charge them to shard
        # 0's tracer (mirrors the service-wide "ingest" timing convention)
        self.buffer.tuple_tracer = self.shards[0].loop.tuple_tracer
        self._wall_start = _time.perf_counter()
        for shard in self.shards:
            shard.loop.monitor.clock = self.clock
            record = shard.loop.begin()
            self.records[shard.name] = record
            self._records_list.append(record)
        self.clock.start()
        self._ticker = threading.Thread(
            target=self._run_ticker, name="repro-live-service", daemon=True)
        self._ticker.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticker exits (max_periods or stop). True if it did."""
        if self._ticker is None:
            return True
        self._ticker.join(timeout=timeout)
        return not self._ticker.is_alive()

    def stop(self, drain: bool = True):
        """Stop ticking, close the records, shut every socket. Idempotent.

        Returns a :class:`~repro.service.service.ServiceResult` so live
        runs export/compare exactly like virtual-time service runs.
        """
        from ..service.service import ServiceResult  # lazy: package cycle
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=max(10.0, 3 * self.period))
        with self._lock:
            if not self._finished:
                self._finished = True
                for shard, record in zip(self.shards, self._records_list):
                    if drain:
                        shard.loop.finish(record, self._periods_done)
                    else:
                        record.duration = self._periods_done * self.period
        self.ingest.stop()
        if self.obs_server is not None:
            self.obs_server.stop()
            self.obs_server = None
        if self._health_monitor is not None:
            self._health_monitor.finalize()
            self._health_monitor.close()
        sysid_summary = None
        if self.sysid_monitor is not None:
            sysid_summary = self.sysid_monitor.summary()
            self.sysid_monitor.close()
        incidents = None
        if self.flight_recorder is not None:
            incidents = [str(p) for p in self.flight_recorder.incidents]
            self.flight_recorder.close()
        return ServiceResult(
            mode=self.coordinator.mode,
            base_target=self.shards[0].base_target,
            shard_records=dict(self.records),
            coordinator_history=list(self.coordinator.history),
            wall_seconds=_time.perf_counter() - self._wall_start,
            sysid=sysid_summary,
            incidents=incidents,
        )

    def __enter__(self) -> "LiveService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the ticker: route -> step every shard -> coordinate, per boundary
    # ------------------------------------------------------------------ #
    def _run_ticker(self) -> None:
        from ..service.service import execute_migration  # lazy: cycle
        buffer, clock = self.buffer, self.clock
        prev = self.ingest.snapshot()
        k = 0
        while not self._stop.is_set():
            if self.max_periods is not None and k >= self.max_periods:
                break
            boundary = (k + 1) * self.period
            late = clock.wait_until(boundary, self._stop)
            if clock.now() < boundary:
                break  # stop fired mid-period; k never closed
            self._jitter = max(late, 0.0)
            tracer = self.shards[0].loop.tracer
            if tracer is not None:
                # service-wide ingest work, charged once (to shard 0's
                # tracer) so merge_flames never double-counts the drain
                mark = _time.perf_counter()
                due = buffer.drain_until(boundary)
                tracer.add("ingest", _time.perf_counter() - mark)
            else:
                due = buffer.drain_until(boundary)
            snap = self.ingest.snapshot()
            if self.bus:
                self.bus.emit(IngestStats(
                    k=k,
                    accepted=snap.accepted - prev.accepted,
                    dropped=snap.dropped - prev.dropped,
                    malformed=snap.malformed - prev.malformed,
                    bytes_read=snap.bytes_read - prev.bytes_read,
                    connections=snap.open_connections,
                    rate=(snap.accepted - prev.accepted) / self.period,
                    skew=snap.skew_last,
                    jitter=self._jitter,
                    buffered=len(buffer),
                ))
            prev = snap
            # route by the *current* table: after a cutover the same
            # source name lands on its new shard from this tick on
            per_shard: List[List] = [[] for __ in self.shards]
            counts: Dict[str, int] = {}
            for t, values, source in due:
                per_shard[self.table.shard_of(source)].append((t, values))
                counts[source] = counts.get(source, 0) + 1
            closed = []
            for i, shard in enumerate(self.shards):
                arrivals = [(t, values, shard.entry_source)
                            for t, values in per_shard[i]]
                closed.append(shard.loop.run_period(
                    self.records[shard.name], k, arrivals))
            entry = self.coordinator.rebalance(k, self.shards, closed,
                                               source_counts=counts,
                                               table=self.table)
            plan = entry.get("migration")
            if plan is not None:
                # the drain advances *virtual* engine time only — in wall
                # time the cutover is instantaneous between two ticks
                execute_migration(k, plan, self.shards, self.table,
                                  bus=self.bus)
            with self._lock:
                for shard, p in zip(self.shards, closed):
                    self._lasts[shard.name] = p
                self._periods_done = k + 1
            k += 1

    # ------------------------------------------------------------------ #
    # live introspection (the ObsServer's ``/status`` "service" view)
    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """A JSON-able snapshot of the live fleet right now."""
        snap = self.ingest.snapshot()
        policy = self.coordinator.migration_policy
        with self._lock:
            lasts = dict(self._lasts)
            done = self._periods_done
        doc = {
            "mode": "live",
            "coordination": self.coordinator.mode,
            "running": (self._ticker is not None
                        and self._ticker.is_alive()),
            "clock": round(self.clock.now(), 3) if self.clock else None,
            "period": self.period,
            "periods_done": done,
            "ingest_port": self.ingest.port,
            "tick_jitter": round(self._jitter, 4),
            "routing_epoch": self.table.epoch,
            "routes": self.table.routes(),
            "migrations": policy.migrations if policy is not None else 0,
            "ingest": {
                "accepted": snap.accepted,
                "dropped": snap.dropped,
                "malformed": snap.malformed,
                "bytes_read": snap.bytes_read,
                "connections": snap.open_connections,
                "buffered": len(self.buffer),
                "skew_last": round(snap.skew_last, 4),
            },
            "shards": {
                shard.name: {
                    "headroom": shard.headroom,
                    "target": shard.target,
                    "alpha": shard.requested_alpha,
                    "delay_estimate": (lasts[shard.name].delay_estimate
                                       if shard.name in lasts else None),
                    "queue_length": (lasts[shard.name].queue_length
                                     if shard.name in lasts else None),
                }
                for shard in self.shards
            },
        }
        return doc


def build_live_service(config, svc,
                       clock: Optional[Clock] = None,
                       host: str = "127.0.0.1",
                       ingest_port: int = 0,
                       buffer_maxlen: int = 100_000,
                       default_source: str = "live",
                       bus=None,
                       max_periods: Optional[int] = None) -> LiveService:
    """A complete multi-shard live node from ``(config, svc)`` specs.

    The same :class:`~repro.service.config.ServiceConfig` that builds the
    lockstep service or the process fleet builds the live front-end:
    same shards, same routing table, same coordinator (migration policy
    included) — just clocked by real seconds and fed by a socket.
    """
    from ..service.coordinator import (  # lazy: avoids a package cycle
        HeadroomCoordinator,
        MigrationPolicy,
    )
    from ..service.router import make_router
    from ..service.shard import build_shard
    headrooms = svc.initial_headrooms()
    shards = [
        build_shard(
            name, config,
            headroom=headrooms[i],
            target=config.target,
            strategy=svc.strategy,
            engine_seed=config.seed + 104729 * (i + 1),
            drain_max_extra=svc.drain_max_extra,
            backend=svc.backend,
        )
        for i, name in enumerate(svc.shard_names)
    ]
    assignments = (svc.default_assignments()
                   if svc.router == "explicit" else None)
    if assignments is not None:
        # bare wire tuples carry no source field and fall back to
        # default_source; a pins-only table must know where to put them
        assignments.setdefault(default_source, 0)
    table = make_router(svc.router, svc.n_shards, assignments)
    policy = None
    if svc.migration:
        policy = MigrationPolicy(
            patience=svc.migration_patience,
            cooldown=svc.migration_cooldown,
            deficit=svc.migration_deficit,
            max_migrations=svc.max_migrations,
            drain_budget=svc.migration_drain_budget,
        )
    coordinator = HeadroomCoordinator(
        mode=svc.mode,
        gain=svc.rebalance_gain,
        headroom_floor=svc.headroom_floor,
        headroom_ceiling=svc.headroom_ceiling,
        loss_bound=svc.loss_bound,
        migration_policy=policy,
    )
    return LiveService(shards, table, coordinator,
                       clock=clock, host=host, ingest_port=ingest_port,
                       buffer_maxlen=buffer_maxlen,
                       default_source=default_source, bus=bus,
                       serve=svc.serve, serve_port=svc.serve_port,
                       max_periods=max_periods,
                       sysid=svc.sysid, flight=svc.flight,
                       flight_dir=svc.flight_dir)


def build_live_runner(config,
                      strategy: str = "CTRL",
                      backend: str = "full",
                      host: str = "127.0.0.1",
                      ingest_port: int = 0,
                      serve: bool = False,
                      serve_port: Optional[int] = None,
                      max_periods: Optional[int] = None,
                      buffer_maxlen: int = 100_000,
                      engine_seed: int = 0,
                      shard: Optional[str] = None) -> LiveRunner:
    """A complete live node from an ExperimentConfig.

    Reuses the service layer's :func:`~repro.service.shard.build_shard`
    (engine + model + monitor + controller + bounded entry actuator at
    the config's headroom/target), then wraps its loop in a
    :class:`LiveRunner` listening on ``host:ingest_port``.
    """
    from ..service.shard import build_shard  # lazy: avoids a package cycle
    built = build_shard(shard or "live", config,
                        headroom=config.headroom,
                        target=config.target,
                        strategy=strategy,
                        engine_seed=engine_seed,
                        backend=backend)
    return LiveRunner(built.loop,
                      entry_source=built.entry_source,
                      host=host,
                      ingest_port=ingest_port,
                      serve=serve,
                      serve_port=serve_port,
                      max_periods=max_periods,
                      buffer_maxlen=buffer_maxlen,
                      shard=shard)
