"""The wall-clock control loop driver: the paper's deployment, live.

:class:`LiveRunner` turns an ordinary :class:`~repro.core.ControlLoop`
into a real-time serving node. A ticker thread sleeps to each period
boundary ``(k+1)·T`` on a :class:`~repro.core.clock.WallClock`, drains
the :class:`~repro.serve.ingest.IngestBuffer` of every tuple stamped
before the boundary, and hands them to ``ControlLoop.run_period`` — the
same per-period body every virtual experiment runs, now clocked by real
seconds. Arrival timestamps are wall seconds-since-start, so they land
directly on the engine's virtual time axis and the Fig. 3 feedback
(q(k), c(k), ŷ(k)) is computed over *real* queueing.

The engine stays a virtual-capacity simulator: ``run_until(boundary)``
executes instantly in wall time, but its queue builds exactly when the
socket's offered rate exceeds ``H/c`` tuples/s — so overload, shedding
and delay regulation are all faithful without burning a real CPU per
tuple, and the entry actuator bounds per-tick work to roughly
``capacity × T`` tuples however hard the socket is blasted.

:func:`build_live_runner` assembles the whole node (engine + monitor +
controller + actuator via :func:`~repro.service.shard.build_shard`) from
an :class:`~repro.experiments.config.ExperimentConfig`.
"""

from __future__ import annotations

import signal
import threading
from typing import Optional

from ..core.clock import Clock, WallClock
from ..core.loop import ControlLoop
from ..errors import ServeError
from ..metrics.recorder import PeriodRecord, RunRecord
from ..obs.events import IngestStats
from .ingest import IngestBuffer, IngestServer


class LiveRunner:
    """Drives one control loop on wall-clock periods, fed by a socket.

    Lifecycle: :meth:`start` binds the ingest socket (and optionally an
    :class:`~repro.obs.serve.ObsServer`), anchors the clock and launches
    the ticker; :meth:`wait` blocks until ``max_periods`` have closed or
    :meth:`stop` is called; :meth:`stop` joins the ticker, runs the
    loop's virtual end-of-run drain, closes every socket, and returns
    the finished :class:`~repro.metrics.recorder.RunRecord`.
    """

    def __init__(self, loop: ControlLoop,
                 entry_source: str = "in",
                 clock: Optional[Clock] = None,
                 host: str = "127.0.0.1",
                 ingest_port: int = 0,
                 buffer_maxlen: int = 100_000,
                 default_source: str = "live",
                 serve: bool = False,
                 serve_port: Optional[int] = None,
                 max_periods: Optional[int] = None,
                 shard: Optional[str] = None):
        if max_periods is not None and max_periods <= 0:
            raise ServeError(f"max_periods must be positive: {max_periods}")
        self.loop = loop
        self.entry_source = entry_source
        self.clock = clock if clock is not None else WallClock()
        self.buffer = IngestBuffer(self.clock, maxlen=buffer_maxlen)
        self.ingest = IngestServer(self.buffer, host=host, port=ingest_port,
                                   default_source=default_source)
        self.serve = serve
        self.serve_port = serve_port
        #: the live ObsServer while serving; None otherwise
        self.obs_server = None
        self.max_periods = max_periods
        self.shard = shard
        self.record: Optional[RunRecord] = None
        self._last: Optional[PeriodRecord] = None
        self._jitter = 0.0
        self._periods_done = 0
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None
        self._finished = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def ingest_port(self) -> int:
        """The bound TCP port tuples should be sent to."""
        return self.ingest.port

    def start(self) -> "LiveRunner":
        if self._ticker is not None:
            raise ServeError("LiveRunner already started")
        if self.serve:
            from ..obs.serve import ObsServer  # lazy: serving is opt-in
            self.obs_server = ObsServer(port=self.serve_port,
                                        bus=self.loop.bus,
                                        status_fn=self.status).start()
        self.ingest.start()
        # the monitor stamps measurements with wall time from here on
        self.loop.monitor.clock = self.clock
        self.record = self.loop.begin()
        self.clock.start()  # period 0 begins *now*; arrivals stamp >= 0
        self._ticker = threading.Thread(
            target=self._run_ticker, name="repro-live-ticker", daemon=True)
        self._ticker.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticker exits (max_periods or stop). True if it did."""
        if self._ticker is None:
            return True
        self._ticker.join(timeout=timeout)
        return not self._ticker.is_alive()

    def stop(self, drain: bool = True) -> RunRecord:
        """Stop ticking, close the run record, shut every socket. Idempotent.

        ``drain=True`` runs the loop's usual end-of-run *virtual* drain so
        every delivered tuple's delay is resolved into the record.
        """
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=max(10.0, 3 * self.loop.period))
        with self._lock:
            if not self._finished:
                self._finished = True
                if drain:
                    self.loop.finish(self.record, self._periods_done)
                else:
                    self.record.duration = (
                        self._periods_done * self.loop.period)
        self.ingest.stop()
        if self.obs_server is not None:
            self.obs_server.stop()
            self.obs_server = None
        return self.record

    def handle_signals(self) -> None:
        """Route SIGINT/SIGTERM to a clean stop (call from the main thread).

        The first signal requests a graceful stop; the previous handlers
        are restored immediately after, so a second Ctrl-C still kills a
        process wedged in teardown.
        """
        previous = {}

        def _on_signal(signum, frame):
            self._stop.set()
            for sig, handler in previous.items():
                try:
                    signal.signal(sig, handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass

    def __enter__(self) -> "LiveRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the ticker: one run_period call per wall-clock boundary
    # ------------------------------------------------------------------ #
    def _run_ticker(self) -> None:
        loop, buffer, clock = self.loop, self.buffer, self.clock
        prev = self.ingest.snapshot()
        k = 0
        while not self._stop.is_set():
            if self.max_periods is not None and k >= self.max_periods:
                break
            boundary = (k + 1) * loop.period
            late = clock.wait_until(boundary, self._stop)
            if clock.now() < boundary:
                break  # stop fired mid-period; k never closed
            self._jitter = max(late, 0.0)
            due = buffer.drain_until(boundary)
            snap = self.ingest.snapshot()
            bus = loop.bus
            if bus:
                bus.emit(IngestStats(
                    k=k,
                    accepted=snap.accepted - prev.accepted,
                    dropped=snap.dropped - prev.dropped,
                    malformed=snap.malformed - prev.malformed,
                    bytes_read=snap.bytes_read - prev.bytes_read,
                    connections=snap.open_connections,
                    rate=(snap.accepted - prev.accepted) / loop.period,
                    skew=snap.skew_last,
                    jitter=self._jitter,
                    buffered=len(buffer),
                    shard=self.shard,
                ))
            prev = snap
            # logical source names are a routing concept; tuples enter the
            # query network at the shard's one physical entry source
            arrivals = [(t, values, self.entry_source)
                        for t, values, _ in due]
            last = loop.run_period(self.record, k, arrivals)
            with self._lock:
                self._last = last
                self._periods_done = k + 1
            k += 1

    # ------------------------------------------------------------------ #
    # live introspection (the ObsServer's ``/status`` "service" view)
    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """A JSON-able snapshot of the live node right now."""
        snap = self.ingest.snapshot()
        with self._lock:
            last = self._last
            done = self._periods_done
        doc = {
            "mode": "live",
            "running": (self._ticker is not None and self._ticker.is_alive()),
            "clock": round(self.clock.now(), 3) if self.clock else None,
            "period": self.loop.period,
            "periods_done": done,
            "ingest_port": self.ingest.port,
            "tick_jitter": round(self._jitter, 4),
            "ingest": {
                "accepted": snap.accepted,
                "dropped": snap.dropped,
                "malformed": snap.malformed,
                "bytes_read": snap.bytes_read,
                "connections": snap.open_connections,
                "buffered": len(self.buffer),
                "skew_last": round(snap.skew_last, 4),
            },
        }
        if last is not None:
            doc.update({
                "k": last.k,
                "delay_estimate": last.delay_estimate,
                "target": last.target,
                "queue_length": last.queue_length,
                "alpha": last.alpha,
                "offered": last.offered,
                "admitted": last.admitted,
            })
        return doc


def build_live_runner(config,
                      strategy: str = "CTRL",
                      backend: str = "full",
                      host: str = "127.0.0.1",
                      ingest_port: int = 0,
                      serve: bool = False,
                      serve_port: Optional[int] = None,
                      max_periods: Optional[int] = None,
                      buffer_maxlen: int = 100_000,
                      engine_seed: int = 0,
                      shard: Optional[str] = None) -> LiveRunner:
    """A complete live node from an ExperimentConfig.

    Reuses the service layer's :func:`~repro.service.shard.build_shard`
    (engine + model + monitor + controller + bounded entry actuator at
    the config's headroom/target), then wraps its loop in a
    :class:`LiveRunner` listening on ``host:ingest_port``.
    """
    from ..service.shard import build_shard  # lazy: avoids a package cycle
    built = build_shard(shard or "live", config,
                        headroom=config.headroom,
                        target=config.target,
                        strategy=strategy,
                        engine_seed=engine_seed,
                        backend=backend)
    return LiveRunner(built.loop,
                      entry_source=built.entry_source,
                      host=host,
                      ingest_port=ingest_port,
                      serve=serve,
                      serve_port=serve_port,
                      max_periods=max_periods,
                      buffer_maxlen=buffer_maxlen,
                      shard=shard)
