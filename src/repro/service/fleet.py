"""The process fleet: one worker process per shard, true CPU parallelism.

:class:`~repro.service.service.StreamService` steps N shards in lockstep
inside one Python process, so the "fleet" shares one GIL and gains no
throughput from extra cores. :class:`ProcessFleet` promotes each
:class:`~repro.service.shard.EngineShard` to its own worker process — the
deployment shape of the paper's Borealis target, where every node advances
autonomously while a supervisor rebalances load:

* each **worker** builds its shard locally (from the same picklable specs
  :func:`~repro.service.service.build_service` uses, same seeds) and
  drives the stepped :class:`~repro.core.loop.ControlLoop` API over its
  router slice of the arrivals, one Monitor -> Controller -> Actuator
  cycle per control period, shipping a per-period summary (the closed
  :class:`~repro.metrics.recorder.PeriodRecord` plus the armed drop
  demand) up a shared queue;
* the **parent** runs the unchanged
  :class:`~repro.service.coordinator.HeadroomCoordinator` over
  :class:`ShardProxy` stand-ins — once a period's row of summaries is
  complete it rebalances exactly as the lockstep service would, and the
  resulting headroom / target / drop-cap ops go back down a per-shard
  :class:`~repro.obs.relay.CommandChannel` queue;
* **observability** reuses the PR-5 relay uplink unchanged: with
  ``relay=True`` (implied by ``serve``/``health``) each worker attaches
  :func:`~repro.obs.relay.worker_relay`, so every worker event lands on
  the parent bus labelled ``pid<pid>/<shard>``.

Two execution modes (``FleetConfig.sync``):

* **sync** — a command barrier per period: a worker blocks for the
  coordinator's (possibly empty) op list for period ``k`` before opening
  period ``k+1``. Because the coordinator then runs the identical
  arithmetic on identical per-period records in the identical order, the
  fleet's records match the lockstep service float-for-float — the
  determinism contract that makes recovery-by-replay possible at all;
* **async** — no barrier: workers free-run their control periods at
  wall-clock speed and apply coordinator ops whenever they arrive (the
  paper's supervisory layer was never synchronous either; docs/THEORY.md
  §11 argues why the per-shard loops stay stable under late commands).

**Failure/restart.** Engines hold closures and live event state, so a
shard checkpoint is not a pickle — it is a *recipe*: the build spec, the
arrival slice, and the journal of coordinator ops per period (all three
already live in the parent). When a worker dies, the parent drains its
queues, emits :class:`~repro.obs.events.WorkerDown`, and spawns a
replacement that silently replays periods ``0..last_acked`` applying the
journalled ops at the exact period boundaries the original applied them
(sync mode), then emits :class:`~repro.obs.events.WorkerRestarted` and
rejoins live. Determinism makes the replayed incarnation bit-identical to
the lost one, so fleet aggregates come out as if nothing had died.
"""

from __future__ import annotations

import os
import queue as _queue
import signal
import time as _time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import multiprocessing

from ..errors import ServiceError
from ..metrics.recorder import PeriodRecord, RunRecord
from ..obs.bus import EventBus, get_bus
from ..obs.events import RouteChanged, WorkerDown, WorkerRestarted
from ..obs.flight import FlightRecorder
from ..obs.health import HealthMonitor
from ..obs.sysid import SysIdMonitor
from ..obs.relay import CommandChannel, EventRelay, worker_relay
from ..obs.tuptrace import TupleTracer
from .config import FleetConfig, ServiceConfig
from .coordinator import HeadroomCoordinator, MigrationPolicy
from .router import RoutingTable, make_router
from .service import Arrival, ServiceResult
from .shard import build_shard

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from ..experiments.config import ExperimentConfig

#: the prime stride build_service uses for per-shard engine seeds;
#: workers must derive the identical seed to reproduce the lockstep run
_SEED_STRIDE = 104729


class _LoopView:
    """The one ``loop`` attribute the coordinator reads off a shard."""

    __slots__ = ("period",)

    def __init__(self, period: float):
        self.period = period


class ShardProxy:
    """Parent-side stand-in for a worker-resident :class:`EngineShard`.

    Duck-types exactly the surface
    :class:`~repro.service.coordinator.HeadroomCoordinator` touches —
    ``headroom`` / ``base_target`` / ``requested_alpha`` / ``loop.period``
    to observe, ``set_headroom`` / ``set_target`` / ``cap_alpha`` to
    mutate. Mutations update the proxy's view (so the next rebalance
    observes what the lockstep service would) and append a pickled op for
    the worker, which applies it through the real shard's method — same
    validation, same model replacement, same events, just one process
    away.
    """

    def __init__(self, name: str, headroom: float, base_target: float,
                 period: float):
        self.name = name
        self.headroom = float(headroom)
        self.base_target = float(base_target)
        self.target = float(base_target)
        self.requested_alpha = 0.0
        self.loop = _LoopView(period)
        self._ops: List[Tuple[str, float]] = []

    def set_headroom(self, headroom: float) -> None:
        if not 0.0 < headroom <= 1.0:  # same guard as EngineShard
            raise ServiceError(
                f"shard headroom must be in (0, 1], got {headroom}"
            )
        self.headroom = float(headroom)
        self._ops.append(("headroom", float(headroom)))

    def set_target(self, target: float) -> None:
        if target < 0:
            raise ServiceError(f"negative delay target {target}")
        self.target = float(target)
        self._ops.append(("target", float(target)))

    def cap_alpha(self, alpha_cap: float) -> None:
        self._ops.append(("alpha_cap", float(alpha_cap)))

    def take_ops(self) -> List[Tuple[str, float]]:
        """The ops accumulated since the last call (journal + downlink)."""
        ops, self._ops = self._ops, []
        return ops


def _apply_ops(shard, ops: Sequence[Tuple[str, object]],
               table: Optional[RoutingTable] = None) -> None:
    """Apply journalled/downlinked coordinator ops to the real shard.

    Besides the scalar knob ops, the channel carries the migration
    transaction: ``("drain_source", (source, budget, k, from, to))``
    quiesces the worker's engine and
    ``("route", (source, shard_index, epoch))`` commits the cutover on
    the worker's routing-table replica. Replaying a journal through this
    function therefore reproduces cutovers exactly — the replica ends at
    the journalled epoch and the replayed engine drained at the same
    period boundary the original did.
    """
    for op, value in ops:
        if op == "headroom":
            shard.set_headroom(value)
        elif op == "target":
            shard.set_target(value)
        elif op == "alpha_cap":
            shard.cap_alpha(value)
        elif op == "drain_source":
            source, budget, k, src, dst = value
            shard.drain_source(source, budget, k=k,
                               from_shard=src, to_shard=dst)
        elif op == "route":
            if table is None:
                raise ServiceError(
                    "route op received but this worker holds no "
                    "routing-table replica"
                )
            source, shard_index, epoch = value
            table.apply_route(source, shard_index, epoch)
        else:
            raise ServiceError(f"unknown coordinator op {op!r}")


def _fleet_worker(name: str, config: "ExperimentConfig", svc: FleetConfig,
                  headroom: float, engine_seed: int, index: int,
                  arrivals: Sequence[Arrival], table_snapshot: dict,
                  n_periods: int,
                  summary_queue, command_queue, relay_queue,
                  journal: Dict[int, list], resume_k: int, restart_no: int,
                  fail_k: Optional[int]) -> None:
    """One shard's whole life, in its own process.

    Receives the *full* arrival stream plus a replica of the initial
    routing table, and keeps only the tuples the replica routes to
    ``index`` — so when a journalled/downlinked ``route`` op re-pins a
    source mid-run, this worker's filter flips at exactly the same period
    boundary the parent's authoritative table did. Replays periods
    ``0..resume_k`` silently (no summaries, no relay — the parent already
    accounted for them; the replica replays through any journalled
    cutover to the correct epoch), then goes live: close a period, ship
    its summary, and in sync mode block for the coordinator's op barrier
    before opening the next. ``fail_k`` is the failure-injection test
    hook: the first incarnation dies abruptly at the start of that
    period.
    """
    try:
        # a Ctrl-C to the process *group* hits every worker as well as the
        # parent; workers must not race the parent's coordinated teardown
        # with their own KeyboardInterrupt stacks — the parent terminates
        # them (or they finish their run) under its finally block
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        shard = build_shard(
            name, config,
            headroom=headroom,
            target=config.target,
            strategy=svc.strategy,
            engine_seed=engine_seed,
            drain_max_extra=svc.drain_max_extra,
            backend=svc.backend,
        )
        # a fresh private bus: the process-default bus may carry forked
        # parent subscribers, and a silent bus keeps un-relayed fleets at
        # one truthiness check per emit site
        bus = EventBus()
        scoped = bus.scoped(name)
        shard.loop.bus = scoped
        shard.engine.bus = scoped
        if svc.tuptrace > 0.0:
            # same seeds as the lockstep service's shard tracers; traces
            # emitted during silent replay die on the then-subscriber-less
            # bus, so the parent never sees a replayed period's tuple twice
            shard.loop.tuple_tracer = TupleTracer(
                fraction=svc.tuptrace, seed=104729 * (index + 1),
                bus=scoped, shard=name)
        # sysid lives where the period stream lives: subscribed *before*
        # the silent replay, so a restarted incarnation re-derives the
        # exact identification state the lost one carried
        sysid = SysIdMonitor(bus) if svc.sysid else None
        period = shard.loop.period
        patience = svc.worker_patience
        # the replica: journalled/downlinked route ops keep it in sync
        # with the parent's authoritative table (RoutingTable memoizes
        # lookups internally and invalidates on every mutation)
        table = RoutingTable.from_snapshot(table_snapshot)

        it = iter(arrivals)
        pending = next(it, None)

        def due_before(boundary: float) -> List[Arrival]:
            nonlocal pending
            due: List[Arrival] = []
            while pending is not None and pending[0] < boundary:
                t, values, source = pending
                if table.shard_of(source) == index:
                    due.append((t, values, shard.entry_source))
                pending = next(it, None)
            return due

        def await_ops(k: int) -> None:
            while True:
                try:
                    msg = command_queue.get(timeout=patience)
                except _queue.Empty:
                    raise ServiceError(
                        f"shard {name!r} waited {patience:.0f}s for the "
                        f"coordinator's period-{k} commands"
                    ) from None
                __, kk, ops = msg
                if kk < k:     # stale barrier from before a parent drain
                    continue
                if kk != k:
                    raise ServiceError(
                        f"shard {name!r} expected period-{k} commands, "
                        f"got period-{kk}"
                    )
                _apply_ops(shard, ops, table)
                return

        def drain_ops() -> None:
            while True:
                try:
                    __, __k, ops = command_queue.get_nowait()
                except _queue.Empty:
                    return
                _apply_ops(shard, ops, table)

        record = shard.loop.begin()
        # --- silent replay of the lost incarnation ---------------------- #
        for k in range(resume_k + 1):
            shard.loop.run_period(record, k, due_before((k + 1) * period))
            if k in journal:
                _apply_ops(shard, journal[k], table)
        if svc.sync and resume_k >= 0 and resume_k not in journal:
            # the row we died on had not been rebalanced yet; the barrier
            # op for it arrives over the live channel once it closes
            await_ops(resume_k)

        # --- live ------------------------------------------------------- #
        relay_ctx = (worker_relay(relay_queue, bus=bus)
                     if relay_queue is not None else nullcontext())
        with relay_ctx:
            summary_queue.put(("ready", name, resume_k, restart_no,
                               os.getpid(), table.epoch))
            for k in range(resume_k + 1, n_periods):
                if fail_k is not None and k == fail_k and restart_no == 0:
                    os._exit(17)  # test hook: die without flushing anything
                p = shard.loop.run_period(record, k,
                                          due_before((k + 1) * period))
                summary_queue.put(("summary", name, k, p,
                                   shard.requested_alpha))
                if svc.sync:
                    await_ops(k)
                else:
                    drain_ops()
            shard.loop.finish(record, n_periods)
            if sysid is not None:
                summary_queue.put(("sysid", name, sysid.state_for(name)))
            summary_queue.put(("done", name, record, restart_no))
    except BaseException:
        try:
            summary_queue.put(("error", name, traceback.format_exc()))
        finally:
            raise


@dataclass
class _WorkerState:
    """Parent-side bookkeeping for one shard's worker (all incarnations)."""

    index: int
    proc: Optional[object] = None
    pid: Optional[int] = None
    restarts: int = 0
    last_acked: int = -1
    journal: Dict[int, list] = field(default_factory=dict)
    record: Optional[RunRecord] = None
    dead_since: Optional[float] = None
    #: the worker replica's routing-table epoch at its last "ready"
    epoch: int = 0
    #: the worker's final sysid state slice, shipped just before "done"
    sysid: Optional[dict] = None


class ProcessFleet:
    """N shard worker processes under one parent-resident coordinator.

    Drop-in counterpart of :class:`~repro.service.service.StreamService`:
    same configs, same :class:`~repro.service.service.ServiceResult` out
    (``trace_summary`` excepted — per-period tracers do not cross the
    process boundary). ``fail_at`` maps shard names to the period at
    which their *first* worker incarnation kills itself — the failure
    injection hook the restart tests drive.
    """

    def __init__(self, config: "ExperimentConfig", svc: ServiceConfig,
                 bus=None, fail_at: Optional[Dict[str, int]] = None):
        if not isinstance(svc, FleetConfig):
            svc = FleetConfig(**{f.name: getattr(svc, f.name)
                                 for f in fields(ServiceConfig)})
        if svc.trace:
            raise ServiceError(
                "per-period tracing does not cross the process boundary; "
                "run the lockstep StreamService with trace=True instead"
            )
        if svc.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if svc.start_method not in available:
                raise ServiceError(
                    f"start method {svc.start_method!r} unavailable here; "
                    f"pick from {available}"
                )
        self.config = config
        self.svc = svc
        self.bus = bus if bus is not None else get_bus()
        self.fail_at = dict(fail_at or {})
        unknown = set(self.fail_at) - set(svc.shard_names)
        if unknown:
            raise ServiceError(f"fail_at names unknown shards {sorted(unknown)}")
        assignments = (svc.default_assignments()
                       if svc.router == "explicit" else None)
        self.router = make_router(svc.router, svc.n_shards, assignments)
        policy = None
        if svc.migration:
            policy = MigrationPolicy(
                patience=svc.migration_patience,
                cooldown=svc.migration_cooldown,
                deficit=svc.migration_deficit,
                max_migrations=svc.max_migrations,
                drain_budget=svc.migration_drain_budget,
            )
        self.coordinator = HeadroomCoordinator(
            mode=svc.mode,
            gain=svc.rebalance_gain,
            headroom_floor=svc.headroom_floor,
            headroom_ceiling=svc.headroom_ceiling,
            loss_bound=svc.loss_bound,
            migration_policy=policy,
        )
        self.coordinator.bus = self.bus
        self.period = config.period
        headrooms = svc.initial_headrooms()
        self.proxies = [
            ShardProxy(name, headrooms[i], config.target, config.period)
            for i, name in enumerate(svc.shard_names)
        ]
        self.obs_server = None
        #: parent-assembled incident bundles over the relayed event stream;
        #: ring keys carry ``pidNNN/shardN`` worker provenance
        self.flight_recorder = None
        if svc.flight > 0:
            self.flight_recorder = FlightRecorder(
                self.bus, ring=svc.flight, directory=svc.flight_dir,
                runtime="fleet", experiment=config, service=svc,
                status_fn=self.status,
                replay_spec={"kind": "service", "service_kind": "fleet",
                             "sync": svc.sync, "workload_kind": "web"})
        self._states: Dict[str, _WorkerState] = {}
        self._k = -1
        self._running = False

    # ------------------------------------------------------------------ #
    # live views
    # ------------------------------------------------------------------ #
    def status(self) -> dict:
        """A live JSON-able view of the fleet (the ``/status`` payload)."""
        policy = self.coordinator.migration_policy
        return {
            "mode": self.coordinator.mode,
            "period": self.period,
            "n_shards": len(self.proxies),
            "k": self._k,
            "running": self._running,
            "sync": self.svc.sync,
            "routing_epoch": self.router.epoch,
            "migrations": policy.migrations if policy is not None else 0,
            "shards": {
                proxy.name: {
                    "headroom": proxy.headroom,
                    "target": proxy.target,
                    "alpha": proxy.requested_alpha,
                    "pid": state.pid if state else None,
                    "restarts": state.restarts if state else 0,
                    "last_k": state.last_acked if state else -1,
                    "epoch": state.epoch if state else 0,
                }
                for proxy, state in (
                    (p, self._states.get(p.name)) for p in self.proxies
                )
            },
        }

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #
    def run(self, arrivals: Sequence[Arrival],
            duration: float) -> ServiceResult:
        """Drive the fleet for ``duration`` seconds of virtual time."""
        if duration <= 0:
            raise ServiceError("duration must be positive")
        if self.svc.serve:
            from ..obs.serve import ObsServer  # lazy: serving is opt-in

            self.obs_server = ObsServer(port=self.svc.serve_port,
                                        bus=self.bus,
                                        status_fn=self.status,
                                        flight=self.flight_recorder).start()
        self._running = True
        try:
            return self._run(arrivals, duration)
        finally:
            self._running = False
            if self.obs_server is not None:
                self.obs_server.stop()
                self.obs_server = None

    def _mp_context(self):
        method = self.svc.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
        return multiprocessing.get_context(method)

    def _run(self, arrivals: Sequence[Arrival],
             duration: float) -> ServiceResult:
        svc = self.svc
        names = list(svc.shard_names)
        # as in the lockstep service, auto-dumps need a monitor even when
        # health reporting itself was not requested
        monitor = None
        if svc.health or self.flight_recorder is not None:
            monitor = HealthMonitor(self.bus)
        if monitor is not None and self.flight_recorder is not None:
            self.flight_recorder.watch(monitor)
        wall_start = _time.perf_counter()
        n_periods = int(round(duration / self.period))
        # every worker sees the full stream and filters through its table
        # replica, so route changes flip worker filters at the same period
        # boundary they flip the parent's authoritative table. Replicas
        # (including replacements) always start from the *initial*
        # snapshot and replay forward through the journalled route ops.
        initial_table = self.router.snapshot()
        ctx = self._mp_context()
        summary_q = ctx.Queue()
        channel = CommandChannel(ctx)
        relay = None
        if (svc.relay or svc.serve or svc.health or svc.sysid
                or svc.flight > 0):
            relay = EventRelay(bus=self.bus).start()
        states = {name: _WorkerState(index=i)
                  for i, name in enumerate(names)}
        self._states = states
        headrooms = svc.initial_headrooms()
        pending_rows: Dict[int, Dict[str, Tuple[PeriodRecord, float]]] = {}
        next_row = 0
        done_count = 0
        last_progress = _time.monotonic()
        # parent-side per-period source tallies for the migration policy
        # (rows close in k order, so one shared iterator suffices)
        tally_iter = iter(arrivals)
        tally_pending = next(tally_iter, None)

        def tally_before(boundary: float) -> Dict[str, int]:
            nonlocal tally_pending
            counts: Dict[str, int] = {}
            while tally_pending is not None and tally_pending[0] < boundary:
                source = tally_pending[2]
                counts[source] = counts.get(source, 0) + 1
                tally_pending = next(tally_iter, None)
            return counts

        def spawn(name: str) -> None:
            st = states[name]
            cmd_q = channel.register(name)
            st.proc = ctx.Process(
                target=_fleet_worker,
                name=f"repro-fleet-{name}",
                daemon=True,
                args=(name, self.config, svc, headrooms[st.index],
                      self.config.seed + _SEED_STRIDE * (st.index + 1),
                      st.index, arrivals, initial_table,
                      n_periods, summary_q, cmd_q,
                      relay.queue if relay is not None else None,
                      dict(st.journal), st.last_acked, st.restarts,
                      self.fail_at.get(name)),
            )
            st.dead_since = None
            st.proc.start()

        def close_row(k: int) -> None:
            row = pending_rows.pop(k)
            closed = [row[name][0] for name in names]
            for proxy, name in zip(self.proxies, names):
                proxy.requested_alpha = row[name][1]
            counts = tally_before((k + 1) * self.period)
            entry = self.coordinator.rebalance(k, self.proxies, closed,
                                               source_counts=counts,
                                               table=self.router)
            extra_ops: Dict[str, list] = {}
            plan = entry.get("migration")
            if plan is not None:
                # commit the cutover on the authoritative table now (the
                # next rebalance must see post-move placement), and ship
                # the transaction down the barrier: the old shard drains
                # *then* re-pins, every other replica just re-pins
                source, src, dst = plan["source"], plan["from"], plan["to"]
                epoch = self.router.migrate(source, src, dst)
                plan["epoch"] = epoch
                drain = ("drain_source",
                         (source, plan.get("budget", 5.0), k, src, dst))
                route = ("route", (source, dst, epoch))
                extra_ops[names[src]] = [drain, route]
                for other in names:
                    if other != names[src]:
                        extra_ops[other] = [route]
                if self.bus:
                    self.bus.emit(RouteChanged(
                        k=k, source=source, from_shard=src, to_shard=dst,
                        epoch=epoch))
            for proxy, name in zip(self.proxies, names):
                ops = proxy.take_ops() + extra_ops.get(name, [])
                states[name].journal[k] = ops
                if svc.sync or ops:
                    channel.send(name, ("ops", k, ops))
            self._k = k

        def handle(msg) -> int:
            nonlocal next_row
            kind = msg[0]
            if kind == "summary":
                __, name, k, prec, alpha = msg
                st = states[name]
                if k <= st.last_acked:   # superseded incarnation's tail
                    return 0
                st.last_acked = k
                pending_rows.setdefault(k, {})[name] = (prec, alpha)
                while (next_row in pending_rows
                       and len(pending_rows[next_row]) == len(names)):
                    close_row(next_row)
                    next_row += 1
                return 0
            if kind == "ready":
                __, name, resumed_k, restart_no, pid, epoch = msg
                states[name].pid = pid
                states[name].epoch = epoch
                if restart_no > 0 and self.bus:
                    self.bus.emit(WorkerRestarted(
                        resumed_k=resumed_k, restarts=restart_no,
                        epoch=epoch, shard=name))
                return 0
            if kind == "sysid":
                __, name, state = msg
                states[name].sysid = state
                return 0
            if kind == "done":
                __, name, record, __restart = msg
                if states[name].record is None:
                    states[name].record = record
                    return 1
                return 0
            if kind == "error":
                __, name, tb = msg
                raise ServiceError(f"shard {name!r} worker failed:\n{tb}")
            raise ServiceError(f"unknown fleet message {kind!r}")

        def handle_failure(name: str) -> None:
            st = states[name]
            exitcode = st.proc.exitcode if st.proc is not None else None
            st.restarts += 1
            if st.restarts > svc.max_restarts:
                raise ServiceError(
                    f"shard {name!r} worker died (exit {exitcode}) and "
                    f"exhausted max_restarts={svc.max_restarts}"
                )
            if self.bus:
                self.bus.emit(WorkerDown(exitcode=exitcode,
                                         restarts=st.restarts,
                                         last_k=st.last_acked, shard=name))
            # stale barrier commands must not reach the replacement
            channel.drain(name)
            spawn(name)

        def check_deaths() -> None:
            now = _time.monotonic()
            for name, st in states.items():
                if st.record is not None or st.proc is None:
                    continue
                if st.proc.is_alive():
                    st.dead_since = None
                    continue
                if st.dead_since is None:
                    # give the dead process's queue feeder pipe a moment
                    # to deliver its final messages before declaring loss
                    st.dead_since = now
                elif now - st.dead_since > 0.5:
                    handle_failure(name)

        try:
            for name in names:
                spawn(name)
            while done_count < len(names):
                try:
                    msg = summary_q.get(timeout=0.2)
                except _queue.Empty:
                    msg = None
                if msg is not None:
                    last_progress = _time.monotonic()
                    done_count += handle(msg)
                    continue
                check_deaths()
                if _time.monotonic() - last_progress > svc.worker_patience:
                    raise ServiceError(
                        f"fleet stalled: no worker progress for "
                        f"{svc.worker_patience:.0f}s (next row {next_row}, "
                        f"{done_count}/{len(names)} done)"
                    )
            wall = _time.perf_counter() - wall_start
            health_summary = None
            if monitor is not None:
                if relay is not None:
                    relay.flush()
                monitor.finalize()
                monitor.close()
                if svc.health:
                    health_summary = monitor.summary()
                monitor = None
            sysid_summary = None
            if svc.sysid:
                sysid_summary = {name: states[name].sysid
                                 for name in names
                                 if states[name].sysid is not None}
            incidents = None
            if self.flight_recorder is not None:
                incidents = [str(p) for p in self.flight_recorder.incidents]
            return ServiceResult(
                mode=self.coordinator.mode,
                base_target=self.config.target,
                shard_records={name: states[name].record for name in names},
                coordinator_history=list(self.coordinator.history),
                wall_seconds=wall,
                health=health_summary,
                trace_summary=None,
                sysid=sysid_summary,
                incidents=incidents,
            )
        finally:
            for st in states.values():
                if st.proc is not None and st.proc.is_alive():
                    st.proc.terminate()
            for st in states.values():
                if st.proc is not None:
                    st.proc.join(timeout=2.0)
            # a worker stuck past the graceful join (wedged in a queue
            # write, say) must not be orphaned: escalate to SIGKILL
            for st in states.values():
                if st.proc is not None and st.proc.is_alive():
                    st.proc.kill()
                    st.proc.join(timeout=2.0)
            channel.close()
            summary_q.close()
            summary_q.cancel_join_thread()
            if relay is not None:
                relay.stop()
            if monitor is not None:
                monitor.close()
            if self.flight_recorder is not None:
                self.flight_recorder.close()


def build_fleet(config: "ExperimentConfig",
                svc: ServiceConfig,
                bus=None,
                fail_at: Optional[Dict[str, int]] = None) -> ProcessFleet:
    """Assemble a process fleet from picklable specs.

    Mirror of :func:`~repro.service.service.build_service`: the same
    ``(config, svc)`` pair builds either runner, and in sync mode both
    produce identical records.
    """
    return ProcessFleet(config, svc, bus=bus, fail_at=fail_at)
