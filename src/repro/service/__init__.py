"""Sharded multi-stream service layer.

The paper's feedback loop controls one query network; this subpackage
scales it out: N engine shards each run their own Monitor -> Controller ->
Actuator loop, a stream router partitions sources across them, and a
global headroom coordinator aggregates per-shard delay estimates every
control period and rebalances the fleet (CPU shares, delay budgets, and a
global drop bound). See README.md "Sharded service layer" for a
quickstart and docs/THEORY.md §7 for why the coordinated loops stay
stable.
"""

from .config import DEFAULT_TOTAL_HEADROOM, ServiceConfig
from .coordinator import MODES, HeadroomCoordinator
from .router import ExplicitRouter, HashRouter, StreamRouter, make_router
from .service import ServiceResult, StreamService, build_service
from .shard import SHARD_CONTROLLERS, EngineShard, build_shard

__all__ = [
    "DEFAULT_TOTAL_HEADROOM",
    "EngineShard",
    "ExplicitRouter",
    "HashRouter",
    "HeadroomCoordinator",
    "MODES",
    "SHARD_CONTROLLERS",
    "ServiceConfig",
    "ServiceResult",
    "StreamRouter",
    "StreamService",
    "build_service",
    "build_shard",
    "make_router",
]
