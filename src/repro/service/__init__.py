"""Sharded multi-stream service layer.

The paper's feedback loop controls one query network; this subpackage
scales it out: N engine shards each run their own Monitor -> Controller ->
Actuator loop, a stream router partitions sources across them, and a
global headroom coordinator aggregates per-shard delay estimates every
control period and rebalances the fleet (CPU shares, delay budgets, and a
global drop bound). Two runners share the configs:
:class:`~repro.service.service.StreamService` steps every shard in
lockstep inside one process;
:class:`~repro.service.fleet.ProcessFleet` promotes each shard to its
own worker process under a parent-resident coordinator, with failure
recovery by deterministic replay. See README.md "Sharded service layer"
/ "Process fleet" for quickstarts and docs/THEORY.md §7/§11 for why the
coordinated loops stay stable.
"""

from .config import DEFAULT_TOTAL_HEADROOM, FleetConfig, ServiceConfig
from .coordinator import MODES, HeadroomCoordinator, MigrationPolicy
from .fleet import ProcessFleet, ShardProxy, build_fleet
from .router import (
    ExplicitRouter,
    HashRouter,
    RouteEntry,
    RoutingTable,
    StreamRouter,
    make_router,
)
from .service import (
    PeriodDispatcher,
    ServiceResult,
    StreamService,
    build_service,
    execute_migration,
)
from .shard import SHARD_CONTROLLERS, DrainReport, EngineShard, build_shard

__all__ = [
    "DEFAULT_TOTAL_HEADROOM",
    "DrainReport",
    "EngineShard",
    "ExplicitRouter",
    "FleetConfig",
    "HashRouter",
    "HeadroomCoordinator",
    "MODES",
    "MigrationPolicy",
    "PeriodDispatcher",
    "ProcessFleet",
    "RouteEntry",
    "RoutingTable",
    "SHARD_CONTROLLERS",
    "ServiceConfig",
    "ServiceResult",
    "ShardProxy",
    "StreamRouter",
    "StreamService",
    "build_fleet",
    "build_service",
    "build_shard",
    "execute_migration",
    "make_router",
]
