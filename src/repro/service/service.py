"""The service runner: N shard loops in lockstep under one coordinator.

:class:`StreamService` drives every shard's control loop period by period
on a shared clock grid: each period the due arrivals are routed through
the (possibly live-mutating) routing table to their shards, every shard
closes its period (measure -> decide -> arm), and then the coordinator
observes all shards at once and rebalances headroom/targets/drop caps for
the next period. With the coordinator in ``"independent"`` mode this
degenerates to N disjoint paper loops.

Routing happens *per period*, not up front, so a coordinator-planned
migration takes effect at exactly one period boundary: the service drains
the old shard, commits the cutover on the routing table (bumping its
epoch), and the next period's dispatch follows the new pin — the same
transaction the process fleet journals and the live server applies to
socket tuples (docs/THEORY.md §13).

The result keeps one :class:`~repro.metrics.recorder.RunRecord` per shard
plus a merged aggregate record, all exportable through the existing
:mod:`repro.metrics.export` helpers.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ServiceError
from ..metrics.export import record_to_json
from ..metrics.qos import QosMetrics, combine_qos
from ..metrics.recorder import RunRecord, merge_records
from ..obs.bus import get_bus
from ..obs.events import RouteChanged
from ..obs.flight import FlightRecorder
from ..obs.health import HealthMonitor
from ..obs.sysid import SysIdMonitor
from ..obs.tracing import PeriodTracer, merge_flames
from ..obs.tuptrace import TailAnalyzer, TupleTracer
from .config import ServiceConfig
from .coordinator import HeadroomCoordinator, MigrationPolicy
from .router import RoutingTable, StreamRouter, make_router
from .shard import DrainReport, EngineShard, build_shard

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from ..experiments.config import ExperimentConfig

Arrival = Tuple[float, Tuple, str]


class PeriodDispatcher:
    """Routes one time-ordered arrival stream period by period.

    The per-period counterpart of :meth:`StreamRouter.partition`: pulls
    the arrivals due before each boundary and splits them by the router's
    *current* mapping, so mid-run routing-table mutations (migrations)
    take effect at exactly the next period boundary. Lookups are memoized
    and the memo is invalidated whenever the table's epoch moves, so the
    steady-state cost matches the old up-front partition.

    Shared by the lockstep service, the fleet parent (source tallies +
    equivalence bookkeeping) and the live server's ticker.
    """

    def __init__(self, router: StreamRouter, arrivals: Sequence[Arrival]):
        self.router = router
        self._iter: Iterator[Arrival] = iter(arrivals)
        self._pending: Optional[Arrival] = next(self._iter, None)
        self._cache: Dict[str, int] = {}
        self._epoch = getattr(router, "epoch", None)

    def shard_of(self, source: str) -> int:
        epoch = getattr(self.router, "epoch", None)
        if epoch != self._epoch:
            self._cache.clear()
            self._epoch = epoch
        shard = self._cache.get(source)
        if shard is None:
            shard = self.router.shard_of(source)
            if not 0 <= shard < self.router.n_shards:
                raise ServiceError(
                    f"router mapped source {source!r} to shard {shard}, "
                    f"outside [0, {self.router.n_shards})"
                )
            self._cache[source] = shard
        return shard

    def due(self, boundary: float
            ) -> Tuple[List[List[Arrival]], Dict[str, int]]:
        """Per-shard arrivals strictly before ``boundary`` + source tally.

        Arrivals keep their logical source names; the caller renames to
        each shard's physical entry source (shards do not know logical
        streams). The tally feeds the coordinator's migration policy.
        """
        out: List[List[Arrival]] = [[] for __ in range(self.router.n_shards)]
        counts: Dict[str, int] = {}
        while self._pending is not None and self._pending[0] < boundary:
            arrival = self._pending
            source = arrival[2]
            out[self.shard_of(source)].append(arrival)
            counts[source] = counts.get(source, 0) + 1
            self._pending = next(self._iter, None)
        return out, counts


def execute_migration(k: int, plan: dict, shards: Sequence[EngineShard],
                      table: RoutingTable, bus=None) -> DrainReport:
    """Run one coordinator-planned migration: drain -> cutover -> announce.

    Mutates ``plan`` in place with the cutover ``epoch`` — the plan dict
    is also the coordinator's history entry, so both the lockstep service
    and the fleet record identical, epoch-stamped histories.
    """
    source = plan["source"]
    src, dst = plan["from"], plan["to"]
    report = shards[src].drain_source(
        source, plan.get("budget", 5.0), k=k, from_shard=src, to_shard=dst)
    epoch = table.migrate(source, src, dst)
    plan["epoch"] = epoch
    if bus:
        bus.emit(RouteChanged(k=k, source=source, from_shard=src,
                              to_shard=dst, epoch=epoch))
    return report


@dataclass
class ServiceResult:
    """Everything one service run produced."""

    mode: str
    base_target: float
    shard_records: Dict[str, RunRecord]
    coordinator_history: List[dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: :meth:`~repro.obs.health.HealthMonitor.summary` of the run, when the
    #: service ran with ``health=True``; None otherwise
    health: Optional[dict] = None
    #: merged :func:`~repro.obs.tracing.merge_flames` summary, when the
    #: service ran with ``trace=True``; None otherwise
    trace_summary: Optional[dict] = None
    #: per-tuple tail-latency summary (percentiles + segment decomposition
    #: per shard), when the service ran with ``tuptrace > 0``; None
    #: otherwise
    tail_summary: Optional[dict] = None
    #: per-shard :meth:`~repro.obs.sysid.SysIdMonitor.summary` slice, when
    #: the service ran with ``sysid=True``; None otherwise
    sysid: Optional[dict] = None
    #: incident bundle paths the flight recorder wrote during the run,
    #: when the service ran with ``flight > 0``; None otherwise
    incidents: Optional[List[str]] = None

    @property
    def aggregate(self) -> RunRecord:
        """The fleet as one merged record (cached after first use)."""
        if not hasattr(self, "_aggregate"):
            self._aggregate = merge_records(list(self.shard_records.values()))
        return self._aggregate

    def shard_qos(self) -> Dict[str, QosMetrics]:
        """Per-shard QoS, always judged against the *base* target.

        Using the base target (not any coordinator-adjusted schedule)
        keeps coordination modes comparable: a shard does not get credit
        for violating a target it talked the coordinator into relaxing.
        """
        return {name: rec.qos(target=self.base_target)
                for name, rec in self.shard_records.items()}

    def aggregate_qos(self) -> QosMetrics:
        return combine_qos(self.shard_qos().values())

    def worst_shard(self, metric: str = "accumulated_violation"
                    ) -> Tuple[str, float]:
        """The shard faring worst on one QoS attribute, with its value."""
        per_shard = {name: getattr(q, metric)
                     for name, q in self.shard_qos().items()}
        name = max(per_shard, key=per_shard.get)
        return name, per_shard[name]

    def export(self, directory) -> List:
        """Write per-shard and aggregate JSON documents; returns the paths."""
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = [
            record_to_json(rec, directory / f"{name}.json")
            for name, rec in self.shard_records.items()
        ]
        paths.append(record_to_json(self.aggregate,
                                    directory / "aggregate.json"))
        return paths


class StreamService:
    """N engine shards, a stream router, and a global coordinator."""

    def __init__(self, shards: Sequence[EngineShard], router: StreamRouter,
                 coordinator: HeadroomCoordinator,
                 bus=None, health: bool = False, trace: bool = False,
                 tuptrace: float = 0.0,
                 serve: bool = False, serve_port: Optional[int] = None,
                 sysid: bool = False, flight: int = 0,
                 flight_dir: str = "incidents"):
        if not shards:
            raise ServiceError("a service needs at least one shard")
        if router.n_shards != len(shards):
            raise ServiceError(
                f"router covers {router.n_shards} shards but the service "
                f"has {len(shards)}"
            )
        periods = {shard.loop.period for shard in shards}
        if len(periods) != 1:
            raise ServiceError(
                "all shards must share one control period for lockstep "
                f"operation, got {sorted(periods)}"
            )
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ServiceError(f"shard names must be unique, got {names}")
        self.shards = list(shards)
        self.router = router
        self.coordinator = coordinator
        self.period = next(iter(periods))
        #: fleet observability: each shard's loop and engine emit through a
        #: shard-scoped view of this bus, so one subscription sees every
        #: shard's events, labeled. The coordinator emits fleet-level
        #: events on the bus directly.
        self.bus = bus if bus is not None else get_bus()
        self.health = health
        self.trace = trace
        self.tuptrace = float(tuptrace)
        self.serve = serve
        self.serve_port = serve_port
        self.sysid = sysid
        #: online plant identification over the shard period streams;
        #: a pure bus observer, so enabling it never perturbs the loop
        self.sysid_monitor = SysIdMonitor(self.bus) if sysid else None
        #: bounded incident flight recorder; :func:`build_service` fills in
        #: the experiment/service snapshots and replay spec for its bundles
        self.flight_recorder = None
        if flight > 0:
            self.flight_recorder = FlightRecorder(
                self.bus, ring=flight, directory=flight_dir,
                runtime="lockstep", status_fn=self.status)
        #: the live ObsServer while a served run is in flight; None otherwise
        self.obs_server = None
        self._k = -1          # last closed period, for the /status view
        self._running = False
        for i, shard in enumerate(self.shards):
            scoped = self.bus.scoped(shard.name)
            shard.loop.bus = scoped
            shard.engine.bus = scoped
            if self.tuptrace > 0.0:
                # distinct seeds so shards sample distinct (but each
                # reproducible) tuple sets; traces emit on the scoped bus
                shard.loop.tuple_tracer = TupleTracer(
                    fraction=self.tuptrace, seed=104729 * (i + 1),
                    bus=scoped, shard=shard.name)
        self.coordinator.bus = self.bus

    def status(self) -> dict:
        """A live JSON-able view of the fleet (the ``/status`` payload)."""
        policy = self.coordinator.migration_policy
        return {
            "mode": self.coordinator.mode,
            "period": self.period,
            "n_shards": len(self.shards),
            "k": self._k,
            "running": self._running,
            "routing_epoch": getattr(self.router, "epoch", None),
            "migrations": policy.migrations if policy is not None else 0,
            "shards": {
                shard.name: {
                    "headroom": shard.headroom,
                    "target": shard.target,
                    "alpha": shard.requested_alpha,
                }
                for shard in self.shards
            },
        }

    def run(self, arrivals: Sequence[Arrival], duration: float) -> ServiceResult:
        """Drive all shards for ``duration`` seconds of virtual time.

        With ``serve=True`` an :class:`~repro.obs.serve.ObsServer` is up
        for exactly the duration of this call (:attr:`obs_server` holds
        it, e.g. to learn the bound port), serving this service's bus and
        :meth:`status`.
        """
        if duration <= 0:
            raise ServiceError("duration must be positive")
        if self.serve:
            from ..obs.serve import ObsServer  # lazy: serving is opt-in

            self.obs_server = ObsServer(port=self.serve_port, bus=self.bus,
                                        status_fn=self.status,
                                        flight=self.flight_recorder).start()
        self._running = True
        try:
            return self._run(arrivals, duration)
        finally:
            self._running = False
            if self.obs_server is not None:
                self.obs_server.stop()
                self.obs_server = None

    def _run(self, arrivals: Sequence[Arrival], duration: float) -> ServiceResult:
        # the flight recorder needs a monitor to trigger auto-dumps even
        # when health reporting itself was not requested
        monitor = None
        if self.health or self.flight_recorder is not None:
            monitor = HealthMonitor(self.bus)
        if monitor is not None and self.flight_recorder is not None:
            self.flight_recorder.watch(monitor)
        svc_tracer: Optional[PeriodTracer] = None
        if self.trace:
            svc_tracer = PeriodTracer()
            for shard in self.shards:
                shard.loop.tracer = PeriodTracer()
        wall_start = _time.perf_counter()
        n_periods = int(round(duration / self.period))
        table = self.router if isinstance(self.router, RoutingTable) else None
        dispatcher = PeriodDispatcher(self.router, arrivals)
        records = [shard.loop.begin() for shard in self.shards]
        for k in range(n_periods):
            boundary = (k + 1) * self.period
            if svc_tracer is not None:
                with svc_tracer.span("dispatch"):
                    per_shard, counts = dispatcher.due(boundary)
            else:
                per_shard, counts = dispatcher.due(boundary)
            closed = []
            for i, shard in enumerate(self.shards):
                # logical stream names route tuples to shards; inside the
                # shard they all enter at its physical source
                due = [(t, values, shard.entry_source)
                       for t, values, __ in per_shard[i]]
                closed.append(shard.loop.run_period(records[i], k, due))
            if svc_tracer is not None:
                with svc_tracer.span("coordinator"):
                    entry = self.coordinator.rebalance(
                        k, self.shards, closed,
                        source_counts=counts, table=table)
            else:
                entry = self.coordinator.rebalance(
                    k, self.shards, closed,
                    source_counts=counts, table=table)
            plan = entry.get("migration")
            if plan is not None:
                execute_migration(k, plan, self.shards, table, bus=self.bus)
            self._k = k
        for shard, record in zip(self.shards, records):
            shard.loop.finish(record, n_periods)
        wall = _time.perf_counter() - wall_start
        base_target = self.shards[0].base_target
        health_summary = None
        if monitor is not None:
            monitor.finalize()
            monitor.close()
            if self.health:
                health_summary = monitor.summary()
        sysid_summary = None
        if self.sysid_monitor is not None:
            sysid_summary = self.sysid_monitor.summary()
            self.sysid_monitor.close()
        incidents = None
        if self.flight_recorder is not None:
            incidents = [str(p) for p in self.flight_recorder.incidents]
            self.flight_recorder.close()
        trace_summary = None
        if svc_tracer is not None:
            flames = {shard.name: shard.loop.tracer.flame()
                      for shard in self.shards}
            flames["service"] = svc_tracer.flame()
            trace_summary = merge_flames(flames, wall_seconds=wall)
        tail_summary = None
        if self.tuptrace > 0.0:
            tail_summary = {}
            for shard in self.shards:
                ttr = shard.loop.tuple_tracer
                if ttr is None:
                    continue
                analyzer = ttr.analyzer()
                tail_summary[shard.name] = {
                    "sampled": ttr.sampled,
                    "completed": ttr.completed,
                    "dropped": ttr.dropped,
                    "percentiles": analyzer.percentiles(),
                    "decomposition": analyzer.decompose(),
                }
        return ServiceResult(
            mode=self.coordinator.mode,
            base_target=base_target,
            shard_records={shard.name: record
                           for shard, record in zip(self.shards, records)},
            coordinator_history=list(self.coordinator.history),
            wall_seconds=wall,
            health=health_summary,
            trace_summary=trace_summary,
            tail_summary=tail_summary,
            sysid=sysid_summary,
            incidents=incidents,
        )


def build_service(config: "ExperimentConfig",
                  svc: ServiceConfig) -> StreamService:
    """Assemble shards + router + coordinator from picklable specs."""
    headrooms = svc.initial_headrooms()
    shards = [
        build_shard(
            name,
            config,
            headroom=headrooms[i],
            target=config.target,
            strategy=svc.strategy,
            engine_seed=config.seed + 104729 * (i + 1),
            drain_max_extra=svc.drain_max_extra,
            backend=svc.backend,
        )
        for i, name in enumerate(svc.shard_names)
    ]
    assignments = (svc.default_assignments()
                   if svc.router == "explicit" else None)
    router = make_router(svc.router, svc.n_shards, assignments)
    policy = None
    if svc.migration:
        policy = MigrationPolicy(
            patience=svc.migration_patience,
            cooldown=svc.migration_cooldown,
            deficit=svc.migration_deficit,
            max_migrations=svc.max_migrations,
            drain_budget=svc.migration_drain_budget,
        )
    coordinator = HeadroomCoordinator(
        mode=svc.mode,
        gain=svc.rebalance_gain,
        headroom_floor=svc.headroom_floor,
        headroom_ceiling=svc.headroom_ceiling,
        loss_bound=svc.loss_bound,
        migration_policy=policy,
    )
    service = StreamService(shards, router, coordinator,
                            health=svc.health, trace=svc.trace,
                            tuptrace=svc.tuptrace,
                            serve=svc.serve, serve_port=svc.serve_port,
                            sysid=svc.sysid, flight=svc.flight,
                            flight_dir=svc.flight_dir)
    if service.flight_recorder is not None:
        # a lockstep run is a pure function of these two specs, so the
        # bundle carries everything ``flight replay`` needs
        service.flight_recorder.experiment = config
        service.flight_recorder.service = svc
        service.flight_recorder.replay_spec = {
            "kind": "service", "service_kind": "lockstep",
            "sync": True, "workload_kind": "web",
        }
    return service
