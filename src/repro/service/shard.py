"""One engine shard: a full Monitor -> Controller -> Actuator loop.

A shard is the paper's entire Fig. 3 system in miniature — its own
discrete-event engine over its own query network, its own monitor, cost
estimator, controller and entry actuator — plus the mutation points the
global coordinator needs between control periods:

* :meth:`EngineShard.set_target` — shift the shard's delay budget;
* :meth:`EngineShard.set_headroom` — shift the shard's share of the
  machine's CPU. The engine, the model the monitor estimates with, and
  the controller's gain all follow the new ``H`` at the next period, so
  the pole placement stays where it was designed (the controller gain
  ``H/(cT)`` cancels the plant gain ``cT/H`` at whatever ``H`` is in
  force — see docs/THEORY.md §7);
* :meth:`EngineShard.cap_alpha` — bound the shard's entry-drop
  probability (the coordinator-reconciled global loss SLA);
* :meth:`EngineShard.drain_source` — flush the shard's in-flight work so
  a source can be migrated to another shard without leaving half-filled
  windows behind (docs/THEORY.md §13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..core import (
    AdaptiveController,
    AuroraOpenLoopController,
    BackpressureController,
    BaselineController,
    ControlLoop,
    Controller,
    DsmsModel,
    EntryActuator,
    Monitor,
    PolePlacementController,
)
from ..dsms import EngineProtocol, identification_network, make_engine
from ..errors import ServiceError
from ..obs.events import (
    AlphaCapped,
    HeadroomChanged,
    MigrationCompleted,
    MigrationStarted,
)
from ..shedding import BoundedEntryShedder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from ..experiments.config import ExperimentConfig

@dataclass(frozen=True)
class DrainReport:
    """What one :meth:`EngineShard.drain_source` call accomplished.

    ``virtual_seconds`` is engine time consumed (the migration's service
    disruption in the modelled clock); ``truncated`` means the drain
    budget expired first and ``leftover`` tuples stay on the old shard.
    """

    source: str
    backlog: int            # outstanding tuples when the drain started
    drained: int            # departures produced by the drain
    leftover: int           # still queued when the drain stopped
    virtual_seconds: float  # engine-clock time the drain consumed
    truncated: bool


#: controller factories a picklable service spec may name
SHARD_CONTROLLERS: Dict[str, Callable[[DsmsModel], Controller]] = {
    "CTRL": PolePlacementController,
    "BASELINE": BaselineController,
    "AURORA": AuroraOpenLoopController,
    "BACKPRESSURE": BackpressureController,
    "ADAPTIVE": AdaptiveController,
}


class EngineShard:
    """A named engine + control loop, adjustable by the coordinator.

    Logical stream names are a routing concept; inside the shard every
    admitted tuple enters the query network at one physical source,
    ``entry_source`` (resolved to the network's single source unless given
    explicitly).
    """

    def __init__(self, name: str, engine: EngineProtocol, loop: ControlLoop,
                 model: DsmsModel, base_target: float,
                 entry_source: Optional[str] = None):
        self.name = name
        self.engine = engine
        self.loop = loop
        self.model = model
        #: the shard's own QoS requirement, before any coordination
        self.base_target = float(base_target)
        self.target = float(base_target)
        network = getattr(engine, "network", None)
        if network is None:
            # fluid backends have no query network: a single implicit
            # source accepts everything, under whatever name the router
            # uses (the engines ignore it)
            entry_source = entry_source or "in"
        elif entry_source is None:
            sources = list(network.sources)
            if len(sources) != 1:
                raise ServiceError(
                    f"shard {name!r} hosts a network with sources {sources}; "
                    "pass entry_source explicitly"
                )
            entry_source = sources[0]
        elif entry_source not in network.sources:
            raise ServiceError(
                f"entry source {entry_source!r} not in shard {name!r}'s network"
            )
        #: where routed tuples physically enter this shard's network
        self.entry_source = entry_source

    # ------------------------------------------------------------------ #
    # coordinator mutation points
    # ------------------------------------------------------------------ #
    @property
    def headroom(self) -> float:
        return self.engine.headroom

    def set_headroom(self, headroom: float) -> None:
        """Re-share the machine: applies from the next operator execution."""
        if not 0.0 < headroom <= 1.0:
            raise ServiceError(
                f"shard headroom must be in (0, 1], got {headroom}"
            )
        old = self.engine.headroom
        self.engine.headroom = float(headroom)
        self.model = replace(self.model, headroom=float(headroom))
        self.loop.monitor.model = self.model
        self.loop.controller.model = self.model
        bus = self.loop.bus
        if bus and headroom != old:
            bus.emit(HeadroomChanged(old=old, new=float(headroom),
                                     shard=self.name))

    def set_target(self, target: float) -> None:
        """Adjust the delay target the loop regulates toward."""
        if target < 0:
            raise ServiceError(f"negative delay target {target}")
        self.target = float(target)
        self.loop.set_target(float(target))

    def cap_alpha(self, alpha_cap: float) -> None:
        """Bound the entry shedder's drop probability (no-op otherwise)."""
        shedder = getattr(self.loop.actuator, "shedder", None)
        if isinstance(shedder, BoundedEntryShedder):
            shedder.cap(alpha_cap)
            bus = self.loop.bus
            if bus and alpha_cap < 1.0:
                # only a binding cap is news; cap=1.0 just lifts a prior one
                bus.emit(AlphaCapped(cap=float(alpha_cap), shard=self.name))

    # ------------------------------------------------------------------ #
    # migration support
    # ------------------------------------------------------------------ #
    def drain_source(self, source: str, budget: float,
                     k: int = -1, to_shard: int = -1,
                     from_shard: int = -1) -> DrainReport:
        """Flush in-flight work so ``source`` can move to another shard.

        Every admitted tuple enters this shard at one physical
        ``entry_source``, so the engine's outstanding queue is the union
        of all logical sources routed here — partially-filled windows
        included. Draining the *whole* queue (rather than trying to pick
        one logical source's tuples out of shared operator state) is what
        keeps windowed-operator semantics intact at the cutover: nothing
        the old shard already admitted is discarded or split, it all
        completes here before the source's future tuples route elsewhere
        (docs/THEORY.md §13).

        Advances the engine's *virtual* clock by at most ``budget``
        seconds, in chunks, stopping early once the queue empties.
        Running past a period boundary is safe: the control loop clamps
        the next period's submissions to the engine clock and runs to
        ``max(boundary, now)``, so a drain never manufactures late
        arrivals. Departures stay in the engine's departure buffer for
        the monitor's next sample, so QoS accounting still sees them.
        """
        if budget < 0:
            raise ServiceError(f"negative drain budget {budget}")
        engine = self.engine
        backlog = engine.outstanding
        bus = self.loop.bus
        if bus:
            bus.emit(MigrationStarted(k=k, source=source,
                                      from_shard=from_shard,
                                      to_shard=to_shard,
                                      backlog=backlog, shard=self.name))
        start_now = engine.now
        departed0 = engine.departed_total
        deadline = start_now + float(budget)
        chunk = max(float(budget) / 16.0, 1e-6)
        ttr = self.loop.tuple_tracer
        if ttr is not None:
            # sampled tuples executed during this drain record the hop as
            # "drain" spans labelled with the migrating source
            with ttr.drain_scope(f"migrate:{source}"):
                while engine.outstanding > 0 and engine.now < deadline:
                    engine.run_until(min(engine.now + chunk, deadline))
        else:
            while engine.outstanding > 0 and engine.now < deadline:
                engine.run_until(min(engine.now + chunk, deadline))
        leftover = engine.outstanding
        report = DrainReport(
            source=source,
            backlog=backlog,
            drained=engine.departed_total - departed0,
            leftover=leftover,
            virtual_seconds=engine.now - start_now,
            truncated=leftover > 0,
        )
        if bus:
            bus.emit(MigrationCompleted(
                k=k, source=source, from_shard=from_shard, to_shard=to_shard,
                drained=report.drained, leftover=report.leftover,
                virtual_seconds=report.virtual_seconds,
                truncated=report.truncated, shard=self.name))
        return report

    # ------------------------------------------------------------------ #
    # coordinator observation points
    # ------------------------------------------------------------------ #
    @property
    def requested_alpha(self) -> float:
        """The controller's uncapped drop demand for the armed period."""
        shedder = getattr(self.loop.actuator, "shedder", None)
        if isinstance(shedder, BoundedEntryShedder):
            return shedder.requested_alpha
        return getattr(self.loop.actuator, "alpha", 0.0)


def build_shard(name: str,
                config: "ExperimentConfig",
                headroom: float,
                target: float,
                strategy: str = "CTRL",
                engine_seed: int = 0,
                drain_max_extra: float = 600.0,
                backend: str = "full") -> EngineShard:
    """A fresh identification-network shard at the given headroom share.

    ``backend`` selects the shard's engine through
    :func:`repro.dsms.make_engine`: ``"full"`` hosts a real
    identification network, the fluid backends model it as the Eq. 2
    virtual queue (cheaper fleets for policy studies).
    """
    try:
        factory = SHARD_CONTROLLERS[strategy]
    except KeyError:
        raise ServiceError(
            f"unknown shard strategy {strategy!r}; "
            f"pick from {sorted(SHARD_CONTROLLERS)}"
        ) from None
    if backend == "full":
        network = identification_network(capacity=config.capacity)
        engine = make_engine("full", network=network, headroom=headroom,
                             rng=random.Random(engine_seed))
    else:
        engine = make_engine(backend, cost=config.base_cost,
                             headroom=headroom)
    model = DsmsModel(cost=config.base_cost, headroom=headroom,
                      period=config.period)
    monitor = Monitor(engine, model,
                      cost_estimator=config.make_cost_estimator())
    controller = factory(model)
    actuator = EntryActuator(
        shedder=BoundedEntryShedder(random.Random(engine_seed + 1))
    )
    loop = ControlLoop(
        engine, controller, monitor, actuator,
        target=target,
        period=config.period,
        cycle_cost=config.control_overhead,
        drain_max_extra=drain_max_extra,
    )
    return EngineShard(name, engine, loop, model, base_target=target)
