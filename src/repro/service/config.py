"""Configuration of the sharded multi-stream service.

A :class:`ServiceConfig` is a frozen, picklable spec: combined with the
usual :class:`~repro.experiments.config.ExperimentConfig` it fully
determines a service run, so the experiment process pool can fan service
runs out exactly like single-loop jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..errors import ServiceError

#: default machine-level CPU fraction available for query processing —
#: the paper's H, now shared by all shards on the machine
DEFAULT_TOTAL_HEADROOM = 0.97


@dataclass(frozen=True)
class ServiceConfig:
    """All knobs of a sharded service run (picklable)."""

    n_shards: int = 4
    router: str = "explicit"            # 'hash' | 'explicit'
    mode: str = "headroom"              # 'independent' | 'target' | 'headroom'
    rebalance_gain: float = 0.5
    total_headroom: float = DEFAULT_TOTAL_HEADROOM
    headroom_floor: float = 0.02
    headroom_ceiling: float = 0.97
    loss_bound: Optional[float] = None  # global drop SLA (fraction), None = off
    strategy: str = "CTRL"              # per-shard controller
    #: engine backend per shard, resolved through repro.dsms.make_engine
    #: ('full' | 'fluid' | 'batch')
    backend: str = "full"
    drain_max_extra: float = 600.0
    # skew/hotspot workload shape
    n_sources: int = 4
    hotspot_factor: float = 3.0
    hotspot_index: int = 0
    per_source_rate: Optional[float] = None  # tuples/s of a regular source;
                                             # None -> 55% of one shard's
                                             # baseline capacity
    # live source migration (the coordinator's second actuator): move a
    # source off a shard whose headroom deficit persists after rebalancing
    migration: bool = False
    #: consecutive post-rebalance deficit periods before a move triggers
    migration_patience: int = 4
    #: periods to wait after any migration before considering another
    migration_cooldown: int = 12
    #: headroom deficit (demand - allocation) that counts as "still hot"
    migration_deficit: float = 0.10
    #: virtual seconds the old shard may spend draining at cutover
    migration_drain_budget: float = 5.0
    #: hard cap on moves per run; None = unlimited
    max_migrations: Optional[int] = None
    # observability (repro.obs): run online health detectors / per-period
    # wall-clock tracing alongside the fleet
    health: bool = False
    trace: bool = False
    #: sampled per-tuple lifecycle tracing (repro.obs.tuptrace): fraction
    #: of source arrivals stamped with a TraceContext, 0.0 = off
    tuptrace: float = 0.0
    #: serve live /metrics, /health, /status, /events and the dashboard
    #: over HTTP for the duration of the run (repro.obs.serve.ObsServer)
    serve: bool = False
    serve_port: Optional[int] = None    # None -> REPRO_OBS_PORT or ephemeral
    #: online system identification (repro.obs.sysid): per-shard RLS gain
    #: tracking + live stability margins, feeding the health detectors
    sysid: bool = False
    #: flight recorder ring size in periods (repro.obs.flight); 0 = off.
    #: With health on, any critical episode opening auto-dumps an
    #: incident bundle into ``flight_dir``
    flight: int = 0
    flight_dir: str = "incidents"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServiceError(f"need at least one shard, got {self.n_shards}")
        if self.n_sources < 1:
            raise ServiceError(f"need at least one source, got {self.n_sources}")
        if not 0.0 < self.total_headroom <= 1.0:
            raise ServiceError(
                f"total headroom must be in (0, 1], got {self.total_headroom}"
            )
        if not 0 <= self.hotspot_index < self.n_sources:
            raise ServiceError(
                f"hotspot index {self.hotspot_index} outside "
                f"[0, {self.n_sources})"
            )
        if self.hotspot_factor <= 0:
            raise ServiceError(
                f"hotspot factor must be positive, got {self.hotspot_factor}"
            )
        share = self.total_headroom / self.n_shards
        if not self.headroom_floor <= share <= self.headroom_ceiling:
            raise ServiceError(
                f"equal split {share:.4f} falls outside the per-shard bounds "
                f"[{self.headroom_floor}, {self.headroom_ceiling}]"
            )
        if self.migration_patience < 1:
            raise ServiceError(
                f"migration_patience must be >= 1, got "
                f"{self.migration_patience}"
            )
        if self.migration_cooldown < 0:
            raise ServiceError(
                f"migration_cooldown must be >= 0, got "
                f"{self.migration_cooldown}"
            )
        if self.migration_deficit < 0:
            raise ServiceError(
                f"migration_deficit must be >= 0, got {self.migration_deficit}"
            )
        if self.migration_drain_budget < 0:
            raise ServiceError(
                f"migration_drain_budget must be >= 0, got "
                f"{self.migration_drain_budget}"
            )
        if self.max_migrations is not None and self.max_migrations < 0:
            raise ServiceError(
                f"max_migrations must be >= 0, got {self.max_migrations}"
            )
        if self.flight < 0:
            raise ServiceError(
                f"flight ring size must be >= 0, got {self.flight}"
            )
        if not 0.0 <= self.tuptrace <= 1.0:
            raise ServiceError(
                f"tuptrace sample fraction must be in [0, 1], "
                f"got {self.tuptrace}"
            )
        if self.migration and self.mode != "headroom":
            raise ServiceError(
                "migration needs mode='headroom': the policy triggers on "
                "the headroom rebalancer's per-shard demand signal"
            )

    @property
    def source_names(self) -> Tuple[str, ...]:
        return tuple(f"s{j}" for j in range(self.n_sources))

    @property
    def shard_names(self) -> Tuple[str, ...]:
        return tuple(f"shard{i}" for i in range(self.n_shards))

    def initial_headrooms(self) -> List[float]:
        """The balanced starting split of the machine's CPU."""
        return [self.total_headroom / self.n_shards] * self.n_shards

    def default_assignments(self) -> dict:
        """Round-robin source -> shard pinning for the explicit router."""
        return {name: j % self.n_shards
                for j, name in enumerate(self.source_names)}

    def with_mode(self, mode: str) -> "ServiceConfig":
        """A copy in a different coordination mode (for A/B comparisons)."""
        return replace(self, mode=mode)


@dataclass(frozen=True)
class FleetConfig(ServiceConfig):
    """A :class:`ServiceConfig` that runs as a true-parallel process fleet.

    Same shards, router, coordinator and workload knobs — plus the
    execution-model knobs of :class:`~repro.service.fleet.ProcessFleet`:
    every shard becomes its own worker process, and the coordinator runs
    in the parent over relayed per-period summaries.

    ``sync=True`` is deterministic mode: workers advance in lockstep with
    the coordinator (a command barrier per period), reproducing the
    single-process :class:`~repro.service.service.StreamService`
    trajectory float-for-float. ``sync=False`` is wall-clock mode:
    workers free-run their control periods and apply coordinator
    commands whenever they arrive (see docs/THEORY.md §11 for why the
    asynchronous periods preserve the paper's stability argument).
    """

    #: command barrier per period (deterministic, lockstep-equivalent)
    sync: bool = True
    #: how many times one shard's worker may die and be replayed before
    #: the whole run is declared failed
    max_restarts: int = 2
    #: multiprocessing start method; None picks ``fork`` when the
    #: platform offers it (cheapest spawn), else the platform default
    start_method: Optional[str] = None
    #: forward worker events to the parent bus through an EventRelay
    #: (implied by ``serve``/``health``, which consume parent-side events)
    relay: bool = False
    #: seconds a worker waits on its command queue (sync mode) and the
    #: parent waits without any fleet progress before declaring a stall
    worker_patience: float = 120.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.worker_patience <= 0:
            raise ServiceError(
                f"worker_patience must be positive, got {self.worker_patience}"
            )

    def as_lockstep(self) -> ServiceConfig:
        """The equivalent single-process spec (for A/B and equivalence runs).

        Drops the fleet-only knobs and disables serving so a side-by-side
        lockstep run never fights the fleet over the observability port.
        """
        from dataclasses import fields
        kwargs = {f.name: getattr(self, f.name) for f in fields(ServiceConfig)}
        kwargs["serve"] = False
        return ServiceConfig(**kwargs)
