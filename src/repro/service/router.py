"""Stream routing: one versioned table, shared by every runtime.

A sharded service runs N independent engines; routing decides which
shard serves which *source*. Historically each runtime kept its own
routing path (the lockstep service partitioned arrivals up front, the
process fleet shipped pre-cut slices to workers, the live server pinned
every socket tuple to one loop); all three now route through a single
mutable :class:`RoutingTable`:

* **hash fallback** — a stable CRC32 hash of the source name (identical
  across processes and Python hash randomization), so unknown sources
  spread evenly without configuration;
* **explicit pins** — per-source overrides on top of the hash, for
  deployments that dedicate shards to heavy sources *and* for live
  migration, which is nothing but a re-pin;
* **epochs** — every mutation bumps the table's global ``epoch`` and
  stamps the touched source with it. Epochs are strictly monotone per
  source, which is what lets a fleet worker's table *replica* apply
  journalled route updates idempotently and in order: a cutover is
  journalled as ``("route", (source, shard, epoch))`` and replay
  reproduces the exact routing the original run used at every period.

Routing is per-source, never per-tuple: all tuples of one source land on
one shard, so per-shard delay statistics stay meaningful and windowed
operators never see a split stream. A migration moves the *whole*
source at a period boundary — see :meth:`RoutingTable.migrate` and
docs/THEORY.md §13 for why drain-before-cutover keeps both properties.

:class:`HashRouter` and :class:`ExplicitRouter` remain as thin
constructors over the table (pure-hash and pins-only respectively).
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ServiceError

Arrival = Tuple[float, Tuple, str]


class StreamRouter(abc.ABC):
    """Maps source names to shard indices in ``[0, n_shards)``."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ServiceError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards

    @abc.abstractmethod
    def shard_of(self, source: str) -> int:
        """The shard index serving ``source``."""

    def partition(self, arrivals: Sequence[Arrival]) -> List[List[Arrival]]:
        """Split one time-ordered arrival list into per-shard lists.

        Each output list preserves the input's time order (stable split).
        The split reflects the router's mapping *at call time*; callers
        that must follow live mutations partition per period.
        """
        out: List[List[Arrival]] = [[] for __ in range(self.n_shards)]
        cache: Dict[str, int] = {}
        for arrival in arrivals:
            source = arrival[2]
            shard = cache.get(source)
            if shard is None:
                shard = self.shard_of(source)
                if not 0 <= shard < self.n_shards:
                    raise ServiceError(
                        f"router mapped source {source!r} to shard {shard}, "
                        f"outside [0, {self.n_shards})"
                    )
                cache[source] = shard
            out[shard].append(arrival)
        return out


@dataclass(frozen=True)
class RouteEntry:
    """One source's current route: where, since which epoch, and why."""

    source: str
    shard: int
    epoch: int      # table epoch when this entry was last (re)pinned;
                    # 0 for hash-derived (never-pinned) entries
    pinned: bool    # explicit pin vs CRC32 fallback


class RoutingTable(StreamRouter):
    """Versioned, mutable source -> shard mapping.

    The one routing abstraction every runtime shares: the lockstep
    :class:`~repro.service.service.StreamService` routes each period's
    due arrivals through it, :class:`~repro.service.fleet.ProcessFleet`
    workers hold a replica kept in sync by journalled route ops, and the
    live :class:`~repro.serve.live.LiveService` routes socket tuples at
    every tick — so a migrated source follows its new shard everywhere
    without clients reconnecting.

    Mutations (:meth:`pin`, :meth:`unpin`, :meth:`migrate`) bump the
    global ``epoch`` and stamp the touched source with it; per-source
    epochs are strictly monotone, which replicas enforce in
    :meth:`apply_route`.
    """

    def __init__(self, n_shards: int,
                 pins: Optional[Mapping[str, int]] = None,
                 hash_fallback: bool = True):
        super().__init__(n_shards)
        self.hash_fallback = hash_fallback
        self.epoch = 0
        self._pins: Dict[str, int] = {}
        self._source_epochs: Dict[str, int] = {}
        self._memo: Dict[str, int] = {}
        if pins:
            for source, shard in pins.items():
                self._check_shard(source, shard)
                self._pins[source] = int(shard)
                self._source_epochs[source] = 0

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def shard_of(self, source: str) -> int:
        shard = self._memo.get(source)
        if shard is not None:
            return shard
        shard = self._pins.get(source)
        if shard is None:
            if not self.hash_fallback:
                raise ServiceError(
                    f"source {source!r} has no shard assignment"
                )
            shard = zlib.crc32(source.encode("utf-8")) % self.n_shards
        self._memo[source] = shard
        return shard

    def entry_of(self, source: str) -> RouteEntry:
        """The full route entry (shard, epoch, pin provenance)."""
        pinned = source in self._pins
        return RouteEntry(source=source,
                          shard=self.shard_of(source),
                          epoch=self._source_epochs.get(source, 0),
                          pinned=pinned)

    def source_epoch(self, source: str) -> int:
        """The epoch of the source's last (re)pin; 0 if never pinned."""
        return self._source_epochs.get(source, 0)

    def routes(self) -> Dict[str, int]:
        """The explicit pins as a plain dict (hash fallback not listed)."""
        return dict(self._pins)

    # ------------------------------------------------------------------ #
    # mutations (each bumps the global epoch)
    # ------------------------------------------------------------------ #
    def pin(self, source: str, shard: int) -> int:
        """Pin ``source`` to ``shard``; returns the new table epoch."""
        self._check_shard(source, shard)
        self.epoch += 1
        self._pins[source] = int(shard)
        self._source_epochs[source] = self.epoch
        self._memo.clear()
        return self.epoch

    def unpin(self, source: str) -> int:
        """Drop an explicit pin (back to hash); returns the new epoch."""
        if source not in self._pins:
            raise ServiceError(f"source {source!r} is not pinned")
        if not self.hash_fallback:
            raise ServiceError(
                f"cannot unpin {source!r}: this table has no hash fallback"
            )
        self.epoch += 1
        del self._pins[source]
        self._source_epochs[source] = self.epoch
        self._memo.clear()
        return self.epoch

    def migrate(self, source: str, from_shard: int, to_shard: int) -> int:
        """Re-pin ``source`` from ``from_shard`` to ``to_shard``.

        This is the cutover step of the migration transaction (the
        runtime drains the old shard *before* calling this, and journals
        the returned epoch — see docs/THEORY.md §13). Validates that the
        source currently routes to ``from_shard``, so a stale plan can
        never silently re-route a source that already moved.
        """
        current = self.shard_of(source)
        if current != from_shard:
            raise ServiceError(
                f"migration of {source!r} expected it on shard "
                f"{from_shard}, but it routes to {current}"
            )
        if to_shard == from_shard:
            raise ServiceError(
                f"migration of {source!r} to its own shard {to_shard}"
            )
        self._check_shard(source, to_shard)
        return self.pin(source, to_shard)

    def apply_route(self, source: str, shard: int, epoch: int) -> None:
        """Replica side: apply one journalled/downlinked route update.

        Enforces strict per-source epoch monotonicity — an out-of-order
        or replayed-twice update is a protocol violation, not a no-op,
        because silent reordering would desynchronize the replica from
        the authoritative table mid-run.
        """
        self._check_shard(source, shard)
        last = self._source_epochs.get(source, 0)
        if epoch <= last:
            raise ServiceError(
                f"route update for {source!r} carries epoch {epoch} "
                f"<= already-applied epoch {last}"
            )
        self._pins[source] = int(shard)
        self._source_epochs[source] = epoch
        self.epoch = max(self.epoch, epoch)
        self._memo.clear()

    # ------------------------------------------------------------------ #
    # replication
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A picklable/JSON-able image of the whole table."""
        return {
            "n_shards": self.n_shards,
            "hash_fallback": self.hash_fallback,
            "epoch": self.epoch,
            "pins": dict(self._pins),
            "source_epochs": dict(self._source_epochs),
        }

    @classmethod
    def from_snapshot(cls, doc: Mapping) -> "RoutingTable":
        """Rebuild a table (e.g. a worker replica) from :meth:`snapshot`."""
        table = cls(int(doc["n_shards"]),
                    hash_fallback=bool(doc.get("hash_fallback", True)))
        for source, shard in dict(doc.get("pins", {})).items():
            table._check_shard(source, shard)
            table._pins[source] = int(shard)
        table._source_epochs = {s: int(e) for s, e
                                in dict(doc.get("source_epochs", {})).items()}
        table.epoch = int(doc.get("epoch", 0))
        return table

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _check_shard(self, source: str, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ServiceError(
                f"assignment {source!r} -> {shard} outside "
                f"[0, {self.n_shards})"
            )


class HashRouter(RoutingTable):
    """Hash-by-source-name partitioning (CRC32 modulo shard count).

    CRC32 rather than :func:`hash` so the assignment is stable across
    interpreter runs and worker processes — a requirement for the
    deterministic parallel fan-out. A fresh pin-free
    :class:`RoutingTable`; migrations may pin sources later.
    """

    def __init__(self, n_shards: int):
        super().__init__(n_shards, hash_fallback=True)


class ExplicitRouter(RoutingTable):
    """Operator-pinned assignments: ``{source_name: shard_index}``.

    Pins-only (no hash fallback): an unknown source is a configuration
    error, not a silent hash placement.
    """

    def __init__(self, assignments: Mapping[str, int],
                 n_shards: Optional[int] = None):
        if not assignments:
            raise ServiceError("explicit router needs at least one assignment")
        inferred = max(assignments.values()) + 1
        super().__init__(inferred if n_shards is None else n_shards,
                         pins=assignments, hash_fallback=False)

    @property
    def assignments(self) -> Dict[str, int]:
        """The live pin table (kept for API compatibility)."""
        return self.routes()


def make_router(spec: str, n_shards: int,
                assignments: Optional[Mapping[str, int]] = None
                ) -> RoutingTable:
    """Build a routing table from a picklable spec string.

    ``'hash'`` and ``'explicit'`` mirror the historical router classes;
    every spec now yields a mutable :class:`RoutingTable`, so any
    service/fleet built through here supports live migration.
    """
    if spec == "hash":
        return HashRouter(n_shards)
    if spec == "explicit":
        if assignments is None:
            raise ServiceError("explicit routing needs an assignment table")
        return ExplicitRouter(assignments, n_shards)
    raise ServiceError(
        f"unknown router spec {spec!r}; use 'hash' or 'explicit'"
    )
