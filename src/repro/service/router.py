"""Stream router: partitions sources across engine shards.

A sharded service runs N independent engines; the router decides which
shard serves which *source*. Two policies:

* :class:`HashRouter` — stable hash of the source name (CRC32, so the
  mapping is identical across processes and Python hash randomization);
* :class:`ExplicitRouter` — an operator-provided assignment table, for
  deployments that pin heavy sources to dedicated shards.

Routing is per-source, never per-tuple: all tuples of one source land on
one shard, so per-shard delay statistics stay meaningful and windowed
operators never see a split stream.
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ServiceError

Arrival = Tuple[float, Tuple, str]


class StreamRouter(abc.ABC):
    """Maps source names to shard indices in ``[0, n_shards)``."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ServiceError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards

    @abc.abstractmethod
    def shard_of(self, source: str) -> int:
        """The shard index serving ``source``."""

    def partition(self, arrivals: Sequence[Arrival]) -> List[List[Arrival]]:
        """Split one time-ordered arrival list into per-shard lists.

        Each output list preserves the input's time order (stable split).
        """
        out: List[List[Arrival]] = [[] for __ in range(self.n_shards)]
        cache: Dict[str, int] = {}
        for arrival in arrivals:
            source = arrival[2]
            shard = cache.get(source)
            if shard is None:
                shard = self.shard_of(source)
                if not 0 <= shard < self.n_shards:
                    raise ServiceError(
                        f"router mapped source {source!r} to shard {shard}, "
                        f"outside [0, {self.n_shards})"
                    )
                cache[source] = shard
            out[shard].append(arrival)
        return out


class HashRouter(StreamRouter):
    """Hash-by-source-name partitioning (CRC32 modulo shard count).

    CRC32 rather than :func:`hash` so the assignment is stable across
    interpreter runs and worker processes — a requirement for the
    deterministic parallel fan-out.
    """

    def shard_of(self, source: str) -> int:
        return zlib.crc32(source.encode("utf-8")) % self.n_shards


class ExplicitRouter(StreamRouter):
    """Operator-pinned assignments: ``{source_name: shard_index}``."""

    def __init__(self, assignments: Mapping[str, int],
                 n_shards: Optional[int] = None):
        if not assignments:
            raise ServiceError("explicit router needs at least one assignment")
        inferred = max(assignments.values()) + 1
        super().__init__(inferred if n_shards is None else n_shards)
        for source, shard in assignments.items():
            if not 0 <= shard < self.n_shards:
                raise ServiceError(
                    f"assignment {source!r} -> {shard} outside "
                    f"[0, {self.n_shards})"
                )
        self.assignments = dict(assignments)

    def shard_of(self, source: str) -> int:
        try:
            return self.assignments[source]
        except KeyError:
            raise ServiceError(
                f"source {source!r} has no shard assignment"
            ) from None


def make_router(spec: str, n_shards: int,
                assignments: Optional[Mapping[str, int]] = None
                ) -> StreamRouter:
    """Build a router from a picklable spec string (``'hash'``/``'explicit'``)."""
    if spec == "hash":
        return HashRouter(n_shards)
    if spec == "explicit":
        if assignments is None:
            raise ServiceError("explicit routing needs an assignment table")
        return ExplicitRouter(assignments, n_shards)
    raise ServiceError(
        f"unknown router spec {spec!r}; use 'hash' or 'explicit'"
    )
