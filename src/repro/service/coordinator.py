"""The global headroom coordinator (supervisory layer over N shard loops).

Once per control period — after every shard has closed its period and
armed its actuator — the coordinator aggregates the per-shard state
(delay estimates, queue lengths, offered load, cost estimates) and
rebalances the fleet. Three modes:

* ``"independent"`` — no rebalancing: N paper loops running side by side
  (the baseline the coordinated modes are judged against);
* ``"headroom"`` — sum-preserving reallocation of the machine's CPU
  share: each shard's demand is its offered CPU load plus a backlog
  catch-up term, the total headroom is split proportionally to demand
  (bounded per shard), and each shard moves a ``gain`` fraction of the
  way to its allocation per period. Because both the old and the new
  allocation vectors sum to the same total, the machine is never
  oversubscribed;
* ``"target"`` — sum-preserving delay-budget shift: shards whose delay
  estimate runs above their base target get a *tighter* operating target
  (their loop sheds earlier and harder, keeping actual delay under the
  base SLA instead of riding it), and the freed budget is parked on the
  shards running below their targets, where slack is free. The total
  budget ``sum(base_target)`` is invariant, so no shard's loop dynamics
  change — only the reference each loop tracks. The trade is explicit:
  lower worst-shard delay violation, bought with extra loss on the
  stressed shards.

Orthogonally to the mode, an optional ``loss_bound`` reconciles the
per-shard entry shedders against a global drop SLA: when the fleet's
expected drop fraction for the coming period exceeds the bound, every
shard's drop probability is scaled down proportionally to its demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from ..metrics.recorder import PeriodRecord
from ..obs.events import ShardRebalanced
from .shard import EngineShard

MODES = ("independent", "target", "headroom")


class HeadroomCoordinator:
    """Aggregates per-shard measurements and rebalances each period."""

    def __init__(self, mode: str = "headroom",
                 gain: float = 0.5,
                 headroom_floor: float = 0.02,
                 headroom_ceiling: float = 0.97,
                 target_floor_fraction: float = 0.25,
                 loss_bound: Optional[float] = None):
        if mode not in MODES:
            raise ServiceError(f"unknown coordinator mode {mode!r}; "
                               f"pick from {MODES}")
        if not 0.0 <= gain <= 1.0:
            raise ServiceError(f"rebalance gain {gain} outside [0, 1]")
        if not 0.0 < headroom_floor < headroom_ceiling <= 1.0:
            raise ServiceError(
                f"need 0 < floor < ceiling <= 1, got "
                f"[{headroom_floor}, {headroom_ceiling}]"
            )
        if not 0.0 < target_floor_fraction <= 1.0:
            raise ServiceError(
                f"target floor fraction {target_floor_fraction} outside (0, 1]"
            )
        if loss_bound is not None and not 0.0 <= loss_bound <= 1.0:
            raise ServiceError(f"loss bound {loss_bound} outside [0, 1]")
        self.mode = mode
        self.gain = gain
        self.headroom_floor = headroom_floor
        self.headroom_ceiling = headroom_ceiling
        self.target_floor_fraction = target_floor_fraction
        self.loss_bound = loss_bound
        #: one dict per period: what was observed and what was allocated
        self.history: List[dict] = []
        #: observability bus the service wires in; None = silent
        self.bus = None

    # ------------------------------------------------------------------ #
    # the once-per-period entry point
    # ------------------------------------------------------------------ #
    def rebalance(self, k: int, shards: Sequence[EngineShard],
                  periods: Sequence[PeriodRecord]) -> dict:
        """Observe period ``k``'s close and adjust the fleet for ``k + 1``."""
        if len(shards) != len(periods):
            raise ServiceError("one period record per shard required")
        entry: dict = {"k": k, "mode": self.mode}
        if self.mode == "headroom":
            self._rebalance_headroom(shards, periods, entry)
        elif self.mode == "target":
            self._rebalance_targets(shards, periods, entry)
        if self.loss_bound is not None:
            self._reconcile_drop_caps(shards, periods, entry)
        self.history.append(entry)
        bus = self.bus
        if bus is not None and bus and len(entry) > 2:
            # only decisions with substance (beyond k/mode) are events;
            # independent mode without a loss bound stays silent
            bus.emit(ShardRebalanced(k=k, mode=self.mode, detail=dict(entry)))
        return entry

    # ------------------------------------------------------------------ #
    # CPU-share rebalancing
    # ------------------------------------------------------------------ #
    def _rebalance_headroom(self, shards: Sequence[EngineShard],
                            periods: Sequence[PeriodRecord],
                            entry: dict) -> None:
        total = sum(s.headroom for s in shards)
        period = shards[0].loop.period
        demands = []
        for shard, p in zip(shards, periods):
            offered_rate = p.offered / period
            # catch-up: drain the current backlog within one target horizon
            backlog_rate = p.queue_length / max(shard.base_target, period)
            demands.append(max(p.cost * (offered_rate + backlog_rate), 1e-9))
        scale = total / sum(demands)
        shares = [d * scale for d in demands]
        alloc = _bounded_shares(shares, self.headroom_floor,
                                self.headroom_ceiling, total)
        new = []
        for shard, h_alloc in zip(shards, alloc):
            h = (1.0 - self.gain) * shard.headroom + self.gain * h_alloc
            shard.set_headroom(h)
            new.append(h)
        entry["demand"] = demands
        entry["headroom"] = new

    # ------------------------------------------------------------------ #
    # delay-budget rebalancing
    # ------------------------------------------------------------------ #
    def _rebalance_targets(self, shards: Sequence[EngineShard],
                           periods: Sequence[PeriodRecord],
                           entry: dict) -> None:
        n = len(shards)
        budget = sum(s.base_target for s in shards)
        # pressure: how far each shard's estimated delay runs above its own
        # base target; positive = stressed -> tighten its operating target
        # (shed earlier, keep actual delay under the base SLA) and park the
        # freed budget on the shards with slack
        errors = [p.delay_estimate - s.base_target
                  for s, p in zip(shards, periods)]
        mean_error = sum(errors) / n
        floors = [s.base_target * self.target_floor_fraction for s in shards]
        raw = [
            max(s.base_target - self.gain * (e - mean_error), floor)
            for s, e, floor in zip(shards, errors, floors)
        ]
        # re-center so the fleet's total delay budget is preserved exactly;
        # the correction is spread over the shards still above their floor
        new = list(raw)
        for __ in range(n):
            residual = budget - sum(new)
            if abs(residual) < 1e-12:
                break
            if residual > 0:
                adjustable = list(range(n))
            else:
                adjustable = [i for i in range(n) if new[i] > floors[i] + 1e-12]
                if not adjustable:
                    break
            step = residual / len(adjustable)
            for i in adjustable:
                new[i] = max(new[i] + step, floors[i])
        for shard, t in zip(shards, new):
            shard.set_target(t)
        entry["targets"] = new

    # ------------------------------------------------------------------ #
    # global drop-bound reconciliation
    # ------------------------------------------------------------------ #
    def _reconcile_drop_caps(self, shards: Sequence[EngineShard],
                             periods: Sequence[PeriodRecord],
                             entry: dict) -> None:
        # inflow weights: the same estimate the loops armed their shedders
        # with (this period's offered count as the forecast for the next)
        weights = [float(p.offered) for p in periods]
        requested = [s.requested_alpha for s in shards]
        total_inflow = sum(weights)
        if total_inflow <= 0:
            return
        demanded = sum(a * w for a, w in zip(requested, weights))
        allowed = self.loss_bound * total_inflow
        if demanded <= allowed:
            # inside the SLA: lift any caps from previous periods
            caps = [1.0] * len(shards)
        else:
            scale = allowed / demanded
            caps = [min(1.0, a * scale) for a in requested]
        for shard, cap in zip(shards, caps):
            shard.cap_alpha(cap)
        entry["alpha_caps"] = caps


def _bounded_shares(shares: Sequence[float], floor: float, ceiling: float,
                    total: float) -> List[float]:
    """Clamp shares into [floor, ceiling] while preserving their sum.

    Iterative water-filling: clamp, then spread the residual over the
    shards with room left (proportionally to that room). Each pass either
    finishes or saturates at least one shard, so ``n`` passes suffice.
    """
    n = len(shares)
    if n * floor > total + 1e-12 or n * ceiling < total - 1e-12:
        raise ServiceError(
            f"total headroom {total:.4f} cannot be split over {n} shards "
            f"within [{floor}, {ceiling}]"
        )
    alloc = [min(max(s, floor), ceiling) for s in shares]
    for __ in range(n):
        residual = total - sum(alloc)
        if abs(residual) < 1e-12:
            break
        if residual > 0:
            room = [ceiling - a for a in alloc]
        else:
            room = [floor - a for a in alloc]  # negative room
        total_room = sum(room)
        if abs(total_room) < 1e-15:
            break
        for i in range(n):
            alloc[i] += residual * room[i] / total_room
    return alloc
