"""The global headroom coordinator (supervisory layer over N shard loops).

Once per control period — after every shard has closed its period and
armed its actuator — the coordinator aggregates the per-shard state
(delay estimates, queue lengths, offered load, cost estimates) and
rebalances the fleet. Three modes:

* ``"independent"`` — no rebalancing: N paper loops running side by side
  (the baseline the coordinated modes are judged against);
* ``"headroom"`` — sum-preserving reallocation of the machine's CPU
  share: each shard's demand is its offered CPU load plus a backlog
  catch-up term, the total headroom is split proportionally to demand
  (bounded per shard), and each shard moves a ``gain`` fraction of the
  way to its allocation per period. Because both the old and the new
  allocation vectors sum to the same total, the machine is never
  oversubscribed;
* ``"target"`` — sum-preserving delay-budget shift: shards whose delay
  estimate runs above their base target get a *tighter* operating target
  (their loop sheds earlier and harder, keeping actual delay under the
  base SLA instead of riding it), and the freed budget is parked on the
  shards running below their targets, where slack is free. The total
  budget ``sum(base_target)`` is invariant, so no shard's loop dynamics
  change — only the reference each loop tracks. The trade is explicit:
  lower worst-shard delay violation, bought with extra loss on the
  stressed shards.

Orthogonally to the mode, an optional ``loss_bound`` reconciles the
per-shard entry shedders against a global drop SLA: when the fleet's
expected drop fraction for the coming period exceeds the bound, every
shard's drop probability is scaled down proportionally to its demand.

CPU-share rebalancing redistributes *capacity*; it cannot help when one
shard's demand exceeds the per-shard ``headroom_ceiling`` (the model of a
single node's physical limit). For that the coordinator has a second
actuator: a :class:`MigrationPolicy` that proposes moving a *source* off
a shard whose post-rebalance headroom deficit persists — placement
rebalancing on top of share rebalancing, after "Model-Free Control for
Distributed Stream Data Processing" (PAPERS.md), which re-assigns stream
partitions between workers as its primary actuator. The policy only
*plans* (``entry["migration"]``); the owning runtime executes the
drain -> cutover transaction, because only it can quiesce the shard
(docs/THEORY.md §13).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ServiceError
from ..metrics.recorder import PeriodRecord
from ..obs.events import ShardRebalanced
from .router import RoutingTable
from .shard import EngineShard

MODES = ("independent", "target", "headroom")


class MigrationPolicy:
    """Decides when a persistently hot shard should shed a *source*.

    Observes each period's headroom-rebalance outcome: a shard whose
    demand still exceeds its (gain-smoothed) allocation by more than
    ``deficit`` for ``patience`` consecutive periods is declared stuck —
    rebalancing alone cannot fix it (typically because the per-shard
    ceiling binds). The policy then plans one move: the source on the
    hot shard whose estimated CPU share best fits the transferable gap,
    to the shard with the most surplus.

    All iteration is over sorted keys and ties break deterministically,
    so the lockstep service and the fleet parent produce identical plans
    from identical inputs — a requirement for sync-mode equivalence.
    """

    def __init__(self, patience: int = 4, cooldown: int = 12,
                 deficit: float = 0.10,
                 max_migrations: Optional[int] = None,
                 ewma_alpha: float = 0.3,
                 drain_budget: float = 5.0):
        if patience < 1:
            raise ServiceError(f"migration patience must be >= 1, "
                               f"got {patience}")
        if cooldown < 0:
            raise ServiceError(f"migration cooldown must be >= 0, "
                               f"got {cooldown}")
        if deficit < 0:
            raise ServiceError(f"migration deficit must be >= 0, "
                               f"got {deficit}")
        if max_migrations is not None and max_migrations < 0:
            raise ServiceError(f"max_migrations must be >= 0, "
                               f"got {max_migrations}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ServiceError(f"ewma alpha {ewma_alpha} outside (0, 1]")
        if drain_budget < 0:
            raise ServiceError(f"drain budget must be >= 0, "
                               f"got {drain_budget}")
        self.drain_budget = drain_budget
        self.patience = patience
        self.cooldown = cooldown
        self.deficit = deficit
        self.max_migrations = max_migrations
        self.ewma_alpha = ewma_alpha
        #: smoothed per-source tuple counts per period (the placement signal)
        self.source_rates: Dict[str, float] = {}
        self._streaks: Dict[int, int] = {}
        self._last_migration_k: Optional[int] = None
        self.migrations = 0

    def consider(self, k: int, entry: dict,
                 shards: Sequence[EngineShard],
                 periods: Sequence[PeriodRecord],
                 table: RoutingTable,
                 source_counts: Mapping[str, int]) -> Optional[dict]:
        """Observe one period; return a migration plan dict or ``None``.

        The plan is ``{"source", "from", "to", "deficit", "budget"}`` —
        the runtime that executes it appends the cutover ``epoch``.
        """
        a = self.ewma_alpha
        for source in sorted(source_counts):
            prev = self.source_rates.get(source)
            count = float(source_counts[source])
            self.source_rates[source] = (
                count if prev is None else (1.0 - a) * prev + a * count
            )
        demands = entry.get("demand")
        headrooms = entry.get("headroom")
        if not demands or not headrooms:
            return None
        deficits = [d - h for d, h in zip(demands, headrooms)]
        for i, gap in enumerate(deficits):
            if gap > self.deficit:
                self._streaks[i] = self._streaks.get(i, 0) + 1
            else:
                self._streaks[i] = 0
        if (self.max_migrations is not None
                and self.migrations >= self.max_migrations):
            return None
        if (self._last_migration_k is not None
                and k - self._last_migration_k <= self.cooldown):
            return None
        # hottest stuck shard: largest deficit among those past patience
        stuck = [i for i in range(len(shards))
                 if self._streaks.get(i, 0) >= self.patience]
        if not stuck:
            return None
        hot = max(stuck, key=lambda i: (deficits[i], -i))
        # coolest shard: most surplus capacity; must actually have some
        surpluses = [-gap for gap in deficits]
        cold = max(range(len(shards)), key=lambda i: (surpluses[i], -i))
        if cold == hot or surpluses[cold] <= 0:
            return None
        per_source = self._shard_sources(table)
        hosted = per_source.get(hot, [])
        if len(hosted) < 2:
            # moving a shard's only source just relocates the hotspot
            return None
        source = self._pick_source(hosted, periods[hot].cost,
                                   shards[hot].loop.period,
                                   deficits[hot], surpluses[cold])
        if source is None:
            return None
        self._streaks[hot] = 0
        self._last_migration_k = k
        self.migrations += 1
        return {"source": source, "from": hot, "to": cold,
                "deficit": deficits[hot], "budget": self.drain_budget}

    def _shard_sources(self, table: RoutingTable) -> Dict[int, List[str]]:
        out: Dict[int, List[str]] = {}
        for source in sorted(self.source_rates):
            out.setdefault(table.shard_of(source), []).append(source)
        return out

    def _pick_source(self, hosted: Sequence[str], cost: float,
                     period: float, excess: float,
                     surplus: float) -> Optional[str]:
        """The hosted source whose CPU share best fits the movable gap.

        Best-fit rather than biggest-first: moving more than the cold
        shard's surplus would just relocate the hotspot. ``hosted`` is
        sorted, and ``min`` keeps the first of equals, so the choice is
        deterministic.
        """
        want = min(excess, surplus)
        shares = {s: cost * self.source_rates[s] / max(period, 1e-9)
                  for s in hosted}
        movable = [s for s in hosted if shares[s] > 0.0]
        if not movable:
            return None
        return min(movable, key=lambda s: (abs(shares[s] - want), s))


class HeadroomCoordinator:
    """Aggregates per-shard measurements and rebalances each period."""

    def __init__(self, mode: str = "headroom",
                 gain: float = 0.5,
                 headroom_floor: float = 0.02,
                 headroom_ceiling: float = 0.97,
                 target_floor_fraction: float = 0.25,
                 loss_bound: Optional[float] = None,
                 migration_policy: Optional[MigrationPolicy] = None):
        if mode not in MODES:
            raise ServiceError(f"unknown coordinator mode {mode!r}; "
                               f"pick from {MODES}")
        if not 0.0 <= gain <= 1.0:
            raise ServiceError(f"rebalance gain {gain} outside [0, 1]")
        if not 0.0 < headroom_floor < headroom_ceiling <= 1.0:
            raise ServiceError(
                f"need 0 < floor < ceiling <= 1, got "
                f"[{headroom_floor}, {headroom_ceiling}]"
            )
        if not 0.0 < target_floor_fraction <= 1.0:
            raise ServiceError(
                f"target floor fraction {target_floor_fraction} outside (0, 1]"
            )
        if loss_bound is not None and not 0.0 <= loss_bound <= 1.0:
            raise ServiceError(f"loss bound {loss_bound} outside [0, 1]")
        self.mode = mode
        self.gain = gain
        self.headroom_floor = headroom_floor
        self.headroom_ceiling = headroom_ceiling
        self.target_floor_fraction = target_floor_fraction
        self.loss_bound = loss_bound
        if migration_policy is not None and mode != "headroom":
            raise ServiceError(
                "migration policy needs mode='headroom' (it triggers on "
                "the headroom rebalancer's demand signal)"
            )
        self.migration_policy = migration_policy
        #: one dict per period: what was observed and what was allocated
        self.history: List[dict] = []
        #: observability bus the service wires in; None = silent
        self.bus = None

    # ------------------------------------------------------------------ #
    # the once-per-period entry point
    # ------------------------------------------------------------------ #
    def rebalance(self, k: int, shards: Sequence[EngineShard],
                  periods: Sequence[PeriodRecord],
                  source_counts: Optional[Mapping[str, int]] = None,
                  table: Optional[RoutingTable] = None) -> dict:
        """Observe period ``k``'s close and adjust the fleet for ``k + 1``.

        ``source_counts`` (this period's routed tuples per source) and
        ``table`` feed the optional migration policy; the returned entry
        then may carry a ``"migration"`` plan for the runtime to execute
        before period ``k + 1``.
        """
        if len(shards) != len(periods):
            raise ServiceError("one period record per shard required")
        entry: dict = {"k": k, "mode": self.mode}
        if self.mode == "headroom":
            self._rebalance_headroom(shards, periods, entry)
        elif self.mode == "target":
            self._rebalance_targets(shards, periods, entry)
        if self.loss_bound is not None:
            self._reconcile_drop_caps(shards, periods, entry)
        if (self.migration_policy is not None
                and source_counts is not None and table is not None):
            plan = self.migration_policy.consider(
                k, entry, shards, periods, table, source_counts)
            if plan is not None:
                entry["migration"] = plan
        self.history.append(entry)
        bus = self.bus
        if bus is not None and bus and len(entry) > 2:
            # only decisions with substance (beyond k/mode) are events;
            # independent mode without a loss bound stays silent
            bus.emit(ShardRebalanced(k=k, mode=self.mode, detail=dict(entry)))
        return entry

    # ------------------------------------------------------------------ #
    # CPU-share rebalancing
    # ------------------------------------------------------------------ #
    def _rebalance_headroom(self, shards: Sequence[EngineShard],
                            periods: Sequence[PeriodRecord],
                            entry: dict) -> None:
        total = sum(s.headroom for s in shards)
        period = shards[0].loop.period
        demands = []
        for shard, p in zip(shards, periods):
            offered_rate = p.offered / period
            # catch-up: drain the current backlog within one target horizon
            backlog_rate = p.queue_length / max(shard.base_target, period)
            demands.append(max(p.cost * (offered_rate + backlog_rate), 1e-9))
        scale = total / sum(demands)
        shares = [d * scale for d in demands]
        alloc = _bounded_shares(shares, self.headroom_floor,
                                self.headroom_ceiling, total)
        new = []
        for shard, h_alloc in zip(shards, alloc):
            h = (1.0 - self.gain) * shard.headroom + self.gain * h_alloc
            shard.set_headroom(h)
            new.append(h)
        entry["demand"] = demands
        entry["headroom"] = new

    # ------------------------------------------------------------------ #
    # delay-budget rebalancing
    # ------------------------------------------------------------------ #
    def _rebalance_targets(self, shards: Sequence[EngineShard],
                           periods: Sequence[PeriodRecord],
                           entry: dict) -> None:
        n = len(shards)
        budget = sum(s.base_target for s in shards)
        # pressure: how far each shard's estimated delay runs above its own
        # base target; positive = stressed -> tighten its operating target
        # (shed earlier, keep actual delay under the base SLA) and park the
        # freed budget on the shards with slack
        errors = [p.delay_estimate - s.base_target
                  for s, p in zip(shards, periods)]
        mean_error = sum(errors) / n
        floors = [s.base_target * self.target_floor_fraction for s in shards]
        raw = [
            max(s.base_target - self.gain * (e - mean_error), floor)
            for s, e, floor in zip(shards, errors, floors)
        ]
        # re-center so the fleet's total delay budget is preserved exactly;
        # the correction is spread over the shards still above their floor
        new = list(raw)
        for __ in range(n):
            residual = budget - sum(new)
            if abs(residual) < 1e-12:
                break
            if residual > 0:
                adjustable = list(range(n))
            else:
                adjustable = [i for i in range(n) if new[i] > floors[i] + 1e-12]
                if not adjustable:
                    break
            step = residual / len(adjustable)
            for i in adjustable:
                new[i] = max(new[i] + step, floors[i])
        for shard, t in zip(shards, new):
            shard.set_target(t)
        entry["targets"] = new

    # ------------------------------------------------------------------ #
    # global drop-bound reconciliation
    # ------------------------------------------------------------------ #
    def _reconcile_drop_caps(self, shards: Sequence[EngineShard],
                             periods: Sequence[PeriodRecord],
                             entry: dict) -> None:
        # inflow weights: the same estimate the loops armed their shedders
        # with (this period's offered count as the forecast for the next)
        weights = [float(p.offered) for p in periods]
        requested = [s.requested_alpha for s in shards]
        total_inflow = sum(weights)
        if total_inflow <= 0:
            return
        demanded = sum(a * w for a, w in zip(requested, weights))
        allowed = self.loss_bound * total_inflow
        if demanded <= allowed:
            # inside the SLA: lift any caps from previous periods
            caps = [1.0] * len(shards)
        else:
            scale = allowed / demanded
            caps = [min(1.0, a * scale) for a in requested]
        for shard, cap in zip(shards, caps):
            shard.cap_alpha(cap)
        entry["alpha_caps"] = caps


def _bounded_shares(shares: Sequence[float], floor: float, ceiling: float,
                    total: float) -> List[float]:
    """Clamp shares into [floor, ceiling] while preserving their sum.

    Iterative water-filling: clamp, then spread the residual over the
    shards with room left (proportionally to that room). Each pass either
    finishes or saturates at least one shard, so ``n`` passes suffice.
    """
    n = len(shares)
    if n * floor > total + 1e-12 or n * ceiling < total - 1e-12:
        raise ServiceError(
            f"total headroom {total:.4f} cannot be split over {n} shards "
            f"within [{floor}, {ceiling}]"
        )
    alloc = [min(max(s, floor), ceiling) for s in shares]
    for __ in range(n):
        residual = total - sum(alloc)
        if abs(residual) < 1e-12:
            break
        if residual > 0:
            room = [ceiling - a for a in alloc]
        else:
            room = [floor - a for a in alloc]  # negative room
        total_room = sum(room)
        if abs(total_room) < 1e-15:
            break
        for i in range(n):
            alloc[i] += residual * room[i] / total_room
    return alloc
