"""Per-period wall-clock tracing of the control loop.

A :class:`PeriodTracer` splits each control period's *host* wall time into
named segments — how long the engine step took, how long the monitor,
controller and actuator took, how long the coordinator deliberated — and
keeps both the per-period rows and the run totals. The aggregate is a
"flame summary": one dict mapping segment to total seconds and fraction,
exportable next to the run's CSVs (see
:func:`repro.metrics.export.trace_to_json`).

The instrumented loop pays for tracing only when a tracer is installed
(``loop.tracer is None`` is the disabled check); segment boundaries are
single ``perf_counter()`` reads, so an enabled tracer adds a handful of
clock reads per control period — nothing per tuple.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from ..errors import ObservabilityError

#: canonical segment names the control loop and service layer report
SEGMENTS = ("ingest", "engine", "monitor", "controller", "actuator",
            "coordinator", "bookkeeping", "dispatch", "drain")


class PeriodTracer:
    """Accumulates named wall-clock segments, per period and per run."""

    def __init__(self) -> None:
        #: run-total seconds per segment (includes out-of-period segments)
        self.segments: Dict[str, float] = {}
        #: one ``{"k": k, <segment>: seconds, ...}`` row per traced period
        self.periods: List[Dict[str, float]] = []
        #: host wall seconds of the whole run, set by the driver when known
        self.wall_seconds: float = 0.0
        self._current: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def begin_period(self, k: int) -> None:
        if self._current is not None:
            self.end_period()
        self._current = {"k": float(k)}

    def end_period(self) -> None:
        if self._current is not None:
            self.periods.append(self._current)
            self._current = None

    def add(self, segment: str, seconds: float) -> None:
        """Charge ``seconds`` to ``segment`` (and to the open period, if any)."""
        if seconds < 0:
            seconds = 0.0  # clock went backwards; never poison the totals
        self.segments[segment] = self.segments.get(segment, 0.0) + seconds
        if self._current is not None:
            self._current[segment] = self._current.get(segment, 0.0) + seconds

    @contextmanager
    def span(self, segment: str):
        """Context-manager convenience around :meth:`add`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(segment, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def total_seconds(self) -> float:
        """Sum of every recorded segment (the accounted wall time)."""
        return sum(self.segments.values())

    def coverage(self, wall_seconds: Optional[float] = None) -> float:
        """Accounted fraction of the run's wall time (1.0 = fully traced)."""
        wall = self.wall_seconds if wall_seconds is None else wall_seconds
        if wall <= 0:
            return 0.0
        return self.total_seconds() / wall

    def flame(self) -> dict:
        """The per-run flame summary: totals, fractions, period count."""
        total = self.total_seconds()
        ordered = dict(sorted(self.segments.items(),
                              key=lambda kv: kv[1], reverse=True))
        return {
            "periods": len(self.periods),
            "total_seconds": total,
            "wall_seconds": self.wall_seconds,
            "coverage": self.coverage() if self.wall_seconds > 0 else None,
            "segments": ordered,
            "fractions": {name: (seconds / total if total > 0 else 0.0)
                          for name, seconds in ordered.items()},
        }

    def reset(self) -> None:
        self.segments.clear()
        self.periods.clear()
        self.wall_seconds = 0.0
        self._current = None


def merge_flames(flames: Dict[str, dict],
                 wall_seconds: Optional[float] = None) -> dict:
    """Fleet view: sum per-shard flame summaries into one.

    ``flames`` maps shard name to :meth:`PeriodTracer.flame` output. The
    merged summary sums segment seconds across shards (shards run
    interleaved on one host thread, so seconds are additive) and keeps the
    per-shard summaries under ``"shards"``. ``wall_seconds`` overrides the
    merged wall clock (the service passes its own run wall, which no
    single shard knows).
    """
    if not flames:
        raise ObservabilityError("cannot merge zero flame summaries")
    segments: Dict[str, float] = {}
    wall = 0.0
    periods = 0
    for flame in flames.values():
        for name, seconds in flame["segments"].items():
            segments[name] = segments.get(name, 0.0) + seconds
        wall = max(wall, flame.get("wall_seconds") or 0.0)
        periods = max(periods, flame["periods"])
    if wall_seconds is not None:
        wall = wall_seconds
    total = sum(segments.values())
    ordered = dict(sorted(segments.items(), key=lambda kv: kv[1], reverse=True))
    return {
        "periods": periods,
        "total_seconds": total,
        "wall_seconds": wall,
        "coverage": (total / wall) if wall > 0 else None,
        "segments": ordered,
        "fractions": {name: (seconds / total if total > 0 else 0.0)
                      for name, seconds in ordered.items()},
        "shards": dict(flames),
    }
