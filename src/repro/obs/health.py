"""Online fleet health detectors built on the event bus.

The paper's measurement-lag argument (Section 3.3 / Eq. 11) is exactly why
these exist: the true delay of a tuple is only known after it departs, so
any *online* health verdict must be built from the same ŷ(k) estimate the
controller feeds on. A :class:`HealthMonitor` subscribes to the bus and
watches the per-period decision stream for sustained pathologies:

``qos_violation``
    the delay estimate has exceeded the target for ``qos_patience``
    consecutive periods — the loop is not holding its SLA;
``actuator_saturated``
    the entry drop probability has pinned at its upper bound
    (``alpha >= saturation_alpha``) for ``saturation_patience`` periods —
    the controller is demanding more shedding than the actuator can
    deliver, so the loop is effectively open;
``controller_windup``
    the commanded admission rate has been clamped at zero while the raw
    controller state keeps diverging — the textbook integrator-windup
    signature (see the anti-windup ablation);
``drain_truncated``
    the end-of-run drain gave up with tuples outstanding — tail metrics
    of this run are untrustworthy;
``shard_imbalance``
    across a fleet, the spread between the worst and best shard's delay
    estimate has exceeded ``imbalance_spread`` times the mean in-force
    target for ``imbalance_patience`` consecutive periods — load is
    skewed and (if the coordinator is enabled) rebalancing is overdue;
``worker_down``
    a process-fleet shard worker died mid-run (one episode per outage,
    opened on :class:`~repro.obs.events.WorkerDown` and closed when the
    replacement's :class:`~repro.obs.events.WorkerRestarted` arrives, so
    an episode still ``open`` at the end of the run means the shard
    never rejoined);
``ingest_drops``
    the live ingest buffer has refused tuples at its capacity for
    ``ingest_patience`` consecutive periods — the front door is shedding
    *silently* (senders get no signal), so sustained drops mean the
    node is overloaded beyond even its admission-control posture;
``model_mismatch``
    the online-identified plant gain (:mod:`repro.obs.sysid`) has sat
    outside the design model's mismatch band for ``mismatch_patience``
    consecutive periods — the controller is flying a plant it was not
    designed for, typically *before* the QoS consequence lands;
``margin_eroded``
    the stability margins re-evaluated with the identified gain have
    dipped below their floors for ``margin_patience`` consecutive
    periods — the paper's ``1/K`` robustness budget is nearly spent.

Detectors report *episodes*: one :class:`HealthReport` per contiguous
stretch of bad periods, updated in place while the episode lasts.
:meth:`HealthMonitor.finalize` seals every episode still open at the end
of the run, so ``open=True`` afterwards reliably means "outlived the run"
(late stragglers on the bus can neither close nor extend a sealed
episode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .bus import EventBus, get_bus
from .events import ObsEvent

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

HEALTH_KINDS = ("qos_violation", "actuator_saturated", "controller_windup",
                "drain_truncated", "shard_imbalance", "worker_down",
                "ingest_drops", "model_mismatch", "margin_eroded")


@dataclass
class HealthReport:
    """One detected episode of one pathology on one shard (or the fleet)."""

    kind: str
    shard: Optional[str]
    severity: str
    first_k: int
    last_k: int
    value: float          # kind-specific magnitude (see ``detail``)
    detail: str
    open: bool = True     # still ongoing when the run ended

    @property
    def periods(self) -> int:
        return self.last_k - self.first_k + 1

    def as_dict(self) -> dict:
        return {"kind": self.kind, "shard": self.shard,
                "severity": self.severity, "first_k": self.first_k,
                "last_k": self.last_k, "periods": self.periods,
                "value": self.value, "detail": self.detail, "open": self.open}


@dataclass
class _Streak:
    """Consecutive-period accounting behind one detector on one shard."""

    count: int = 0
    start_k: int = -1
    peak: float = 0.0
    report: Optional[HealthReport] = None

    def advance(self, k: int, value: float) -> None:
        if self.count == 0:
            self.start_k = k
            self.peak = value
        self.count += 1
        self.peak = max(self.peak, value)

    def clear(self) -> None:
        if self.report is not None:
            self.report.open = False
        self.count = 0
        self.start_k = -1
        self.peak = 0.0
        self.report = None

    def detach(self) -> None:
        """Seal the episode: forget the report *without* closing it.

        Used by :meth:`HealthMonitor.finalize` so a report still open at
        the end of the run keeps ``open=True`` forever — a late "good"
        event arriving after finalization starts a fresh episode instead
        of silently flipping the finished one closed.
        """
        self.count = 0
        self.start_k = -1
        self.peak = 0.0
        self.report = None


class HealthMonitor:
    """Subscribes to a bus and maintains structured health reports."""

    def __init__(self, bus: Optional[EventBus] = None,
                 qos_patience: int = 5,
                 qos_tolerance: float = 0.0,
                 saturation_alpha: float = 0.999,
                 saturation_patience: int = 3,
                 windup_patience: int = 5,
                 imbalance_spread: float = 1.0,
                 imbalance_patience: int = 3,
                 ingest_patience: int = 3,
                 mismatch_patience: int = 2,
                 margin_patience: int = 3):
        for name, patience in (("qos_patience", qos_patience),
                               ("saturation_patience", saturation_patience),
                               ("windup_patience", windup_patience),
                               ("imbalance_patience", imbalance_patience),
                               ("ingest_patience", ingest_patience),
                               ("mismatch_patience", mismatch_patience),
                               ("margin_patience", margin_patience)):
            if patience < 1:
                raise ValueError(f"{name} must be >= 1, got {patience}")
        self.bus = bus if bus is not None else get_bus()
        self.qos_patience = qos_patience
        self.qos_tolerance = qos_tolerance
        self.saturation_alpha = saturation_alpha
        self.saturation_patience = saturation_patience
        self.windup_patience = windup_patience
        self.imbalance_spread = imbalance_spread
        self.imbalance_patience = imbalance_patience
        self.ingest_patience = ingest_patience
        self.mismatch_patience = mismatch_patience
        self.margin_patience = margin_patience

        #: optional callback fired once per *newly opened* report (the
        #: flight recorder hooks this to auto-dump on critical episodes)
        self.on_report = None

        self._reports: List[HealthReport] = []
        self._qos: Dict[str, _Streak] = {}
        self._sat: Dict[str, _Streak] = {}
        self._windup: Dict[str, _Streak] = {}
        self._ingest: Dict[str, _Streak] = {}
        self._mismatch: Dict[str, _Streak] = {}
        self._margin: Dict[str, _Streak] = {}
        self._u_prev: Dict[str, float] = {}
        self._fleet: Dict[int, Dict[str, Tuple[float, float]]] = {}
        self._imbalance = _Streak()
        self._down: Dict[str, HealthReport] = {}
        self.bus.subscribe(self._on_event,
                           kinds=("period", "drain_truncated",
                                  "worker_down", "worker_restarted",
                                  "ingest", "sysid"))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop listening; reports stay available."""
        self.bus.unsubscribe(self._on_event)

    def __enter__(self) -> "HealthMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def reports(self, kind: Optional[str] = None) -> List[HealthReport]:
        if kind is None:
            return list(self._reports)
        return [r for r in self._reports if r.kind == kind]

    def has(self, kind: str) -> bool:
        return any(r.kind == kind for r in self._reports)

    def healthy(self, min_severity: Optional[str] = None) -> bool:
        """Whether the run is clean — optionally only above a severity.

        With no argument any report at all fails (the historical, strict
        form).  ``healthy(min_severity="critical")`` ignores warnings:
        only :data:`SEVERITY_CRITICAL` episodes count, so a run that
        merely brushed a warning detector still passes.
        """
        if min_severity is None or min_severity == SEVERITY_WARNING:
            return not self._reports
        if min_severity != SEVERITY_CRITICAL:
            raise ValueError(f"unknown severity {min_severity!r}")
        return not any(r.severity == SEVERITY_CRITICAL for r in self._reports)

    def critical_open(self) -> bool:
        """True while at least one critical episode is currently open."""
        return any(r.open and r.severity == SEVERITY_CRITICAL
                   for r in self._reports)

    def summary(self) -> dict:
        """Counts per kind plus the full report list (JSON-able)."""
        counts: Dict[str, int] = {}
        for report in self._reports:
            counts[report.kind] = counts.get(report.kind, 0) + 1
        return {"healthy": self.healthy(),
                "critical_open": self.critical_open(),
                "counts": counts,
                "reports": [r.as_dict() for r in self._reports]}

    def _add_report(self, report: HealthReport) -> HealthReport:
        self._reports.append(report)
        if self.on_report is not None:
            self.on_report(report)
        return report

    # ------------------------------------------------------------------ #
    # event handling
    # ------------------------------------------------------------------ #
    def _on_event(self, event: ObsEvent) -> None:
        if event.kind == "period":
            self._on_period(event)
        elif event.kind == "ingest":
            self._on_ingest(event)
        elif event.kind == "sysid":
            self._on_sysid(event)
        elif event.kind == "worker_down":
            shard = event.shard or "main"
            report = HealthReport(
                kind="worker_down",
                shard=shard,
                severity=SEVERITY_CRITICAL,
                first_k=event.last_k, last_k=event.last_k,
                value=float(event.restarts),
                detail=(f"shard worker died (exit {event.exitcode}) after "
                        f"period {event.last_k}; restart "
                        f"#{event.restarts} replays from the command "
                        "journal"),
            )
            self._down[shard] = report
            self._add_report(report)
        elif event.kind == "worker_restarted":
            report = self._down.pop(event.shard or "main", None)
            if report is not None:
                report.open = False
                report.last_k = event.resumed_k
                report.detail += (
                    f"; replacement replayed to period {event.resumed_k} "
                    "and rejoined")
        elif event.kind == "drain_truncated":
            self._add_report(HealthReport(
                kind="drain_truncated",
                shard=event.shard,
                severity=SEVERITY_WARNING,
                first_k=-1, last_k=-1,
                value=float(event.leftover),
                detail=(f"end-of-run drain gave up with {event.leftover} "
                        "tuples outstanding; tail delay metrics are not a "
                        "faithful quiescent drain"),
                open=False,
            ))

    def _on_period(self, event) -> None:
        p = event.record
        shard = event.shard or "main"
        self._check_qos(shard, p)
        self._check_saturation(shard, p)
        self._check_windup(shard, p)
        self._check_imbalance(shard, p)

    def _on_ingest(self, event) -> None:
        shard = event.shard or "main"
        bad = event.dropped > 0

        def detail(streak: _Streak) -> str:
            return (f"ingest buffer refused tuples at capacity for "
                    f"{streak.count} consecutive periods (worst "
                    f"{int(streak.peak)} drops/period); senders get no "
                    "backpressure signal — the node is shedding silently "
                    "at the front door")

        self._run_streak(self._ingest, shard, bad, event.k,
                         float(event.dropped), self.ingest_patience,
                         "ingest_drops", SEVERITY_WARNING, detail)

    def _on_sysid(self, event) -> None:
        shard = event.shard or "main"
        deviation = max(event.gain_ratio, 1.0 / event.gain_ratio) \
            if event.gain_ratio > 0 else 1.0

        def mismatch_detail(streak: _Streak) -> str:
            return (f"identified plant gain sat {streak.peak:.2f}x away "
                    f"from the design model for {streak.count} consecutive "
                    f"periods (ratio {event.gain_ratio:.2f}); the "
                    "controller's cost model is stale and the 1/K "
                    "robustness budget is being spent")

        self._run_streak(self._mismatch, shard,
                         bool(event.mismatch), event.k, deviation,
                         self.mismatch_patience, "model_mismatch",
                         SEVERITY_CRITICAL, mismatch_detail)

        def margin_detail(streak: _Streak) -> str:
            return (f"effective stability margins below floor for "
                    f"{streak.count} consecutive periods (gain margin "
                    f"down to {event.gain_margin:.2f}, modulus "
                    f"{event.modulus_margin:.2f}); the loop is running "
                    "close to its robustness limit")

        margin_value = event.gain_margin if event.gain_margin > 0 else 0.0
        self._run_streak(self._margin, shard,
                         bool(event.eroded), event.k, margin_value,
                         self.margin_patience, "margin_eroded",
                         SEVERITY_WARNING, margin_detail)

    # ------------------------------------------------------------------ #
    # detectors
    # ------------------------------------------------------------------ #
    def _run_streak(self, streaks: Dict[str, _Streak], shard: str,
                    bad: bool, k: int, value: float, patience: int,
                    kind: str, severity: str, detail_fn) -> None:
        streak = streaks.setdefault(shard, _Streak())
        if not bad:
            streak.clear()
            return
        streak.advance(k, value)
        if streak.count < patience:
            return
        if streak.report is None:
            streak.report = HealthReport(
                kind=kind, shard=shard, severity=severity,
                first_k=streak.start_k, last_k=k, value=streak.peak,
                detail=detail_fn(streak),
            )
            self._add_report(streak.report)
        else:
            streak.report.last_k = k
            streak.report.value = streak.peak
            streak.report.detail = detail_fn(streak)

    def _check_qos(self, shard: str, p) -> None:
        excess = p.delay_estimate - p.target
        bad = excess > self.qos_tolerance

        def detail(streak: _Streak) -> str:
            return (f"delay estimate above target for {streak.count} "
                    f"consecutive periods (worst excess "
                    f"{streak.peak:.3f} s over yd)")

        self._run_streak(self._qos, shard, bad, p.k, max(excess, 0.0),
                         self.qos_patience, "qos_violation",
                         SEVERITY_CRITICAL, detail)

    def _check_saturation(self, shard: str, p) -> None:
        bad = p.alpha >= self.saturation_alpha

        def detail(streak: _Streak) -> str:
            return (f"entry drop probability pinned at alpha="
                    f"{streak.peak:.3f} for {streak.count} consecutive "
                    "periods; the actuator cannot shed harder and the "
                    "loop is effectively open")

        self._run_streak(self._sat, shard, bad, p.k, p.alpha,
                         self.saturation_patience, "actuator_saturated",
                         SEVERITY_CRITICAL, detail)

    def _check_windup(self, shard: str, p) -> None:
        u_prev = self._u_prev.get(shard)
        self._u_prev[shard] = p.u
        bad = (u_prev is not None and p.v <= 0.0 and p.u < u_prev)

        def detail(streak: _Streak) -> str:
            return (f"admission command clamped at zero while the raw "
                    f"controller output kept diverging for {streak.count} "
                    f"consecutive periods (u down to {p.u:.1f} t/s); "
                    "consider anti-windup back-calculation")

        self._run_streak(self._windup, shard, bad, p.k, abs(p.u),
                         self.windup_patience, "controller_windup",
                         SEVERITY_WARNING, detail)

    def _check_imbalance(self, shard: str, p) -> None:
        # group estimates by period; evaluate k-1 once every shard that is
        # going to report it has (i.e. when the first k row lands)
        self._fleet.setdefault(p.k, {})[shard] = (p.delay_estimate, p.target)
        stale = [k for k in self._fleet if k < p.k]
        for k in sorted(stale):
            self._evaluate_imbalance(k, self._fleet.pop(k))

    def _evaluate_imbalance(self, k: int,
                            rows: Dict[str, Tuple[float, float]]) -> None:
        if len(rows) < 2:
            return
        estimates = {shard: est for shard, (est, _) in rows.items()}
        worst = max(estimates, key=estimates.get)
        best = min(estimates, key=estimates.get)
        spread = estimates[worst] - estimates[best]
        mean_target = sum(t for _, t in rows.values()) / len(rows)
        bad = spread > self.imbalance_spread * max(mean_target, 1e-9)
        streak = self._imbalance
        if not bad:
            streak.clear()
            return
        streak.advance(k, spread)
        if streak.count < self.imbalance_patience:
            return

        def detail() -> str:
            return (f"delay-estimate spread across shards reached "
                    f"{streak.peak:.2f} s (worst {worst!r}, best {best!r}) "
                    f"over {streak.count} consecutive periods; load is "
                    "skewed relative to the CPU split")

        if streak.report is None:
            streak.report = HealthReport(
                kind="shard_imbalance", shard=worst,
                severity=SEVERITY_WARNING,
                first_k=streak.start_k, last_k=k, value=streak.peak,
                detail=detail(),
            )
            self._add_report(streak.report)
        else:
            streak.report.last_k = k
            streak.report.shard = worst
            streak.report.value = streak.peak
            streak.report.detail = detail()

    def finalize(self) -> List[HealthReport]:
        """Evaluate pending fleet rows, then seal every open episode.

        After this returns, ``open=True`` on a report reliably means the
        episode outlived the run: still-open streak reports and
        never-rejoined ``worker_down`` episodes are detached from their
        live detector state, so stray events arriving later (a slow relay
        draining, a test poking the bus) can neither close nor extend
        them — they start fresh episodes instead.
        """
        for k in sorted(self._fleet):
            self._evaluate_imbalance(k, self._fleet[k])
        self._fleet.clear()
        for streaks in (self._qos, self._sat, self._windup, self._ingest,
                        self._mismatch, self._margin):
            for streak in streaks.values():
                streak.detach()
        self._imbalance.detach()
        for report in self._down.values():
            report.detail += "; the worker never rejoined before the run ended"
        self._down.clear()
        return self.reports()
