"""Process-wide metrics: counters, gauges, histograms, Prometheus text.

A :class:`MetricsRegistry` holds named metrics with optional labels and
renders them in the Prometheus text exposition format, so a run can be
scraped (or the text dumped to a file) while it is in flight. A process-
wide default registry (:func:`get_registry`) mirrors the default event bus.

Nothing in the library updates metrics directly — instrumented code emits
events, and :class:`MetricsBridge` (a bus subscriber) folds the event
stream into the standard metric set. Not installing the bridge therefore
costs nothing; installing it is one call:

    >>> from repro.obs import install_metrics
    >>> bridge = install_metrics()          # default bus + default registry
    >>> # ... run anything ...
    >>> print(bridge.registry.prometheus_text())
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ObservabilityError
from .bus import EventBus, get_bus
from .events import ObsEvent

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets: delay-ish seconds, log-spaced
DEFAULT_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: quantiles rendered in each histogram's derived ``_summary`` family
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObservabilityError(f"bad label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """Shared machinery: a named family of labelled time series."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"bad metric name {name!r}")
        self.name = name
        self.help_text = help_text

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        """Yield ``(suffix, labels, value)`` exposition samples."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        """JSON-able view of the whole family."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (per label set)."""

    type_name = "counter"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield "", key, value

    def snapshot(self) -> dict:
        return {"type": "counter",
                "values": {_render_labels(k) or "": v
                           for k, v in sorted(self._values.items())}}


class Gauge(Metric):
    """A value that goes up and down (per label set)."""

    type_name = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield "", key, value

    def snapshot(self) -> dict:
        return {"type": "gauge",
                "values": {_render_labels(k) or "": v
                           for k, v in sorted(self._values.items())}}


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    type_name = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ObservabilityError("histogram buckets must be distinct")
        self.buckets = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
            self._sums[key] = 0.0
            self._totals[key] = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        self._sums[key] += float(value)
        self._totals[key] += 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-interpolated quantile estimate (histogram_quantile rules).

        Linear interpolation inside the bucket the rank falls in, with
        the first finite bucket interpolated from zero; a rank landing in
        the ``+Inf`` bucket clamps to the highest finite bound. NaN with
        no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.buckets, self._counts[key]):
            if cumulative + n >= rank:
                if n == 0:
                    return bound
                return lower + (bound - lower) * (rank - cumulative) / n
            cumulative += n
            lower = bound
        return self.buckets[-1]

    def samples(self):
        for key in sorted(self._counts):
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts[key]):
                cumulative += n
                yield ("_bucket", key + (("le", _format_value(bound)),),
                       float(cumulative))
            yield "_bucket", key + (("le", "+Inf"),), float(self._totals[key])
            yield "_sum", key, self._sums[key]
            yield "_count", key, float(self._totals[key])

    def summary_samples(self):
        """Samples of the derived ``<name>_summary`` family: p50/p95/p99
        quantile estimates plus the *same* ``_sum``/``_count`` the
        histogram exposes, so the two views can never disagree on volume.
        """
        for key in sorted(self._counts):
            labels = dict(key)
            for q in SUMMARY_QUANTILES:
                yield ("", key + (("quantile", _format_value(q)),),
                       self.quantile(q, **labels))
            yield "_sum", key, self._sums[key]
            yield "_count", key, float(self._totals[key])

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "values": {
                _render_labels(key) or "": {
                    "counts": list(self._counts[key]),
                    "sum": self._sums[key],
                    "count": self._totals[key],
                }
                for key in sorted(self._counts)
            },
        }


class MetricsRegistry:
    """A named collection of metrics with text exposition and snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name}, not {cls.type_name}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Drop every registered metric (mainly for tests)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def prometheus_text(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        Each histogram family is followed by a derived
        ``<name>_summary`` family (``# TYPE ... summary``) carrying
        bucket-interpolated p50/p95/p99 quantiles with the histogram's
        own ``_sum``/``_count`` — scrape-side dashboards get quantiles
        without a ``histogram_quantile`` recording rule.
        """
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help_text:
                lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.type_name}")
            for suffix, key, value in metric.samples():
                lines.append(
                    f"{name}{suffix}{_render_labels(key)} {_format_value(value)}"
                )
            if isinstance(metric, Histogram):
                summary = f"{name}_summary"
                if metric.help_text:
                    lines.append(f"# HELP {summary} {metric.help_text} "
                                 "(bucket-interpolated quantiles)")
                lines.append(f"# TYPE {summary} summary")
                for suffix, key, value in metric.summary_samples():
                    lines.append(f"{summary}{suffix}{_render_labels(key)} "
                                 f"{_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-able dump of every metric family."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}


#: the process-wide default registry, mirroring the default bus
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry (always the same object)."""
    return _DEFAULT_REGISTRY


class JsonlSnapshotSink:
    """Appends registry snapshots to a JSONL file, one line per call.

    Tail the file while a run is in flight to watch the counters move;
    each line is ``{"seq": n, "label": ..., "metrics": {...}}``.
    """

    def __init__(self, path: Union[str, Path],
                 registry: Optional[MetricsRegistry] = None):
        self.path = Path(path)
        self.registry = registry if registry is not None else get_registry()
        self._seq = 0

    def write(self, label: Optional[str] = None) -> int:
        """Append one snapshot line; returns its sequence number."""
        doc = {"seq": self._seq, "label": label,
               "metrics": self.registry.snapshot()}
        with self.path.open("a") as fh:
            fh.write(json.dumps(doc) + "\n")
        self._seq += 1
        return self._seq - 1


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    # \\ first via a placeholder so \\n stays a backslash + n
    return (value.replace("\\\\", "\x00")
                 .replace(r"\n", "\n")
                 .replace(r"\"", '"')
                 .replace("\x00", "\\"))


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse 0.0.4 exposition text back into families.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels_dict, value), ...]}}`` with samples attached to the family
    whose ``# TYPE`` line most recently preceded them (``_bucket``/
    ``_sum``/``_count``/quantile samples land under their family). The
    round-trip tests in ``tests/obs/`` hold
    :meth:`MetricsRegistry.prometheus_text` to this grammar.
    """
    families: Dict[str, dict] = {}
    current: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": "untyped", "help": "",
                                       "samples": []})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_name = rest.partition(" ")
            families.setdefault(name, {"type": "untyped", "help": "",
                                       "samples": []})["type"] = type_name
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ObservabilityError(
                f"unparseable exposition line {lineno}: {line!r}"
            )
        sample_name, label_blob, raw_value = match.groups()
        labels = {k: _unescape_label_value(v)
                  for k, v in _LABEL_PAIR_RE.findall(label_blob or "")}
        family = current if (current is not None
                             and sample_name.startswith(current)) else sample_name
        families.setdefault(family, {"type": "untyped", "help": "",
                                     "samples": []})
        families[family]["samples"].append(
            (sample_name, labels, float(raw_value)))
    return families


class PromFileDumper:
    """Periodically writes the registry's exposition text to a file.

    This is what makes ``REPRO_PROM_DUMP`` a *mid-run* scrape: a daemon
    thread rewrites the file every ``interval`` seconds (atomic
    ``os.replace`` of a sibling temp file, so a concurrent reader never
    sees a torn scrape), with a final write on :meth:`stop`. File-based
    node-exporter-style collection for runs where binding the
    :class:`~repro.obs.serve.ObsServer` HTTP port is unwanted.
    """

    def __init__(self, path: Union[str, Path],
                 registry: Optional[MetricsRegistry] = None,
                 interval: float = 1.0):
        if interval <= 0:
            raise ObservabilityError(
                f"dump interval must be positive, got {interval}"
            )
        self.path = Path(path)
        self.registry = registry if registry is not None else get_registry()
        self.interval = float(interval)
        self.writes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def dump(self) -> Path:
        """Write one scrape now (atomic); returns the path."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(self.registry.prometheus_text())
        os.replace(tmp, self.path)
        self.writes += 1
        return self.path

    def start(self) -> "PromFileDumper":
        if self._thread is None:
            self.dump()  # the file exists from t=0, not one interval in
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="repro-prom-dump")
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.dump()

    def stop(self) -> Path:
        """Stop the thread and write the final scrape."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.dump()

    def __enter__(self) -> "PromFileDumper":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_prom_dump(path: Optional[Union[str, Path]] = None,
                    registry: Optional[MetricsRegistry] = None,
                    interval: Optional[float] = None
                    ) -> Optional[PromFileDumper]:
    """Start the ``REPRO_PROM_DUMP`` periodic scrape file, if configured.

    ``path`` defaults from ``REPRO_PROM_DUMP`` and ``interval`` from
    ``REPRO_PROM_DUMP_INTERVAL`` (seconds, default 1.0). Returns the
    running dumper, or None when no path is configured — callers can
    unconditionally write ``dumper = start_prom_dump()`` and later
    ``if dumper: dumper.stop()``.
    """
    if path is None:
        path = os.environ.get("REPRO_PROM_DUMP") or None
    if path is None:
        return None
    if interval is None:
        raw = os.environ.get("REPRO_PROM_DUMP_INTERVAL", "").strip()
        try:
            interval = float(raw) if raw else 1.0
        except ValueError:
            raise ObservabilityError(
                f"REPRO_PROM_DUMP_INTERVAL must be a number, got {raw!r}"
            ) from None
    return PromFileDumper(path, registry=registry, interval=interval).start()


class MetricsBridge:
    """Folds the event stream into the standard metric set.

    Subscribe-and-forget: construct it (or call
    :func:`install_metrics`) and every period decision, shed action,
    late arrival, drain truncation and rebalance on the bus updates the
    registry. Per-shard series are labelled ``shard="..."``; single-loop
    runs fall under ``shard="main"``.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "repro"):
        if not _NAME_RE.match(prefix):
            raise ObservabilityError(f"bad metric prefix {prefix!r}")
        self.bus = bus if bus is not None else get_bus()
        self.registry = registry if registry is not None else get_registry()
        r, p = self.registry, prefix
        self.periods = r.counter(f"{p}_periods_total",
                                 "control periods closed")
        self.offered = r.counter(f"{p}_tuples_offered_total",
                                 "tuples offered before entry shedding")
        self.admitted = r.counter(f"{p}_tuples_admitted_total",
                                  "tuples admitted into the engine")
        self.shed = r.counter(f"{p}_tuples_shed_total",
                              "tuples discarded, by action (entry/retro)")
        self.violations = r.counter(
            f"{p}_violation_periods_total",
            "periods whose delay estimate exceeded the target")
        self.late = r.counter(f"{p}_late_arrivals_total",
                              "submissions with timestamps behind the clock")
        self.truncations = r.counter(f"{p}_drain_truncations_total",
                                     "end-of-run drains cut off by deadline")
        self.rebalances = r.counter(f"{p}_rebalances_total",
                                    "coordinator rebalance decisions, by mode")
        self.worker_downs = r.counter(
            f"{p}_worker_down_total",
            "fleet shard worker processes that died mid-run")
        self.worker_restarts = r.counter(
            f"{p}_worker_restarts_total",
            "fleet shard workers that replayed and rejoined after a death")
        self.delay = r.gauge(f"{p}_delay_estimate_seconds",
                             "latest delay estimate y_hat(k)")
        self.target = r.gauge(f"{p}_delay_target_seconds",
                              "latest delay target yd in force")
        self.alpha = r.gauge(f"{p}_alpha",
                             "entry drop probability armed for next period")
        self.queue = r.gauge(f"{p}_queue_length",
                             "virtual queue length q(k)")
        self.headroom = r.gauge(f"{p}_headroom",
                                "CPU share allocated to the shard")
        self.delay_hist = r.histogram(
            f"{p}_period_delay_seconds",
            "distribution of per-period delay estimates")
        self.ingest_accepted = r.counter(
            f"{p}_ingest_accepted_total",
            "tuples accepted off the network into the ingest buffer")
        self.ingest_dropped = r.counter(
            f"{p}_ingest_dropped_total",
            "tuples refused at the ingest front door, by reason")
        self.ingest_malformed = r.counter(
            f"{p}_ingest_malformed_total",
            "undecodable lines received on the ingest socket")
        self.ingest_bytes = r.counter(
            f"{p}_ingest_bytes_total",
            "raw bytes read off ingest sockets")
        self.ingest_rate = r.gauge(
            f"{p}_ingest_rate_tuples_per_second",
            "offered arrival rate over the last control period")
        self.ingest_skew = r.gauge(
            f"{p}_ingest_skew_seconds",
            "latest sender-vs-arrival clock skew")
        self.tick_jitter = r.gauge(
            f"{p}_tick_jitter_seconds",
            "how late the last wall-clock period tick fired")
        self.ingest_buffered = r.gauge(
            f"{p}_ingest_buffered",
            "arrivals waiting in the ingest buffer past the boundary")
        self.migrations = r.counter(
            f"{p}_migrations_total",
            "source migrations committed (route cutovers)")
        self.migration_drain = r.histogram(
            f"{p}_migration_drain_seconds",
            "virtual seconds spent draining the old shard per migration")
        self.tuple_latency = r.histogram(
            f"{p}_tuple_latency_seconds",
            "per-tuple end-to-end delay of completed (non-shed) tuples")
        self.model_gain_ratio = r.gauge(
            f"{p}_model_gain_ratio",
            "identified plant gain over the design model's gain (paper K)")
        self.effective_gain_margin = r.gauge(
            f"{p}_effective_gain_margin",
            "loop gain margin re-evaluated with the identified gain")
        self.oscillation_score = r.gauge(
            f"{p}_oscillation_score",
            "limit-cycle score of the error signal in [0, 1]")
        self.mismatches = r.counter(
            f"{p}_model_mismatch_periods_total",
            "periods whose identified gain ratio exceeded the threshold")
        self.margin_erosions = r.counter(
            f"{p}_margin_eroded_periods_total",
            "periods whose effective stability margins fell below floor")
        self.incidents = r.counter(
            f"{p}_incidents_total",
            "flight-recorder incident bundles written, by trigger")
        self._handlers = {
            "period": self._on_period,
            "shed": self._on_shed,
            "late_arrival": self._on_late,
            "drain_truncated": self._on_truncated,
            "rebalanced": self._on_rebalanced,
            "ingest": self._on_ingest,
            "headroom_changed": self._on_headroom,
            "worker_down": self._on_worker_down,
            "worker_restarted": self._on_worker_restarted,
            "route_changed": self._on_route_changed,
            "migration_completed": self._on_migration_completed,
            "completions": self._on_completions,
            "sysid": self._on_sysid,
            "model_mismatch": self._on_mismatch,
            "margin_eroded": self._on_margin_eroded,
            "incident": self._on_incident,
        }
        self.bus.subscribe(self._on_event, kinds=self._handlers.keys())

    def close(self) -> None:
        """Stop listening (the registry keeps its accumulated state)."""
        self.bus.unsubscribe(self._on_event)

    def __enter__(self) -> "MetricsBridge":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _on_event(self, event: ObsEvent) -> None:
        self._handlers[event.kind](event, event.shard or "main")

    def _on_period(self, event, shard: str) -> None:
        p = event.record
        self.periods.inc(shard=shard)
        self.offered.inc(p.offered, shard=shard)
        self.admitted.inc(p.admitted, shard=shard)
        if p.delay_estimate > p.target:
            self.violations.inc(shard=shard)
        self.delay.set(p.delay_estimate, shard=shard)
        self.target.set(p.target, shard=shard)
        self.alpha.set(p.alpha, shard=shard)
        self.queue.set(p.queue_length, shard=shard)
        self.delay_hist.observe(p.delay_estimate, shard=shard)

    def _on_shed(self, event, shard: str) -> None:
        if event.count:
            self.shed.inc(event.count, shard=shard, action=event.action)

    def _on_late(self, event, shard: str) -> None:
        self.late.inc(shard=shard, engine=event.engine)

    def _on_truncated(self, event, shard: str) -> None:
        self.truncations.inc(shard=shard)

    def _on_rebalanced(self, event, shard: str) -> None:
        self.rebalances.inc(mode=event.mode)

    def _on_ingest(self, event, shard: str) -> None:
        if event.accepted:
            self.ingest_accepted.inc(event.accepted, shard=shard)
        if event.dropped:
            # the buffer's only drop reason today; backpressure signaling
            # (ROADMAP) will add more
            self.ingest_dropped.inc(event.dropped, shard=shard,
                                    reason="capacity")
        if event.malformed:
            self.ingest_malformed.inc(event.malformed, shard=shard)
        if event.bytes_read:
            self.ingest_bytes.inc(event.bytes_read, shard=shard)
        self.ingest_rate.set(event.rate, shard=shard)
        self.ingest_skew.set(event.skew, shard=shard)
        self.tick_jitter.set(event.jitter, shard=shard)
        self.ingest_buffered.set(event.buffered, shard=shard)

    def _on_headroom(self, event, shard: str) -> None:
        self.headroom.set(event.new, shard=shard)

    def _on_worker_down(self, event, shard: str) -> None:
        self.worker_downs.inc(shard=shard)

    def _on_worker_restarted(self, event, shard: str) -> None:
        self.worker_restarts.inc(shard=shard)

    def _on_route_changed(self, event, shard: str) -> None:
        self.migrations.inc(source=event.source,
                            from_shard=str(event.from_shard),
                            to_shard=str(event.to_shard))

    def _on_migration_completed(self, event, shard: str) -> None:
        self.migration_drain.observe(event.virtual_seconds, shard=shard)

    def _on_sysid(self, event, shard: str) -> None:
        self.model_gain_ratio.set(event.gain_ratio, shard=shard)
        self.effective_gain_margin.set(event.gain_margin, shard=shard)
        self.oscillation_score.set(event.oscillation, shard=shard)

    def _on_mismatch(self, event, shard: str) -> None:
        self.mismatches.inc(shard=shard)

    def _on_margin_eroded(self, event, shard: str) -> None:
        self.margin_erosions.inc(shard=shard)

    def _on_incident(self, event, shard: str) -> None:
        self.incidents.inc(trigger=event.trigger)

    def _on_completions(self, event, shard: str) -> None:
        # per-departure delay samples, independent of span sampling: the
        # tail-latency histogram is always populated on /metrics
        observe = self.tuple_latency.observe
        for delay in event.delays:
            observe(delay, shard=shard)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def violation_ratio(self, shard: str = "main") -> float:
        """Fraction of closed periods whose estimate exceeded the target."""
        total = self.periods.value(shard=shard)
        if total <= 0:
            return 0.0
        return self.violations.value(shard=shard) / total


def install_metrics(bus: Optional[EventBus] = None,
                    registry: Optional[MetricsRegistry] = None,
                    prefix: str = "repro") -> MetricsBridge:
    """Wire the standard metric set onto a bus (defaults: global bus+registry)."""
    return MetricsBridge(bus=bus, registry=registry, prefix=prefix)
