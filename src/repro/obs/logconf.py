"""Logging configuration for the :mod:`repro` package.

The library itself only ever creates named loggers under the ``"repro"``
hierarchy and never touches the root logger; :func:`configure_logging` is
the opt-in that attaches a handler. Two environment knobs drive it:

``REPRO_LOG``
    level name (``debug``, ``info``, ``warning``, ``error``) — presence
    alone enables logging at that level;
``REPRO_LOG_JSON``
    when set to a truthy value (``1``, ``true``, ``yes``, ``on``), emit
    one JSON object per line instead of human-readable text.

Calling :func:`configure_logging` twice replaces the previous handler
rather than stacking (idempotent), so library entry points may call it
freely.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Optional, TextIO

#: root of the library's logger hierarchy
LOGGER_NAME = "repro"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_TEXT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line — machine-ingestable run logs."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """A child logger under the library hierarchy (``repro.<name>``)."""
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def _parse_level(level: str) -> int:
    resolved = logging.getLevelName(level.strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure_logging(level: Optional[str] = None,
                      json_lines: Optional[bool] = None,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach (or replace) the library's log handler.

    Arguments default from the environment: ``level`` from ``REPRO_LOG``
    (falling back to ``warning``) and ``json_lines`` from
    ``REPRO_LOG_JSON``. Returns the configured ``"repro"`` logger.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG", "warning")
    if json_lines is None:
        json_lines = os.environ.get(
            "REPRO_LOG_JSON", "").strip().lower() in _TRUTHY
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(_parse_level(level))
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(_TEXT_FORMAT))
    # replace rather than stack: drop any handler a prior call attached
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_managed", False):
            logger.removeHandler(existing)
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
