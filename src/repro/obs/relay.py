"""Cross-process event relay: pool workers -> one parent-side bus.

The experiment pool (:func:`repro.experiments.parallel.run_jobs`) runs
each job in a separate process, and every process has its own default
bus — so until now a parallel grid sweep or a fanned-out service run was
observable only from inside each worker, i.e. not at all. The relay
closes that gap with plain :mod:`multiprocessing` machinery:

* **worker side** — :func:`worker_relay` subscribes a forwarder to the
  worker's bus that ships every event (pickled, with a worker label)
  onto a shared manager queue;
* **parent side** — an :class:`EventRelay` owns the manager + queue and
  runs a pump thread that re-emits each arriving event on the parent
  bus, stamped with provenance: the event's ``shard`` becomes
  ``"<worker>"`` (single-loop jobs) or ``"<worker>/<shard>"`` (service
  jobs), and an informal ``worker`` attribute carries the raw label.

Because provenance rides the existing ``shard`` label, every parent-side
consumer — metrics bridge, health monitor, SSE clients, the dashboard —
sees per-worker series with zero changes; ``repro_obs_relayed_total``
counts relayed events per worker on the default registry. The
per-shard-process fleet (:mod:`repro.service.fleet`) reuses exactly this
uplink — a shard process is just a long-lived worker — and adds the
matching downlink, :class:`CommandChannel`: one plain per-worker queue
the parent pushes coordinator commands (headroom / target / drop-cap
ops) down through.

The pump re-emits on the parent bus, so a forwarder must never be
attached to that same bus (the event would loop forever). Forwarders
therefore skip any event already carrying a ``worker`` stamp, and
:func:`run_jobs` only attaches relays inside pool workers — the serial
fallback's events are already live on the parent bus, unlabelled.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as _queue
import threading
from contextlib import contextmanager
from typing import Dict, Optional

from .bus import EventBus, get_bus
from .events import ObsEvent
from .logconf import get_logger

_log = get_logger("obs.relay")

#: queue marker for flush barriers: ("__flush__", token)
_FLUSH = "__flush__"
#: queue marker that stops the pump: ("__stop__", None)
_STOP = "__stop__"

_flush_tokens = itertools.count()


def relay_forwarder(relay_queue, worker: str):
    """A bus subscriber that ships events onto a relay queue.

    Events that already carry a ``worker`` stamp were relayed once and
    are skipped — the guard that makes accidentally subscribing a
    forwarder to the re-emitting bus a no-op instead of a cycle.
    """
    def forward(event: ObsEvent) -> None:
        if getattr(event, "worker", None) is not None:
            return
        relay_queue.put((worker, event))
    return forward


@contextmanager
def worker_relay(relay_queue, worker: Optional[str] = None,
                 bus: Optional[EventBus] = None, kinds=None):
    """Forward this process's bus events to a parent's relay queue.

    Meant for the worker side of a process boundary: wrap the work in
    ``with worker_relay(relay.queue):`` and every event emitted on the
    (default) bus while inside ships to the parent. ``worker`` defaults
    to ``"pid<os.getpid()>"`` so provenance distinguishes pool
    processes. Yields the worker label.
    """
    bus = bus if bus is not None else get_bus()
    worker = worker if worker is not None else f"pid{os.getpid()}"
    forward = relay_forwarder(relay_queue, worker)
    bus.subscribe(forward, kinds=kinds)
    try:
        yield worker
    finally:
        bus.unsubscribe(forward)


class EventRelay:
    """Parent-side pump: manager queue in, provenance-stamped events out.

    Construct it where the fleet should be observed, hand
    :attr:`queue` to the workers (it is a manager proxy, so it survives
    pickling into :class:`~concurrent.futures.ProcessPoolExecutor`
    submissions, unlike a raw ``multiprocessing.Queue``), and subscribe
    to the relay's bus as usual. Use as a context manager or call
    :meth:`start`/:meth:`stop`.
    """

    def __init__(self, bus: Optional[EventBus] = None, registry=None,
                 poll_interval: float = 0.25):
        self.bus = bus if bus is not None else get_bus()
        self.poll_interval = float(poll_interval)
        self.relayed = 0
        self.errors = 0
        self.per_worker: Dict[str, int] = {}
        if registry is None:
            from .metrics import get_registry  # runtime: avoids import cycle
            registry = get_registry()
        self._counter = registry.counter(
            "repro_obs_relayed_total",
            "events re-emitted from relay worker processes")
        self._manager: Optional[multiprocessing.managers.SyncManager] = None
        self.queue = None
        self._thread: Optional[threading.Thread] = None
        self._flush_waits: Dict[int, threading.Event] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "EventRelay":
        """Spin up the manager queue and the pump thread (idempotent)."""
        if self._thread is not None:
            return self
        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._thread = threading.Thread(target=self._pump, daemon=True,
                                        name="repro-obs-relay")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain what is already queued, then stop pump and manager."""
        if self._thread is None:
            return
        self.queue.put((_STOP, None))
        self._thread.join(timeout=10.0)
        self._thread = None
        self._manager.shutdown()
        self._manager = None
        self.queue = None

    def flush(self, timeout: float = 10.0) -> bool:
        """Barrier: True once the pump has consumed everything queued
        before the call (workers must have finished putting)."""
        if self._thread is None:
            return True
        token = next(_flush_tokens)
        done = threading.Event()
        self._flush_waits[token] = done
        self.queue.put((_FLUSH, token))
        return done.wait(timeout)

    def __enter__(self) -> "EventRelay":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the pump
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        while True:
            try:
                worker, event = self.queue.get(timeout=self.poll_interval)
            except _queue.Empty:
                continue
            except (EOFError, OSError, ConnectionError):
                return  # manager went away under us (interpreter exit)
            if worker == _STOP:
                return
            if worker == _FLUSH:
                waiter = self._flush_waits.pop(event, None)
                if waiter is not None:
                    waiter.set()
                continue
            try:
                self._re_emit(worker, event)
            except Exception:
                self.errors += 1
                _log.exception("relay failed to re-emit an event from %s",
                               worker)

    def _re_emit(self, worker: str, event: ObsEvent) -> None:
        event.worker = worker
        event.shard = (worker if event.shard is None
                       else f"{worker}/{event.shard}")
        self.relayed += 1
        self.per_worker[worker] = self.per_worker.get(worker, 0) + 1
        self._counter.inc(worker=worker)
        self.bus.emit(event)


class CommandChannel:
    """Parent -> worker command queues, one per named worker.

    The downlink mirror of the relay's uplink: the relay ships events
    *up* to the coordinator process, this ships coordinator decisions
    *down* to long-lived workers (the process fleet's per-shard
    rebalance ops). Plain ``multiprocessing`` queues from the caller's
    context — no manager round-trip, commands are small and frequent.

    The parent keeps ownership: :meth:`drain` empties a dead worker's
    queue before its replacement is handed the same queue (stale
    commands must not leak across incarnations), and :meth:`close`
    tears every queue down at end of run.
    """

    def __init__(self, ctx=None):
        self._ctx = ctx if ctx is not None else multiprocessing
        self._queues: Dict[str, object] = {}

    def register(self, name: str):
        """The command queue for ``name`` (created on first use)."""
        if name not in self._queues:
            self._queues[name] = self._ctx.Queue()
        return self._queues[name]

    def send(self, name: str, command) -> None:
        self.register(name).put(command)

    def drain(self, name: str) -> list:
        """Empty ``name``'s queue; returns whatever was still undelivered."""
        q = self._queues.get(name)
        stale = []
        if q is None:
            return stale
        while True:
            try:
                stale.append(q.get_nowait())
            except _queue.Empty:
                return stale

    def close(self) -> None:
        for q in self._queues.values():
            q.close()
            q.cancel_join_thread()
        self._queues.clear()
