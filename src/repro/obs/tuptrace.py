"""Sampled per-tuple lifecycle tracing — socket to sink.

The Monitor observes delay in aggregate (per-period averages over the
departures list); :class:`~repro.obs.tracing.PeriodTracer` observes the
*loop's* wall clock. Neither can answer "what happened to *this* tuple" or
show the tail of the latency distribution the controller is shaping. This
module adds the missing per-tuple view:

* A :class:`TupleTracer` deterministically samples a configurable fraction
  of source arrivals (seed-stable multiplicative hashing over the arrival
  sequence number, so reruns trace the same tuples) and stamps each sampled
  arrival with a :class:`TraceContext`.
* The context rides the tuple's :class:`~repro.dsms.tuple_.Lineage` through
  the engine, recording span events at enqueue, every operator execution
  (with the measured cost), every shed decision (shedder class, reason,
  drop probability), migration/final drain hops and completion or drop.
* Finished traces land in a bounded ring, queryable by tuple id
  (:meth:`TupleTracer.drop_audit`) and exportable as JSONL or Chrome
  trace-event JSON (loadable in ``chrome://tracing`` / Perfetto).
* :class:`TailAnalyzer` decomposes p50/p95/p99 end-to-end latency into
  queue-wait vs service vs drain segments, and cross-checks the sampled
  mean against the Monitor's aggregate (:meth:`TailAnalyzer.cross_check`).
* With a bus attached, each finished trace is emitted as a
  :class:`~repro.obs.events.TupleTraceCompleted` event — a plain dict
  payload that pickles across the fleet's :class:`~repro.obs.relay`
  unchanged, so a parent-side :class:`TraceCollector` sees worker traces
  with provenance.

Cost contract (PR-4): at fraction 0.0 the only per-arrival work is one
integer increment and one comparison; unsampled tuples carry ``trace=None``
on their lineage and the engine hot path tests that with one ``is None``.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

from .events import TupleTraceCompleted

__all__ = [
    "TraceContext",
    "TupleTracer",
    "TraceCollector",
    "TailAnalyzer",
    "traces_to_jsonl",
    "traces_to_chrome",
]

#: 64-bit golden-ratio multiplier (Knuth's multiplicative hashing): maps the
#: arrival sequence number to a well-mixed 64-bit value so "hash < threshold"
#: samples an unbiased, seed-deterministic fraction of arrivals.
GOLDEN = 0x9E3779B97F4A7C15
MASK64 = (1 << 64) - 1


class TraceContext:
    """The span record riding one sampled source tuple through the system.

    Events are compact tuples ``(kind, t, dur, label, detail)`` — kinds are
    ``enqueue`` (entered an operator queue), ``service`` (one operator
    execution; ``dur`` is virtual seconds, ``detail`` the CPU cost),
    ``drain`` (a service span executed inside a drain scope — final drain
    or a migration hop), and ``shed`` (a drop decision; ``detail`` carries
    the shedder class, reason and drop probability).
    """

    __slots__ = ("tracer", "tuple_id", "source", "arrived", "events",
                 "done", "outcome", "shard")

    def __init__(self, tracer: "TupleTracer", tuple_id: str, source: str,
                 arrived: float):
        self.tracer = tracer
        self.tuple_id = tuple_id
        self.source = source
        self.arrived = arrived
        self.events: List[Tuple] = []
        self.done: Optional[float] = None
        self.outcome: Optional[str] = None
        self.shard = tracer.shard

    # ---- recording (called from the engine/loop hot paths) ----------- #
    def enqueue(self, op: str, t: float) -> None:
        self.events.append(("enqueue", t, 0.0, op, None))

    def service(self, op: str, t: float, dur: float, cost: float) -> None:
        scope = self.tracer._drain_label
        if scope is None:
            self.events.append(("service", t, dur, op, cost))
        else:
            self.events.append(("drain", t, dur, op,
                                {"cost": cost, "scope": scope}))

    def shed(self, where: str, t: float, *, reason: str,
             shedder: str = "", alpha: float = 0.0) -> None:
        self.events.append(("shed", t, 0.0, where,
                            {"reason": reason, "shedder": shedder,
                             "alpha": alpha}))

    def finish(self, t: float, outcome: str) -> None:
        if self.done is None:
            self.done = t
            self.outcome = outcome
            self.tracer._finish(self)

    # ---- views -------------------------------------------------------- #
    @property
    def latency(self) -> Optional[float]:
        return None if self.done is None else self.done - self.arrived

    def to_dict(self) -> dict:
        return {
            "tuple_id": self.tuple_id,
            "source": self.source,
            "shard": self.shard,
            "arrived": self.arrived,
            "done": self.done,
            "outcome": self.outcome,
            "latency": self.latency,
            "events": [
                {"kind": kind, "t": t, "dur": dur, "label": label,
                 "detail": detail}
                for kind, t, dur, label, detail in self.events
            ],
        }


class TupleTracer:
    """Deterministic sampled per-tuple tracer.

    ``fraction`` is the sampled share of source arrivals in [0, 1];
    ``seed`` offsets the hash sequence so distinct shards sample distinct
    (but individually reproducible) tuple sets. ``max_finished`` bounds
    the retained trace ring — the tracer can run forever without growing.
    With a truthy ``bus``, each finished trace is also emitted as a
    :class:`~repro.obs.events.TupleTraceCompleted` event.
    """

    def __init__(self, fraction: float = 0.0, seed: int = 0,
                 max_finished: int = 10000, bus=None,
                 shard: Optional[str] = None):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"sample fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.seed = int(seed)
        self.bus = bus
        self.shard = shard
        # fraction 1.0 must sample everything: hash < 2**64 always holds
        self._threshold = (1 << 64) if fraction >= 1.0 else int(fraction * (1 << 64))
        self._seq = 0
        self._drain_label: Optional[str] = None
        self.sampled = 0
        self.completed = 0
        self.dropped = 0
        self.finished: deque = deque()
        self.max_finished = int(max_finished)
        self._by_id: Dict[str, dict] = {}

    @property
    def offered(self) -> int:
        """Arrivals seen so far, sampled or not (the sampling frame)."""
        return self._seq

    # ---- admission ---------------------------------------------------- #
    def on_arrival(self, t: float, source: str) -> Optional[TraceContext]:
        """Sample one source arrival; None for the unsampled majority.

        Deterministic in the arrival *sequence number*: run the same
        arrival stream twice and the same tuples are traced.
        """
        seq = self._seq
        self._seq = seq + 1
        if self._threshold == 0:
            return None
        if ((seq + self.seed) * GOLDEN & MASK64) >= self._threshold:
            return None
        self.sampled += 1
        ctx = TraceContext(self, f"{source or 'in'}#{seq}", source, t)
        return ctx

    def on_entry_drop(self, ctx: TraceContext, t: float, actuator,
                      k: int = -1) -> None:
        """A sampled tuple was refused by the admission filter."""
        shedder = getattr(actuator, "shedder", actuator)
        ctx.shed("entry", t, reason="entry",
                 shedder=type(shedder).__name__,
                 alpha=float(getattr(actuator, "alpha", 0.0)))
        ctx.events.append(("period", t, 0.0, str(k), None))
        ctx.finish(t, "dropped")

    def on_ingest_drop(self, t: float, source: str) -> None:
        """A tuple was refused at a full ingest buffer (never admitted).

        Sampled on the same deterministic sequence as admissions so the
        audit trail covers buffer-full losses at the configured fraction.
        """
        ctx = self.on_arrival(t, source)
        if ctx is not None:
            ctx.shed("ingest", t, reason="buffer_full", shedder="IngestBuffer")
            ctx.finish(t, "dropped")

    # ---- drain scoping ------------------------------------------------ #
    @contextmanager
    def drain_scope(self, label: str):
        """Mark service spans recorded inside as drain hops (``label``).

        Used by the loop's end-of-run drain (``"final"``) and by
        migration drains (``"migrate:<source>"``) so the analyzer can
        separate drain time from steady-state service time.
        """
        prev = self._drain_label
        self._drain_label = label
        try:
            yield
        finally:
            self._drain_label = prev

    # ---- completion --------------------------------------------------- #
    def _finish(self, ctx: TraceContext) -> None:
        if ctx.outcome == "completed":
            self.completed += 1
        else:
            self.dropped += 1
        doc = ctx.to_dict()
        if len(self.finished) >= self.max_finished:
            evicted = self.finished.popleft()
            self._by_id.pop(evicted["tuple_id"], None)
        self.finished.append(doc)
        self._by_id[doc["tuple_id"]] = doc
        bus = self.bus
        if bus:
            bus.emit(TupleTraceCompleted(trace=doc))

    # ---- queries / export --------------------------------------------- #
    def records(self) -> List[dict]:
        return list(self.finished)

    def get(self, tuple_id: str) -> Optional[dict]:
        return self._by_id.get(tuple_id)

    def drop_audit(self, tuple_id: str) -> Optional[dict]:
        return drop_audit(self.finished, tuple_id)

    def export_jsonl(self, path) -> int:
        return traces_to_jsonl(self.finished, path)

    def export_chrome(self, path) -> int:
        return traces_to_chrome(self.finished, path)

    def analyzer(self) -> "TailAnalyzer":
        return TailAnalyzer(self.finished)


class TraceCollector:
    """Gather :class:`TupleTraceCompleted` events from a bus into a ring.

    The parent-side counterpart of worker tracers: subscribe it to the
    fleet bus and relayed traces (dict payloads with ``worker`` provenance
    stamped by the relay) accumulate here with the same query/export
    surface as a local :class:`TupleTracer`.
    """

    def __init__(self, bus, max_finished: int = 10000):
        self.finished: deque = deque(maxlen=int(max_finished))
        self.bus = bus
        bus.subscribe(self._on_event, kinds=(TupleTraceCompleted.kind,))

    def _on_event(self, event) -> None:
        doc = event.trace
        if not isinstance(doc, dict):
            return
        worker = getattr(event, "worker", None)
        if worker is not None and "worker" not in doc:
            doc = dict(doc, worker=worker)
        self.finished.append(doc)

    def close(self) -> None:
        self.bus.unsubscribe(self._on_event)

    def records(self) -> List[dict]:
        return list(self.finished)

    def drop_audit(self, tuple_id: str) -> Optional[dict]:
        return drop_audit(self.finished, tuple_id)

    def export_jsonl(self, path) -> int:
        return traces_to_jsonl(self.finished, path)

    def export_chrome(self, path) -> int:
        return traces_to_chrome(self.finished, path)

    def analyzer(self) -> "TailAnalyzer":
        return TailAnalyzer(self.finished)


def drop_audit(traces: Iterable[dict], tuple_id: str) -> Optional[dict]:
    """Explain why a sampled tuple was dropped (or that it completed).

    Returns ``None`` when the tuple id was never sampled (or has been
    evicted from the bounded ring); otherwise a dict with the outcome and,
    for drops, the shed decision that killed it (location, reason, shedder
    class, drop probability at the time).
    """
    doc = None
    for trace in traces:
        if trace.get("tuple_id") == tuple_id:
            doc = trace  # keep scanning: latest record wins
    if doc is None:
        return None
    audit = {
        "tuple_id": tuple_id,
        "source": doc.get("source"),
        "shard": doc.get("shard"),
        "worker": doc.get("worker"),
        "outcome": doc.get("outcome"),
        "arrived": doc.get("arrived"),
        "done": doc.get("done"),
        "latency": doc.get("latency"),
        "sheds": [],
    }
    for ev in doc.get("events", ()):
        if ev.get("kind") == "shed":
            detail = ev.get("detail") or {}
            audit["sheds"].append({
                "where": ev.get("label"),
                "t": ev.get("t"),
                "reason": detail.get("reason"),
                "shedder": detail.get("shedder"),
                "alpha": detail.get("alpha"),
            })
    if doc.get("outcome") == "dropped":
        audit["why"] = (audit["sheds"][-1] if audit["sheds"]
                        else {"reason": "unknown"})
    return audit


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #
def traces_to_jsonl(traces: Iterable[dict], path) -> int:
    """One finished trace per line; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for doc in traces:
            fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
            n += 1
    return n


def traces_to_chrome(traces: Iterable[dict], path) -> int:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Each shard becomes a "process" (named via ``process_name`` metadata),
    each traced tuple a "thread" whose lifetime is one complete ("X")
    event named by its outcome; service/drain spans nest inside it and
    enqueue/shed decisions appear as instant ("i") events. Timestamps are
    the engine's virtual seconds scaled to microseconds.
    """
    events: List[dict] = []
    pids: Dict[str, int] = {}
    tid = 0
    count = 0
    for doc in traces:
        count += 1
        shard = doc.get("shard") or "main"
        worker = doc.get("worker")
        if worker:
            shard = f"{worker}/{shard}"
        pid = pids.get(shard)
        if pid is None:
            pid = pids[shard] = len(pids) + 1
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": shard}})
        tid += 1
        arrived = doc.get("arrived") or 0.0
        done = doc.get("done")
        outcome = doc.get("outcome") or "pending"
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": doc.get("tuple_id", "?")},
        })
        events.append({
            "name": outcome, "cat": "tuple", "ph": "X", "pid": pid,
            "tid": tid, "ts": arrived * 1e6,
            "dur": ((done if done is not None else arrived) - arrived) * 1e6,
            "args": {"tuple_id": doc.get("tuple_id"),
                     "source": doc.get("source"),
                     "latency": doc.get("latency")},
        })
        for ev in doc.get("events", ()):
            kind = ev.get("kind")
            if kind in ("service", "drain"):
                events.append({
                    "name": ev.get("label"), "cat": kind, "ph": "X",
                    "pid": pid, "tid": tid, "ts": (ev.get("t") or 0.0) * 1e6,
                    "dur": (ev.get("dur") or 0.0) * 1e6,
                    "args": {"detail": ev.get("detail")},
                })
            else:
                events.append({
                    "name": f"{kind}:{ev.get('label')}", "cat": kind,
                    "ph": "i", "s": "t", "pid": pid, "tid": tid,
                    "ts": (ev.get("t") or 0.0) * 1e6,
                    "args": {"detail": ev.get("detail")},
                })
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return count


# --------------------------------------------------------------------- #
# tail analysis
# --------------------------------------------------------------------- #
def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(q * len(sorted_vals))))
    return sorted_vals[idx]


class TailAnalyzer:
    """Decompose sampled end-to-end latency into its lifecycle segments.

    Works over *completed* traces only (dropped tuples have no meaningful
    end-to-end latency — the paper's QoS mean excludes them the same way).
    For each trace: ``service`` is the sum of its operator execution spans,
    ``drain`` the sum of spans executed inside a drain scope (end-of-run
    flush or migration hops), and ``queue_wait`` the remainder of the
    end-to-end latency — time spent sitting in operator queues.
    """

    PERCENTILES = (0.50, 0.95, 0.99)

    def __init__(self, traces: Iterable[dict]):
        self.rows: List[dict] = []
        for doc in traces:
            if doc.get("outcome") != "completed":
                continue
            latency = doc.get("latency")
            if latency is None:
                continue
            service = 0.0
            drain = 0.0
            for ev in doc.get("events", ()):
                kind = ev.get("kind")
                if kind == "service":
                    service += ev.get("dur") or 0.0
                elif kind == "drain":
                    drain += ev.get("dur") or 0.0
            self.rows.append({
                "tuple_id": doc.get("tuple_id"),
                "latency": latency,
                "service": service,
                "drain": drain,
                "queue_wait": max(0.0, latency - service - drain),
            })
        self.rows.sort(key=lambda r: r["latency"])

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def mean_latency(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r["latency"] for r in self.rows) / len(self.rows)

    def percentiles(self) -> Dict[str, float]:
        vals = [r["latency"] for r in self.rows]
        return {f"p{int(q * 100)}": _percentile(vals, q)
                for q in self.PERCENTILES}

    def decompose(self, window: int = 25) -> Dict[str, Dict[str, float]]:
        """Segment breakdown at each percentile (plus the overall mean).

        At each percentile the breakdown averages the ``window`` traces
        centred on the rank (single-trace decompositions are noisy —
        whether *this* tuple hit a drain is luck; its neighbourhood is
        representative of the tail region).
        """
        out: Dict[str, Dict[str, float]] = {}
        n = len(self.rows)
        if n == 0:
            return out

        def segment_mean(rows: List[dict]) -> Dict[str, float]:
            m = len(rows)
            return {
                "latency": sum(r["latency"] for r in rows) / m,
                "queue_wait": sum(r["queue_wait"] for r in rows) / m,
                "service": sum(r["service"] for r in rows) / m,
                "drain": sum(r["drain"] for r in rows) / m,
            }

        out["mean"] = segment_mean(self.rows)
        for q in self.PERCENTILES:
            rank = min(n - 1, max(0, int(q * n)))
            lo = max(0, rank - window // 2)
            hi = min(n, lo + max(1, window))
            out[f"p{int(q * 100)}"] = segment_mean(self.rows[lo:hi])
        return out

    def cross_check(self, record, tolerance: float = 0.02) -> dict:
        """Sampled mean vs the Monitor's aggregate mean delay.

        ``record`` is the run's :class:`~repro.metrics.recorder.RunRecord`;
        the comparison population is every non-shed departure of the whole
        run (``qos(within_window=False).mean_delay``), which is exactly the
        traced-completion population at fraction 1.0 and its unbiased
        sampling frame at smaller fractions.
        """
        monitor_mean = record.qos(within_window=False).mean_delay
        sampled_mean = self.mean_latency
        if monitor_mean > 0:
            rel_err = abs(sampled_mean - monitor_mean) / monitor_mean
        else:
            rel_err = abs(sampled_mean)
        return {
            "sampled_mean": sampled_mean,
            "monitor_mean": monitor_mean,
            "rel_err": rel_err,
            "sampled_n": len(self.rows),
            "ok": rel_err <= tolerance,
        }
