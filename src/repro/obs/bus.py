"""The event bus: a typed, subscribable stream of observability events.

One process-wide default bus (:func:`get_bus`) is what the instrumented
layers emit to unless handed an explicit bus; subscribing to it is how an
operator opts into live observability. The design keeps the disabled path
near-free: every emit site guards with ``if bus:`` — a bus with no
subscribers is falsy, so when nobody is listening the event object is
never even constructed.

Subscribers are plain callables ``fn(event)``; an optional ``kinds``
filter restricts delivery to the named event kinds (see
:mod:`repro.obs.events`). Subscriber exceptions propagate to the emitter —
observability code that raises should fail loudly, not corrupt a run
silently.

Synchronous delivery is right for the in-process consumers (metrics
bridge, health detectors): they are cheap, and seeing events in emission
order is what makes them deterministic. It is wrong for consumers that
do I/O — a JSONL sink on a slow disk, an SSE client on a congested
socket — because the emitter *is* :meth:`ControlLoop.run_period`.
:class:`BoundedSubscription` is the backpressure boundary for those: a
per-subscriber ring buffer with an explicit drop policy, so one stalled
sink can never stall the control loop (see docs/THEORY.md §10).

:class:`ScopedEmitter` wraps a bus and stamps a ``shard`` label on every
event passing through; the service layer hands one to each shard's loop so
fleet subscribers can tell per-shard streams apart.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Iterable, List, Optional, Tuple

from ..errors import ObservabilityError
from .events import ObsEvent
from .logconf import get_logger

Subscriber = Callable[[ObsEvent], None]

_log = get_logger("obs.bus")

#: valid :class:`BoundedSubscription` overflow policies
DROP_POLICIES = ("drop_oldest", "drop_newest", "block")

_sub_ids = itertools.count()


class EventBus:
    """Synchronous fan-out of :class:`~repro.obs.events.ObsEvent` objects."""

    def __init__(self) -> None:
        self._subs: List[Tuple[Subscriber, Optional[frozenset]]] = []

    # ------------------------------------------------------------------ #
    # subscription management
    # ------------------------------------------------------------------ #
    def subscribe(self, callback: Subscriber,
                  kinds: Optional[Iterable[str]] = None) -> Subscriber:
        """Register ``callback`` for every event (or just the given kinds).

        Returns the callback so it can be used as a decorator and as the
        token for :meth:`unsubscribe`.
        """
        if not callable(callback):
            raise ObservabilityError(
                f"bus subscriber must be callable, got {callback!r}"
            )
        kindset = None if kinds is None else frozenset(kinds)
        if kindset is not None and not kindset:
            raise ObservabilityError("empty kinds filter would never match")
        self._subs.append((callback, kindset))
        return callback

    def unsubscribe(self, callback: Subscriber) -> bool:
        """Remove every registration of ``callback``; True if any removed.

        Compares with ``==`` so a bound method unsubscribes even though
        each attribute access builds a fresh method object.
        """
        before = len(self._subs)
        self._subs = [(cb, kinds) for cb, kinds in self._subs
                      if cb != callback]
        return len(self._subs) < before

    @contextmanager
    def subscribed(self, callback: Subscriber,
                   kinds: Optional[Iterable[str]] = None):
        """Scoped subscription: unsubscribes on exit even on error."""
        self.subscribe(callback, kinds)
        try:
            yield callback
        finally:
            self.unsubscribe(callback)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(self, event: ObsEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        for callback, kinds in tuple(self._subs):
            if kinds is None or event.kind in kinds:
                callback(event)

    def subscribe_bounded(self, callback: Optional[Subscriber] = None,
                          kinds: Optional[Iterable[str]] = None,
                          maxlen: int = 1024,
                          policy: str = "drop_oldest",
                          name: Optional[str] = None
                          ) -> "BoundedSubscription":
        """Subscribe through a bounded ring buffer instead of synchronously.

        With ``callback`` a daemon drain thread delivers buffered events;
        without one the caller pulls them via
        :meth:`BoundedSubscription.get`. Either way the emitter only ever
        pays an O(1) buffer append — see :class:`BoundedSubscription`.
        """
        return BoundedSubscription(self, callback, kinds=kinds,
                                   maxlen=maxlen, policy=policy, name=name)

    def scoped(self, shard: str) -> "ScopedEmitter":
        """An emitter that stamps ``shard`` on every event it forwards."""
        return ScopedEmitter(self, shard)

    def __bool__(self) -> bool:
        """True when at least one subscriber is listening.

        This is the whole opt-in mechanism: emit sites guard with
        ``if bus:`` so a silent bus costs one truthiness check per control
        period and no event allocation at all.
        """
        return bool(self._subs)

    def __len__(self) -> int:
        return len(self._subs)


class BoundedSubscription:
    """A bus subscription with a bounded buffer between emitter and sink.

    The emit path only ever executes :meth:`_offer` — an O(1) deque
    append under a lock — so a consumer that stalls (slow disk, stuck
    socket, wedged thread) backs up *its own* ring buffer, never the
    control loop that is emitting. When the buffer is full, ``policy``
    decides:

    ``drop_oldest``
        evict the oldest buffered event to make room (live dashboards:
        always see the freshest signal);
    ``drop_newest``
        discard the incoming event (archival sinks: never rewrite what
        is already queued);
    ``block``
        make the emitter wait for space (lossless pipelines that accept
        coupling their pace to the consumer's — never put one of these
        on a latency-critical loop).

    Every dropped event increments :attr:`dropped` and the process-wide
    ``repro_obs_dropped_total{subscriber=...,policy=...}`` counter, so
    loss on the observation path is itself observable.

    Two consumption modes share the buffer: pass a ``callback`` and a
    daemon thread drains events into it (exceptions are logged, not
    propagated — there is no emitter stack to propagate to); pass none
    and pull events yourself with :meth:`get` (how the SSE endpoint
    streams to each client).
    """

    def __init__(self, bus: "EventBus", callback: Optional[Subscriber] = None,
                 *, kinds: Optional[Iterable[str]] = None, maxlen: int = 1024,
                 policy: str = "drop_oldest", name: Optional[str] = None,
                 registry=None):
        if policy not in DROP_POLICIES:
            raise ObservabilityError(
                f"unknown drop policy {policy!r}; pick from {DROP_POLICIES}"
            )
        if maxlen < 1:
            raise ObservabilityError(f"buffer needs maxlen >= 1, got {maxlen}")
        if callback is not None and not callable(callback):
            raise ObservabilityError(
                f"bounded subscriber must be callable, got {callback!r}"
            )
        self.bus = bus
        self.callback = callback
        self.maxlen = int(maxlen)
        self.policy = policy
        self.name = name if name is not None else f"bounded{next(_sub_ids)}"
        self.dropped = 0
        self.delivered = 0
        self.errors = 0
        self._buf: Deque[ObsEvent] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._inflight = False
        if registry is None:
            from .metrics import get_registry  # runtime: avoids import cycle
            registry = get_registry()
        self._drop_counter = registry.counter(
            "repro_obs_dropped_total",
            "events dropped by bounded bus subscriptions")
        bus.subscribe(self._offer, kinds=kinds)
        self._thread: Optional[threading.Thread] = None
        if callback is not None:
            self._thread = threading.Thread(
                target=self._drain, daemon=True,
                name=f"repro-obs-{self.name}")
            self._thread.start()

    # ------------------------------------------------------------------ #
    # emit side (called synchronously from EventBus.emit)
    # ------------------------------------------------------------------ #
    def _offer(self, event: ObsEvent) -> None:
        with self._lock:
            if self._closed:
                return
            if len(self._buf) >= self.maxlen:
                if self.policy == "drop_oldest":
                    self._buf.popleft()
                    self._count_drop()
                elif self.policy == "drop_newest":
                    self._count_drop()
                    return
                else:  # block
                    while len(self._buf) >= self.maxlen and not self._closed:
                        self._not_full.wait()
                    if self._closed:
                        return
            self._buf.append(event)
            self._not_empty.notify()

    def _count_drop(self) -> None:
        self.dropped += 1
        self._drop_counter.inc(subscriber=self.name, policy=self.policy)

    # ------------------------------------------------------------------ #
    # consume side
    # ------------------------------------------------------------------ #
    def get(self, timeout: Optional[float] = None) -> Optional[ObsEvent]:
        """Pull the next buffered event; None on timeout or after close."""
        with self._not_empty:
            if not self._buf and not self._closed:
                self._not_empty.wait(timeout)
            if not self._buf:
                return None
            event = self._buf.popleft()
            self.delivered += 1
            self._not_full.notify()
            return event

    def _drain(self) -> None:
        while True:
            with self._not_empty:
                while not self._buf and not self._closed:
                    self._not_empty.wait()
                if not self._buf:
                    return  # closed and drained
                event = self._buf.popleft()
                self._inflight = True
                self._not_full.notify()
            try:
                self.callback(event)
            except Exception:
                self.errors += 1
                _log.exception("bounded subscriber %s raised", self.name)
            finally:
                with self._lock:
                    self.delivered += 1
                    self._inflight = False
                    self._not_empty.notify_all()

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait until the buffer is drained; False if ``timeout`` hit."""
        deadline = time.monotonic() + timeout
        with self._not_empty:
            while self._buf or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._not_empty.wait(remaining)
        return True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unsubscribe and release the drain thread (buffered events are
        still handed to a callback before its thread exits)."""
        self.bus.unsubscribe(self._offer)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "BoundedSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buf)


class ScopedEmitter:
    """A bus view that labels events with a shard name on the way through.

    Quacks like a bus for emit sites (``emit``, ``scoped``, ``__bool__``)
    but shares the underlying bus's subscribers — subscribing happens on
    the real bus, before or after the scoped view is created.
    """

    __slots__ = ("bus", "shard")

    def __init__(self, bus: EventBus, shard: str):
        self.bus = bus
        self.shard = str(shard)

    def emit(self, event: ObsEvent) -> None:
        if event.shard is None:
            event.shard = self.shard
        self.bus.emit(event)

    def scoped(self, shard: str) -> "ScopedEmitter":
        return ScopedEmitter(self.bus, shard)

    def __bool__(self) -> bool:
        return bool(self.bus)

    def __len__(self) -> int:
        return len(self.bus)


#: the process-wide default bus every instrumented layer falls back to
_DEFAULT_BUS = EventBus()


def get_bus() -> EventBus:
    """The process-wide default event bus (always the same object)."""
    return _DEFAULT_BUS
