"""The event bus: a typed, subscribable stream of observability events.

One process-wide default bus (:func:`get_bus`) is what the instrumented
layers emit to unless handed an explicit bus; subscribing to it is how an
operator opts into live observability. The design keeps the disabled path
near-free: every emit site guards with ``if bus:`` — a bus with no
subscribers is falsy, so when nobody is listening the event object is
never even constructed.

Subscribers are plain callables ``fn(event)``; an optional ``kinds``
filter restricts delivery to the named event kinds (see
:mod:`repro.obs.events`). Subscriber exceptions propagate to the emitter —
observability code that raises should fail loudly, not corrupt a run
silently.

:class:`ScopedEmitter` wraps a bus and stamps a ``shard`` label on every
event passing through; the service layer hands one to each shard's loop so
fleet subscribers can tell per-shard streams apart.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional, Tuple

from ..errors import ObservabilityError
from .events import ObsEvent

Subscriber = Callable[[ObsEvent], None]


class EventBus:
    """Synchronous fan-out of :class:`~repro.obs.events.ObsEvent` objects."""

    def __init__(self) -> None:
        self._subs: List[Tuple[Subscriber, Optional[frozenset]]] = []

    # ------------------------------------------------------------------ #
    # subscription management
    # ------------------------------------------------------------------ #
    def subscribe(self, callback: Subscriber,
                  kinds: Optional[Iterable[str]] = None) -> Subscriber:
        """Register ``callback`` for every event (or just the given kinds).

        Returns the callback so it can be used as a decorator and as the
        token for :meth:`unsubscribe`.
        """
        if not callable(callback):
            raise ObservabilityError(
                f"bus subscriber must be callable, got {callback!r}"
            )
        kindset = None if kinds is None else frozenset(kinds)
        if kindset is not None and not kindset:
            raise ObservabilityError("empty kinds filter would never match")
        self._subs.append((callback, kindset))
        return callback

    def unsubscribe(self, callback: Subscriber) -> bool:
        """Remove every registration of ``callback``; True if any removed.

        Compares with ``==`` so a bound method unsubscribes even though
        each attribute access builds a fresh method object.
        """
        before = len(self._subs)
        self._subs = [(cb, kinds) for cb, kinds in self._subs
                      if cb != callback]
        return len(self._subs) < before

    @contextmanager
    def subscribed(self, callback: Subscriber,
                   kinds: Optional[Iterable[str]] = None):
        """Scoped subscription: unsubscribes on exit even on error."""
        self.subscribe(callback, kinds)
        try:
            yield callback
        finally:
            self.unsubscribe(callback)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(self, event: ObsEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        for callback, kinds in tuple(self._subs):
            if kinds is None or event.kind in kinds:
                callback(event)

    def scoped(self, shard: str) -> "ScopedEmitter":
        """An emitter that stamps ``shard`` on every event it forwards."""
        return ScopedEmitter(self, shard)

    def __bool__(self) -> bool:
        """True when at least one subscriber is listening.

        This is the whole opt-in mechanism: emit sites guard with
        ``if bus:`` so a silent bus costs one truthiness check per control
        period and no event allocation at all.
        """
        return bool(self._subs)

    def __len__(self) -> int:
        return len(self._subs)


class ScopedEmitter:
    """A bus view that labels events with a shard name on the way through.

    Quacks like a bus for emit sites (``emit``, ``scoped``, ``__bool__``)
    but shares the underlying bus's subscribers — subscribing happens on
    the real bus, before or after the scoped view is created.
    """

    __slots__ = ("bus", "shard")

    def __init__(self, bus: EventBus, shard: str):
        self.bus = bus
        self.shard = str(shard)

    def emit(self, event: ObsEvent) -> None:
        if event.shard is None:
            event.shard = self.shard
        self.bus.emit(event)

    def scoped(self, shard: str) -> "ScopedEmitter":
        return ScopedEmitter(self.bus, shard)

    def __bool__(self) -> bool:
        return bool(self.bus)

    def __len__(self) -> int:
        return len(self.bus)


#: the process-wide default bus every instrumented layer falls back to
_DEFAULT_BUS = EventBus()


def get_bus() -> EventBus:
    """The process-wide default event bus (always the same object)."""
    return _DEFAULT_BUS
