"""Live observability for the load-shedding control stack.

Four pieces, all opt-in and zero-dependency:

- **Event bus** (:mod:`repro.obs.bus`): typed events — per-period control
  decisions, shed actions, late arrivals, drain truncations, shard
  rebalances — emitted live from the control loop, engines and service
  layer. Nothing is allocated when nobody subscribes.
- **Metrics registry** (:mod:`repro.obs.metrics`): process-wide counters,
  gauges and histograms with Prometheus text exposition and JSONL
  snapshots; :func:`install_metrics` bridges bus events into it.
- **Tracing** (:mod:`repro.obs.tracing`): per-period wall-clock spans
  (ingest / engine / monitor / controller / actuator / coordinator)
  aggregated into a flame summary exported next to the run CSVs.
- **Tuple tracing** (:mod:`repro.obs.tuptrace`): deterministic sampled
  per-tuple lifecycle spans — ingest to sink, including the shed
  decision that killed a tuple — with drop audit, Chrome-trace/JSONL
  export and tail-latency decomposition cross-checked against the
  monitor's QoS mean.
- **Health detectors** (:mod:`repro.obs.health`): online monitors for
  sustained QoS violation, actuator saturation, controller windup, drain
  truncation, shard imbalance, model mismatch and margin erosion,
  surfaced as structured reports.
- **System identification** (:mod:`repro.obs.sysid`): per-shard online
  RLS over the period stream — identified plant gain vs the design
  model, live stability margins for the effective loop, limit-cycle
  scoring — feeding the ``model_mismatch`` / ``margin_eroded`` health
  detectors and three new gauges.
- **Flight recorder** (:mod:`repro.obs.flight`): bounded per-shard rings
  of the recent event stream; on a critical health episode (or ``POST
  /incident``, or ``SIGUSR2``) writes a self-contained incident bundle
  that ``python -m repro.obs.flight replay`` re-runs deterministically
  and diffs float-for-float.
- **Live serving** (:mod:`repro.obs.serve`): an HTTP server over the bus
  and registry — Prometheus ``/metrics``, ``/health`` + ``/status``
  JSON, an SSE event stream and a single-file dashboard — with bounded
  per-client buffers so slow scrapers never touch the control loop.
- **Cross-process relay** (:mod:`repro.obs.relay`): pool workers forward
  their events to the parent's bus with per-worker provenance, so a
  parallel fan-out is observable from one place.

Typical live-observation session::

    from repro import obs

    bus = obs.get_bus()
    bridge = obs.install_metrics(bus)          # bus -> Prometheus metrics
    health = obs.HealthMonitor(bus)            # bus -> health reports
    bus.subscribe(print, kinds=("shed",))      # raw event feed

    ...  # run any ControlLoop / StreamService in this process

    print(bridge.registry.prometheus_text())
    print(health.summary())
"""

from .bus import (
    DROP_POLICIES,
    BoundedSubscription,
    EventBus,
    ScopedEmitter,
    get_bus,
)
from .events import (
    EVENT_KINDS,
    AlphaCapped,
    BackendSelected,
    CompletionStats,
    DrainTruncated,
    HeadroomChanged,
    IngestStats,
    LateArrival,
    ObsEvent,
    PeriodDecision,
    RunFinished,
    RunStarted,
    IncidentDumped,
    MarginEroded,
    ModelMismatch,
    ShardRebalanced,
    ShedAction,
    SysIdUpdate,
    TargetChanged,
    TupleTraceCompleted,
    WorkerDown,
    WorkerRestarted,
    event_to_dict,
)
from .flight import (
    FLIGHT_FORMAT,
    FlightRecorder,
    ReplayDiff,
    load_bundle,
    replay_bundle,
)
from .health import (
    HEALTH_KINDS,
    SEVERITY_CRITICAL,
    SEVERITY_WARNING,
    HealthMonitor,
    HealthReport,
)
from .logconf import JsonLogFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    JsonlSnapshotSink,
    MetricsBridge,
    MetricsRegistry,
    PromFileDumper,
    get_registry,
    install_metrics,
    parse_prometheus_text,
    start_prom_dump,
)
from .relay import CommandChannel, EventRelay, relay_forwarder, worker_relay
from .serve import ObsServer
from .sinks import PeriodJsonlSink
from .sysid import RlsGainEstimator, SysIdMonitor, oscillation_score
from .tracing import SEGMENTS, PeriodTracer, merge_flames
from .tuptrace import (
    TailAnalyzer,
    TraceCollector,
    TraceContext,
    TupleTracer,
    drop_audit,
    traces_to_chrome,
    traces_to_jsonl,
)

__all__ = [
    # bus
    "EventBus", "ScopedEmitter", "get_bus",
    "BoundedSubscription", "DROP_POLICIES",
    # events
    "ObsEvent", "EVENT_KINDS", "RunStarted", "PeriodDecision", "ShedAction",
    "LateArrival", "DrainTruncated", "TargetChanged", "HeadroomChanged",
    "AlphaCapped", "ShardRebalanced", "BackendSelected", "IngestStats",
    "RunFinished", "CompletionStats", "TupleTraceCompleted",
    "WorkerDown", "WorkerRestarted",
    "SysIdUpdate", "ModelMismatch", "MarginEroded", "IncidentDumped",
    "event_to_dict",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "JsonlSnapshotSink", "MetricsBridge", "get_registry", "install_metrics",
    "SUMMARY_QUANTILES", "parse_prometheus_text",
    "PromFileDumper", "start_prom_dump",
    # serving & relay
    "ObsServer", "EventRelay", "worker_relay", "relay_forwarder",
    "CommandChannel",
    # tracing
    "PeriodTracer", "SEGMENTS", "merge_flames",
    # tuple tracing
    "TupleTracer", "TraceContext", "TraceCollector", "TailAnalyzer",
    "drop_audit", "traces_to_jsonl", "traces_to_chrome",
    # health
    "HealthMonitor", "HealthReport", "HEALTH_KINDS",
    "SEVERITY_WARNING", "SEVERITY_CRITICAL",
    # system identification
    "SysIdMonitor", "RlsGainEstimator", "oscillation_score",
    # flight recorder
    "FlightRecorder", "ReplayDiff", "FLIGHT_FORMAT",
    "load_bundle", "replay_bundle",
    # logging
    "configure_logging", "get_logger", "JsonLogFormatter",
    # sinks
    "PeriodJsonlSink",
]
