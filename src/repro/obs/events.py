"""Typed observability events.

Every instrumented layer announces what it just did by emitting one of
these dataclasses on an :class:`~repro.obs.bus.EventBus`. Events are the
*only* coupling between the instrumented code and the observability
consumers (metrics bridge, health detectors, JSONL sinks, user callbacks):
producers construct an event and hand it to the bus; everything else is a
subscriber.

Each event carries a class-level ``kind`` tag (stable, snake_case) that
subscribers can filter on without ``isinstance`` chains, and an optional
``shard`` label stamped by the service layer's scoped emitters so fleet
subscribers can tell the shards apart.

Events are deliberately plain (mutable) dataclasses: the service layer's
:class:`~repro.obs.bus.ScopedEmitter` stamps ``shard`` on the way through,
and consumers treat them as read-only.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, ClassVar, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..metrics.recorder import PeriodRecord


class ObsEvent:
    """Base class for all observability events."""

    kind: ClassVar[str] = "event"
    shard: Optional[str]


@dataclass
class RunStarted(ObsEvent):
    """A control loop began a run (the actuator was armed wide open)."""

    kind: ClassVar[str] = "run_started"
    period: float = 0.0
    shard: Optional[str] = None


@dataclass
class PeriodDecision(ObsEvent):
    """One control period closed: measurement + decision, per Fig. 3.

    Carries the full :class:`~repro.metrics.recorder.PeriodRecord` so
    subscribers see exactly what the run record will hold — the online
    view is the offline view, just earlier.
    """

    kind: ClassVar[str] = "period"
    record: "PeriodRecord" = None
    shard: Optional[str] = None


@dataclass
class ShedAction(ObsEvent):
    """Tuples were discarded during/at the close of a control period."""

    kind: ClassVar[str] = "shed"
    k: int = 0
    #: "entry" — dropped by the admission filter before the engine;
    #: "retro" — culled from operator queues at the period boundary
    action: str = "entry"
    count: int = 0
    alpha: float = 0.0
    shard: Optional[str] = None


@dataclass
class LateArrival(ObsEvent):
    """A tuple was submitted with a timestamp behind the engine clock.

    The engine rewrites such timestamps to "now" (a tuple cannot arrive
    in the past), silently shortening its measured delay; a workload
    generator producing these usually has a clock bug. ``total`` is the
    engine's cumulative late-arrival count including this one.
    """

    kind: ClassVar[str] = "late_arrival"
    engine: str = ""
    submitted: float = 0.0
    clock: float = 0.0
    total: int = 0
    shard: Optional[str] = None


@dataclass
class DrainTruncated(ObsEvent):
    """The end-of-run drain hit its virtual deadline with tuples left."""

    kind: ClassVar[str] = "drain_truncated"
    leftover: int = 0
    time: float = 0.0
    shard: Optional[str] = None


@dataclass
class TargetChanged(ObsEvent):
    """A shard's delay target was changed from outside its loop."""

    kind: ClassVar[str] = "target_changed"
    old: float = 0.0
    new: float = 0.0
    shard: Optional[str] = None


@dataclass
class HeadroomChanged(ObsEvent):
    """A shard's CPU share was changed by the coordinator."""

    kind: ClassVar[str] = "headroom_changed"
    old: float = 0.0
    new: float = 0.0
    shard: Optional[str] = None


@dataclass
class AlphaCapped(ObsEvent):
    """A shard's entry-drop probability was capped by the coordinator."""

    kind: ClassVar[str] = "alpha_capped"
    cap: float = 1.0
    shard: Optional[str] = None


@dataclass
class ShardRebalanced(ObsEvent):
    """The coordinator closed one fleet-wide rebalancing decision.

    ``detail`` is the coordinator's history entry for the period — the
    observed demands and the allocations it handed out (mode-dependent).
    """

    kind: ClassVar[str] = "rebalanced"
    k: int = 0
    mode: str = "independent"
    detail: dict = field(default_factory=dict)
    shard: Optional[str] = None


@dataclass
class BackendSelected(ObsEvent):
    """An engine backend was constructed through the factory registry."""

    kind: ClassVar[str] = "backend"
    backend: str = ""
    engine: str = ""
    shard: Optional[str] = None


@dataclass
class RunFinished(ObsEvent):
    """A control loop finished (drain complete, record closed)."""

    kind: ClassVar[str] = "run_finished"
    periods: int = 0
    duration: float = 0.0
    drain_truncated: bool = False
    shard: Optional[str] = None


@dataclass
class IngestStats(ObsEvent):
    """One control period's ingestion-side counters (live serving mode).

    Emitted by the live runner just before it feeds the period's arrivals
    to the loop, so the period's SSE frame and the dashboard see the
    ingest state that produced it. Counts are per-period deltas except
    ``buffered`` (queue depth now) and the skews (latest/max observed).
    """

    kind: ClassVar[str] = "ingest"
    k: int = 0
    accepted: int = 0        # tuples stamped into the buffer this period
    dropped: int = 0         # tuples refused at the full buffer this period
    malformed: int = 0       # undecodable lines this period
    bytes_read: int = 0      # socket bytes this period
    connections: int = 0     # currently-open client connections
    rate: float = 0.0        # accepted / period — offered tuples/s
    skew: float = 0.0        # latest sender-vs-arrival clock skew (s)
    jitter: float = 0.0      # how late the period tick fired (s)
    buffered: int = 0        # arrivals still waiting past the boundary
    shard: Optional[str] = None


@dataclass
class CompletionStats(ObsEvent):
    """One control period's resolved departures (delay samples).

    Emitted at every period close from the Monitor's departure list —
    independent of tuple-trace sampling — so the metrics bridge can feed a
    latency histogram and the dashboard a percentile pane even with span
    tracing off. ``delays`` holds the non-shed (completed) delays only;
    ``shed`` counts the departures lost to in-network shedding.
    """

    kind: ClassVar[str] = "completions"
    k: int = 0
    count: int = 0
    shed: int = 0
    delays: list = field(default_factory=list)
    shard: Optional[str] = None


@dataclass
class TupleTraceCompleted(ObsEvent):
    """A sampled tuple finished its lifecycle (completed or dropped).

    ``trace`` is the plain-dict trace record built by
    :class:`~repro.obs.tuptrace.TupleTracer` — deliberately a dict, not a
    dataclass, so it pickles across the fleet relay unchanged and lands in
    a parent-side :class:`~repro.obs.tuptrace.TraceCollector` with worker
    provenance.
    """

    kind: ClassVar[str] = "tuple_trace"
    trace: dict = field(default_factory=dict)
    shard: Optional[str] = None


@dataclass
class WorkerDown(ObsEvent):
    """A fleet shard's worker process died before finishing its run.

    Emitted by the parent (:class:`~repro.service.fleet.ProcessFleet`)
    when it notices the dead process, before spawning the replacement.
    ``last_k`` is the last period the parent had acknowledged — the
    replacement replays up to there from the command journal.
    """

    kind: ClassVar[str] = "worker_down"
    exitcode: Optional[int] = None
    restarts: int = 0
    last_k: int = -1
    shard: Optional[str] = None


@dataclass
class WorkerRestarted(ObsEvent):
    """A replacement worker finished its replay and rejoined the fleet.

    ``epoch`` is the worker's routing-table epoch after replay — if the
    journal contained a migration cutover, this proves the replacement
    restored the post-migration routing.
    """

    kind: ClassVar[str] = "worker_restarted"
    resumed_k: int = -1
    restarts: int = 0
    epoch: int = 0
    shard: Optional[str] = None


@dataclass
class RouteChanged(ObsEvent):
    """A routing-table entry was re-pinned (migration cutover committed).

    Emitted by the runtime that owns the authoritative table immediately
    after :meth:`~repro.service.router.RoutingTable.migrate` returns, with
    the cutover's epoch — from the *next* period on, ``source``'s tuples
    route to ``to_shard``.
    """

    kind: ClassVar[str] = "route_changed"
    k: int = 0
    source: str = ""
    from_shard: int = -1
    to_shard: int = -1
    epoch: int = 0
    shard: Optional[str] = None


@dataclass
class MigrationStarted(ObsEvent):
    """A source migration began: the old shard is draining the source.

    ``backlog`` is the shard's outstanding tuple count when the drain
    started (all sources — the engine drains its whole queue so the
    source's in-flight window contribution is fully flushed).
    """

    kind: ClassVar[str] = "migration_started"
    k: int = 0
    source: str = ""
    from_shard: int = -1
    to_shard: int = -1
    backlog: int = 0
    shard: Optional[str] = None


@dataclass
class MigrationCompleted(ObsEvent):
    """A source migration's drain finished (cutover commits right after).

    ``virtual_seconds`` is how much engine (virtual) time the drain
    consumed; ``truncated`` means the drain budget expired with tuples
    still queued (they stay on the old shard and complete there).
    """

    kind: ClassVar[str] = "migration_completed"
    k: int = 0
    source: str = ""
    from_shard: int = -1
    to_shard: int = -1
    drained: int = 0
    leftover: int = 0
    virtual_seconds: float = 0.0
    truncated: bool = False
    shard: Optional[str] = None


@dataclass
class SysIdUpdate(ObsEvent):
    """One period's online system-identification state for a shard.

    Emitted by :class:`~repro.obs.sysid.SysIdMonitor` after folding the
    period's ``(Δu, Δy)`` pair into its RLS estimator. ``gain_ratio`` is
    the identified effective plant gain over the design model's gain (the
    paper's ``K``); the margin fields are :mod:`repro.control.margins`
    re-evaluated for ``K * L_nominal``. ``converged`` turns true once the
    estimator has absorbed enough unsaturated samples to be trusted;
    detectors ignore pre-convergence values.
    """

    kind: ClassVar[str] = "sysid"
    k: int = 0
    identified_gain: float = 0.0   # plant gain cT/H with the identified cost
    design_gain: float = 0.0       # the controller's model gain this period
    gain_ratio: float = 1.0        # identified / design — the paper's K
    service_rate: float = 0.0      # identified service rate H/c (tuples/s)
    gain_margin: float = 0.0       # effective loop gain margin (nominal / K)
    phase_margin_deg: float = 0.0  # from the throttled full margin sweep
    modulus_margin: float = 0.0    # from the throttled full margin sweep
    oscillation: float = 0.0       # limit-cycle score in [0, 1]
    converged: bool = False
    saturated: bool = False        # this period's sample was excluded
    samples: int = 0               # RLS samples absorbed so far
    excluded: int = 0              # samples skipped (saturation / idle)
    mismatch: bool = False         # gain ratio beyond the mismatch threshold
    eroded: bool = False           # effective margins below their floors
    shard: Optional[str] = None


@dataclass
class ModelMismatch(ObsEvent):
    """The identified plant gain drifted beyond the design model's.

    Emitted every period the (converged) identified/design gain ratio sits
    outside ``[1/threshold, threshold]`` — the precise moment the paper's
    ``1/K`` robustness argument starts being spent for real.
    """

    kind: ClassVar[str] = "model_mismatch"
    k: int = 0
    gain_ratio: float = 1.0
    threshold: float = 1.5
    identified_gain: float = 0.0
    design_gain: float = 0.0
    shard: Optional[str] = None


@dataclass
class MarginEroded(ObsEvent):
    """The re-evaluated stability margins dipped below their floors."""

    kind: ClassVar[str] = "margin_eroded"
    k: int = 0
    gain_margin: float = 0.0
    gain_margin_floor: float = 0.0
    modulus_margin: float = 0.0
    modulus_floor: float = 0.0
    shard: Optional[str] = None


@dataclass
class IncidentDumped(ObsEvent):
    """The flight recorder wrote an incident bundle to disk."""

    kind: ClassVar[str] = "incident"
    reason: str = ""
    trigger: str = "manual"   # manual | health | http | signal
    path: str = ""
    shard: Optional[str] = None


def event_to_dict(event: ObsEvent) -> dict:
    """A JSON-able view of any event (SSE frames, ``/status`` snapshots).

    Nested dataclasses (the :class:`PeriodDecision` record) flatten to
    plain dicts; the relay's informal ``worker`` provenance stamp rides
    along when present.
    """
    doc = {"kind": event.kind}
    if is_dataclass(event):
        for f in fields(event):
            value = getattr(event, f.name)
            if is_dataclass(value) and not isinstance(value, type):
                value = asdict(value)
            doc[f.name] = value
    worker = getattr(event, "worker", None)
    if worker is not None:
        doc["worker"] = worker
    return doc


#: every event kind the library emits, for subscriber validation
EVENT_KINDS = tuple(
    cls.kind for cls in (
        RunStarted, PeriodDecision, ShedAction, LateArrival, DrainTruncated,
        TargetChanged, HeadroomChanged, AlphaCapped, ShardRebalanced,
        BackendSelected, IngestStats, RunFinished, CompletionStats,
        TupleTraceCompleted, WorkerDown, WorkerRestarted, RouteChanged,
        MigrationStarted, MigrationCompleted,
        SysIdUpdate, ModelMismatch, MarginEroded, IncidentDumped,
    )
)
