"""Live HTTP serving of the observability layer (stdlib-only).

:class:`ObsServer` binds a background :class:`ThreadingHTTPServer` to the
event bus + metrics registry and exposes the control signals the paper
argues *are* the system's health, while the run is in flight:

========== ==========================================================
path       serves
========== ==========================================================
``/``      single-file HTML dashboard: ŷ(k) vs target, q(k), α and
           per-shard headroom, streamed over SSE
``/metrics``  Prometheus text exposition 0.0.4 of the registry
``/health``   :meth:`HealthMonitor.summary` JSON (online detectors);
              HTTP 503 while any *critical* episode is open, so a
              liveness probe needs no JSON parsing
``/status``   JSON snapshot: latest per-shard period, headroom split,
              event counts, plus the service's own ``status_fn`` view
``/events``   Server-Sent Events live stream of bus events; defaults to
              every kind except the firehose ``tuple_trace`` spans
              (``?kinds=a,b`` narrows or opts in)
``/incident`` ``POST``: ask the attached flight recorder to dump an
              incident bundle now (404 without a recorder)
========== ==========================================================

Every SSE client gets its own :class:`~repro.obs.bus.BoundedSubscription`
(``drop_oldest``), so a stalled browser tab backs up — and then loses —
only its own buffer, visibly (``repro_obs_dropped_total``), while the
control loop's emit path stays an O(1) append. docs/THEORY.md §10 makes
the argument precise.

The listen port comes from the constructor, else ``REPRO_OBS_PORT``,
else an ephemeral port; :attr:`ObsServer.url` reports what was bound.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from ..errors import ObservabilityError
from .bus import BoundedSubscription, EventBus, get_bus
from .events import EVENT_KINDS, ObsEvent, event_to_dict
from .health import HealthMonitor
from .logconf import get_logger
from .metrics import MetricsRegistry, get_registry

_log = get_logger("obs.serve")

DEFAULT_HOST = "127.0.0.1"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def default_port() -> int:
    """``REPRO_OBS_PORT`` when set, else 0 (ephemeral)."""
    raw = os.environ.get("REPRO_OBS_PORT", "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise ObservabilityError(
            f"REPRO_OBS_PORT must be an integer, got {raw!r}"
        ) from None


class _LiveState:
    """Cheap synchronous subscriber keeping the latest signal per shard."""

    def __init__(self, bus: EventBus):
        self.bus = bus
        self.started = time.time()
        self.events_seen = 0
        self.counts: Dict[str, int] = {}
        self.shards: Dict[str, dict] = {}
        self.headroom: Dict[str, float] = {}
        self.ingest: Dict[str, dict] = {}
        self._lock = threading.Lock()
        bus.subscribe(self._on_event)

    def _on_event(self, event: ObsEvent) -> None:
        with self._lock:
            self.events_seen += 1
            kind = event.kind
            self.counts[kind] = self.counts.get(kind, 0) + 1
            shard = event.shard or "main"
            if kind == "period":
                self.shards[shard] = event_to_dict(event).get("record") or {}
            elif kind == "headroom_changed":
                self.headroom[shard] = event.new
            elif kind == "ingest":
                self.ingest[shard] = event_to_dict(event)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self.started, 3),
                "events_seen": self.events_seen,
                "event_counts": dict(self.counts),
                "shards": {name: dict(doc)
                           for name, doc in self.shards.items()},
                "headroom": dict(self.headroom),
                "ingest": {name: dict(doc)
                           for name, doc in self.ingest.items()},
            }

    def close(self) -> None:
        self.bus.unsubscribe(self._on_event)


class ObsServer:
    """Background HTTP server over a bus + registry (+ optional status)."""

    def __init__(self, port: Optional[int] = None, host: str = DEFAULT_HOST,
                 bus: Optional[EventBus] = None,
                 registry: Optional[MetricsRegistry] = None,
                 health: Optional[HealthMonitor] = None,
                 status_fn: Optional[Callable[[], dict]] = None,
                 sse_maxlen: int = 512,
                 flight=None):
        self.bus = bus if bus is not None else get_bus()
        self.registry = registry if registry is not None else get_registry()
        self._own_health = health is None
        self.health = health if health is not None else HealthMonitor(self.bus)
        self.status_fn = status_fn
        #: optional :class:`~repro.obs.flight.FlightRecorder` behind
        #: ``POST /incident``
        self.flight = flight
        self.sse_maxlen = int(sse_maxlen)
        self.sse_clients = 0
        self.sse_dropped = 0
        self.state = _LiveState(self.bus)
        self._stopping = threading.Event()
        self._httpd = ThreadingHTTPServer(
            (host, default_port() if port is None else int(port)), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.obs = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="repro-obs-serve")
            self._thread.start()
            _log.info("observability server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut down: SSE streams end, the socket closes, taps detach."""
        if self._thread is None:
            return
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread = None
        self.state.close()
        if self._own_health:
            self.health.close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # endpoint documents
    # ------------------------------------------------------------------ #
    def status_document(self) -> dict:
        doc = self.state.snapshot()
        doc["sse_clients"] = self.sse_clients
        doc["sse_dropped"] = self.sse_dropped
        doc["service"] = self.status_fn() if self.status_fn is not None else None
        return doc


class _Handler(BaseHTTPRequestHandler):
    server_version = "ReproObs/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def obs(self) -> ObsServer:
        return self.server.obs  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        _log.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, body: str, content_type: str = "application/json",
              code: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(self.obs.registry.prometheus_text(),
                           PROMETHEUS_CONTENT_TYPE)
            elif path == "/health":
                # degraded-but-standing (warnings) still answers 200; an
                # open *critical* episode flips the status code so plain
                # HTTP probes see it without parsing the report JSON
                code = 503 if self.obs.health.critical_open() else 200
                self._send(json.dumps(self.obs.health.summary()), code=code)
            elif path == "/status":
                self._send(json.dumps(self.obs.status_document()))
            elif path == "/events":
                self._serve_sse()
            elif path in ("/", "/index.html"):
                self._send(DASHBOARD_HTML, "text/html; charset=utf-8")
            else:
                self._send(json.dumps({"error": f"no route {path!r}"}),
                           code=404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            # drain any request body so keep-alive connections stay sane
            length = int(self.headers.get("Content-Length") or 0)
            reason = ""
            if length > 0:
                raw = self.rfile.read(min(length, 65536))
                try:
                    reason = str(json.loads(raw).get("reason", ""))
                except (ValueError, AttributeError):
                    reason = raw.decode("utf-8", "replace").strip()
            if path != "/incident":
                self._send(json.dumps({"error": f"no route {path!r}"}),
                           code=404)
                return
            recorder = self.obs.flight
            if recorder is None:
                self._send(json.dumps(
                    {"error": "no flight recorder attached to this server"}),
                    code=404)
                return
            bundle_path = recorder.dump(
                reason=reason or "operator request via POST /incident",
                trigger="http")
            if bundle_path is None:
                self._send(json.dumps(
                    {"error": "recorder closed or dump budget exhausted"}),
                    code=409)
                return
            self._send(json.dumps({"path": str(bundle_path)}))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    # ------------------------------------------------------------------ #
    # SSE
    # ------------------------------------------------------------------ #
    #: kinds an SSE client receives without an explicit ``?kinds=`` ask.
    #: ``tuple_trace`` is excluded on purpose: at high sample fractions the
    #: per-tuple span stream can outrun a browser tab's ring buffer and
    #: evict the period frames the dashboard lives on. Opt in with
    #: ``/events?kinds=tuple_trace`` (or a comma list including it).
    SSE_DEFAULT_KINDS = frozenset(EVENT_KINDS) - {"tuple_trace"}

    def _serve_sse(self) -> None:
        obs = self.obs
        raw = parse_qs(urlparse(self.path).query).get("kinds", [""])[0]
        wanted = frozenset(k.strip() for k in raw.split(",") if k.strip())
        sub = BoundedSubscription(
            obs.bus, kinds=wanted or self.SSE_DEFAULT_KINDS,
            maxlen=obs.sse_maxlen, policy="drop_oldest",
            name=f"sse:{self.client_address[0]}:{self.client_address[1]}")
        obs.sse_clients += 1
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            self._write_frame("hello", obs.state.snapshot())
            while not obs._stopping.is_set():
                event = sub.get(timeout=1.0)
                if event is None:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                else:
                    self._write_frame(event.kind, event_to_dict(event))
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # disconnected client; the subscription closes below
        finally:
            sub.close()
            obs.sse_dropped += sub.dropped
            obs.sse_clients -= 1

    def _write_frame(self, kind: str, doc: dict) -> None:
        frame = f"event: {kind}\ndata: {json.dumps(doc)}\n\n"
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()


# ---------------------------------------------------------------------- #
# the dashboard: one file, no dependencies, fed by /events
# ---------------------------------------------------------------------- #
DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro live dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --surface-2: #f0efec;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --grid: #e3e2de;
    --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
    --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
    --series-7: #4a3aa7; --series-8: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --surface-2: #383835;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --grid: #32322f;
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
      --series-7: #9085e9; --series-8: #e66767;
    }
  }
  body { margin: 0; }
  .viz-root {
    min-height: 100vh; background: var(--surface-1);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
    padding: 20px 24px;
  }
  header { display: flex; align-items: baseline; gap: 14px; flex-wrap: wrap; }
  h1 { font-size: 17px; margin: 0 8px 0 0; font-weight: 600; }
  .meta { color: var(--text-secondary); font-size: 12px; }
  #conn::before { content: "●"; margin-right: 5px; }
  #conn.ok::before { color: var(--series-3); }
  #conn.bad::before { color: var(--series-8); }
  #legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 10px 0 2px; }
  .chip { display: inline-flex; align-items: center; gap: 6px;
          color: var(--text-secondary); font-size: 12px; }
  .chip i { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
  .grid2 { display: grid; gap: 18px;
           grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); }
  figure { margin: 8px 0 0; }
  figcaption { font-size: 13px; color: var(--text-primary); font-weight: 600;
               display: flex; justify-content: space-between; gap: 8px; }
  figcaption .readout { color: var(--text-secondary); font-weight: 400;
                        font-size: 12px; font-variant-numeric: tabular-nums; }
  svg { width: 100%; height: 180px; display: block; }
  .gridline { stroke: var(--grid); stroke-width: 1; }
  .axis-label { fill: var(--text-secondary); font-size: 10px; }
  .refline { stroke: var(--text-secondary); stroke-width: 1.5;
             stroke-dasharray: 5 4; }
  .annoline { stroke: var(--series-4); stroke-width: 1.5;
              stroke-dasharray: 3 3; }
  .annolabel { fill: var(--series-4); font-size: 9px; }
  .series { fill: none; stroke-width: 2; stroke-linejoin: round; }
</style>
</head>
<body>
<div class="viz-root">
  <header>
    <h1>load-shedding control signals</h1>
    <span id="conn" class="meta bad">connecting</span>
    <span id="stats" class="meta"></span>
  </header>
  <div id="legend"></div>
  <div class="grid2">
    <figure><figcaption>delay estimate &#375;(k) vs target (s)
      <span class="readout" id="r-delay"></span></figcaption>
      <svg id="c-delay"></svg></figure>
    <figure><figcaption>virtual queue q(k)
      <span class="readout" id="r-queue"></span></figcaption>
      <svg id="c-queue"></svg></figure>
    <figure><figcaption>drop probability &#945;(k)
      <span class="readout" id="r-alpha"></span></figcaption>
      <svg id="c-alpha"></svg></figure>
    <figure><figcaption>headroom share H per shard
      <span class="readout" id="r-headroom"></span></figcaption>
      <svg id="c-headroom"></svg></figure>
    <figure><figcaption>ingest rate (offered tuples/s, live serving)
      <span class="readout" id="r-ingest"></span></figcaption>
      <svg id="c-ingest"></svg></figure>
    <figure><figcaption>completed-tuple delay p50 / p95 / p99 (s)
      <span class="readout" id="r-tail"></span></figcaption>
      <svg id="c-tail"></svg></figure>
    <figure><figcaption>control health: identified/design gain K&#770;
      <span class="readout" id="r-sysid"></span></figcaption>
      <svg id="c-sysid"></svg></figure>
    <figure><figcaption>control health: effective gain margin
      <span class="readout" id="r-margin"></span></figcaption>
      <svg id="c-margin"></svg></figure>
  </div>
</div>
<script>
"use strict";
const KEEP = 240;                       // points retained per shard
const SLOTS = 8;                        // categorical palette size
const shards = new Map();               // name -> {slot, points: []}
const headroom = new Map();             // name -> latest H
const ingest = new Map();               // name -> latest offered tuples/s
const annotations = [];                 // migrations: {k, label}
let periods = 0, lastTarget = null, dirty = false;

function shardState(name) {
  let s = shards.get(name);
  if (!s) {                             // fixed slot at first appearance
    s = { slot: shards.size % SLOTS, points: [] };
    shards.set(name, s);
    renderLegend();
  }
  return s;
}
function color(slot) {
  return getComputedStyle(document.querySelector(".viz-root"))
    .getPropertyValue("--series-" + (slot + 1)).trim();
}
function renderLegend() {
  const el = document.getElementById("legend");
  el.innerHTML = "";
  for (const [name, s] of shards) {
    const chip = document.createElement("span");
    chip.className = "chip";
    const sw = document.createElement("i");
    sw.style.background = color(s.slot);
    chip.append(sw, document.createTextNode(name));
    el.append(chip);
  }
}
function onPeriod(rec, shard) {
  const s = shardState(shard);
  s.points.push({ k: rec.k, delay: rec.delay_estimate, target: rec.target,
                  queue: rec.queue_length, alpha: rec.alpha,
                  headroom: headroom.get(shard) ?? null,
                  ingest: ingest.get(shard) ?? null });
  if (s.points.length > KEEP) s.points.shift();
  periods += 1;
  lastTarget = rec.target;
  dirty = true;
}

// tail-latency pane: delays arrive per period in "completions" events; a
// sliding reservoir of the most recent completions feeds running
// percentiles, plotted as their own three fixed-slot series
const tail = new Map();                 // "p50"|"p95"|"p99" -> {slot, points}
const tailWindow = [];                  // recent completed-tuple delays
const TAIL_WINDOW = 4096;
function percentile(sorted, q) {        // nearest-rank on a sorted array
  const i = Math.ceil(q * sorted.length) - 1;
  return sorted[Math.min(sorted.length - 1, Math.max(0, i))];
}
function onCompletions(doc) {
  for (const d of doc.delays || []) tailWindow.push(d);
  if (!tailWindow.length) return;
  if (tailWindow.length > TAIL_WINDOW)
    tailWindow.splice(0, tailWindow.length - TAIL_WINDOW);
  const sorted = [...tailWindow].sort((a, b) => a - b);
  [["p50", 0.50], ["p95", 0.95], ["p99", 0.99]].forEach(([name, q], i) => {
    let s = tail.get(name);
    if (!s) { s = { slot: i, points: [] }; tail.set(name, s); }
    s.points.push({ k: doc.k, tail: percentile(sorted, q) });
    if (s.points.length > KEEP) s.points.shift();
  });
  dirty = true;
}

// control-health pane: per-shard sysid series share the shard's color
// slot. K-hat should hug the 1.0 reference; the margin pane shows how
// much loop-gain slack the *identified* plant leaves before instability.
const sysidS = new Map();               // shard -> {slot, points}
function onSysId(doc) {
  const name = doc.shard || "main";
  let s = sysidS.get(name);
  if (!s) { s = { slot: shardState(name).slot, points: [] }; sysidS.set(name, s); }
  s.points.push({ k: doc.k,
                  ratio: doc.converged ? doc.gain_ratio : null,
                  margin: doc.converged ? doc.gain_margin : null });
  if (s.points.length > KEEP) s.points.shift();
  dirty = true;
}

const CHARTS = [
  { svg: "c-delay", readout: "r-delay", field: "delay", ref: () => lastTarget },
  { svg: "c-queue", readout: "r-queue", field: "queue" },
  { svg: "c-alpha", readout: "r-alpha", field: "alpha", min: 0, max: 1 },
  { svg: "c-headroom", readout: "r-headroom", field: "headroom", min: 0 },
  { svg: "c-ingest", readout: "r-ingest", field: "ingest", min: 0 },
  { svg: "c-tail", readout: "r-tail", field: "tail", min: 0, source: tail },
  { svg: "c-sysid", readout: "r-sysid", field: "ratio", ref: () => 1,
    source: sysidS },
  { svg: "c-margin", readout: "r-margin", field: "margin", min: 0,
    source: sysidS },
];
const PAD = { l: 40, r: 8, t: 8, b: 18 };

function draw() {
  dirty = false;
  document.getElementById("stats").textContent =
    shards.size + " shard(s) · " + periods + " periods";
  for (const chart of CHARTS) drawChart(chart);
}
function drawChart(chart) {
  const svg = document.getElementById(chart.svg);
  const W = svg.clientWidth || 360, H = svg.clientHeight || 180;
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  const src = chart.source || shards;   // default charts plot per-shard
  let k0 = Infinity, k1 = -Infinity, v0 = Infinity, v1 = -Infinity;
  for (const [, s] of src) for (const p of s.points) {
    const v = p[chart.field];
    if (v == null || !isFinite(v)) continue;
    k0 = Math.min(k0, p.k); k1 = Math.max(k1, p.k);
    v0 = Math.min(v0, v); v1 = Math.max(v1, v);
  }
  const ref = chart.ref ? chart.ref() : null;
  if (ref != null) { v0 = Math.min(v0, ref); v1 = Math.max(v1, ref); }
  if (chart.min != null) v0 = Math.min(v0, chart.min);
  if (chart.max != null) v1 = Math.max(v1, chart.max);
  if (!isFinite(k0) || !isFinite(v0)) { svg.innerHTML = ""; return; }
  if (k1 === k0) k1 = k0 + 1;
  if (v1 - v0 < 1e-9) v1 = v0 + 1;
  const pad = (v1 - v0) * 0.06; v0 -= pad; v1 += pad;
  const x = k => PAD.l + (k - k0) / (k1 - k0) * (W - PAD.l - PAD.r);
  const y = v => H - PAD.b - (v - v0) / (v1 - v0) * (H - PAD.t - PAD.b);
  let out = "";
  for (let i = 0; i <= 3; i++) {       // recessive grid + axis labels
    const v = v0 + (v1 - v0) * i / 3, yy = y(v).toFixed(1);
    out += '<line class="gridline" x1="' + PAD.l + '" x2="' + (W - PAD.r) +
           '" y1="' + yy + '" y2="' + yy + '"/>' +
           '<text class="axis-label" x="' + (PAD.l - 5) + '" y="' +
           (+yy + 3) + '" text-anchor="end">' + fmt(v) + "</text>";
  }
  out += '<text class="axis-label" x="' + (W - PAD.r) + '" y="' + (H - 5) +
         '" text-anchor="end">k=' + k1 + "</text>";
  if (ref != null)
    out += '<line class="refline" x1="' + PAD.l + '" x2="' + (W - PAD.r) +
           '" y1="' + y(ref).toFixed(1) + '" y2="' + y(ref).toFixed(1) + '"/>';
  for (const a of annotations) {       // migration cutover markers
    if (a.k < k0 || a.k > k1) continue;
    const xx = x(a.k).toFixed(1);
    out += '<line class="annoline" x1="' + xx + '" x2="' + xx +
           '" y1="' + PAD.t + '" y2="' + (H - PAD.b) + '"/>' +
           '<text class="annolabel" x="' + (+xx + 3) + '" y="' +
           (PAD.t + 9) + '">' + a.label + "</text>";
  }
  for (const [, s] of src) {
    const pts = s.points
      .filter(p => p[chart.field] != null && isFinite(p[chart.field]))
      .map(p => x(p.k).toFixed(1) + "," + y(p[chart.field]).toFixed(1))
      .join(" ");
    if (pts) out += '<polyline class="series" stroke="' + color(s.slot) +
                    '" points="' + pts + '"/>';
  }
  svg.innerHTML = out;
  svg.onmousemove = ev => {            // crosshair readout (hover layer)
    const rect = svg.getBoundingClientRect();
    const k = Math.round(k0 + (ev.clientX - rect.left - PAD.l) /
                         (W - PAD.l - PAD.r) * (k1 - k0));
    const parts = [];
    for (const [name, s] of src) {
      const p = s.points.find(q => q.k === k);
      if (p && p[chart.field] != null) parts.push(name + " " + fmt(p[chart.field]));
    }
    document.getElementById(chart.readout).textContent =
      parts.length ? "k=" + k + "  " + parts.join("  ") : "";
  };
  svg.onmouseleave =
    () => { document.getElementById(chart.readout).textContent = ""; };
}
function fmt(v) {
  const a = Math.abs(v);
  return a >= 1000 ? v.toFixed(0) : a >= 10 ? v.toFixed(1) : v.toFixed(2);
}

const conn = document.getElementById("conn");
const es = new EventSource("/events");
es.onopen = () => { conn.textContent = "live"; conn.className = "meta ok"; };
es.onerror = () => { conn.textContent = "disconnected"; conn.className = "meta bad"; };
es.addEventListener("hello", ev => {
  const doc = JSON.parse(ev.data);
  for (const [name, h] of Object.entries(doc.headroom || {}))
    headroom.set(name, h);
  for (const [name, d] of Object.entries(doc.ingest || {}))
    if (d && d.rate != null) ingest.set(name, d.rate);
  for (const [name, rec] of Object.entries(doc.shards || {}))
    if (rec && rec.k != null) onPeriod(rec, name);
  dirty = true;
});
es.addEventListener("period", ev => {
  const doc = JSON.parse(ev.data);
  if (doc.record) onPeriod(doc.record, doc.shard || "main");
});
es.addEventListener("headroom_changed", ev => {
  const doc = JSON.parse(ev.data);
  headroom.set(doc.shard || "main", doc.new);
});
es.addEventListener("ingest", ev => {
  const doc = JSON.parse(ev.data);
  ingest.set(doc.shard || "main", doc.rate);
});
es.addEventListener("completions", ev => {
  onCompletions(JSON.parse(ev.data));
});
es.addEventListener("sysid", ev => {
  onSysId(JSON.parse(ev.data));
});
es.addEventListener("route_changed", ev => {
  const doc = JSON.parse(ev.data);
  const safe = String(doc.source ?? "?")
    .replace(/&/g, "&amp;").replace(/</g, "&lt;");
  annotations.push({ k: doc.k, label: safe + "&#8594;" + doc.to_shard });
  if (annotations.length > 32) annotations.shift();
  dirty = true;
});
(function tick() { if (dirty) draw(); requestAnimationFrame(tick); })();
window.addEventListener("resize", () => { dirty = true; });
</script>
</body>
</html>
"""
