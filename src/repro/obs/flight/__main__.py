"""``python -m repro.obs.flight`` — the incident bundle CLI."""

from . import main

if __name__ == "__main__":
    raise SystemExit(main())
