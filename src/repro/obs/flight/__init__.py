"""The incident flight recorder: bounded rings, bundles, deterministic replay.

A :class:`FlightRecorder` is a pure bus observer that keeps, per shard, a
bounded ring of the recent observability stream — period records, shed
decisions, route epochs, ingest stats, sysid state, coordinator and
worker-lifecycle events.  On a trigger it freezes everything it knows
into one self-contained JSON *incident bundle*:

* **health** — any *critical* :class:`~repro.obs.health.HealthMonitor`
  episode opening (hook one monitor with :meth:`FlightRecorder.watch`);
* **http** — ``POST /incident`` on the live
  :class:`~repro.obs.serve.ObsServer`;
* **signal** — ``SIGUSR2`` to the process
  (:meth:`FlightRecorder.handle_signals`);
* **manual** — :meth:`FlightRecorder.dump` from code.

The bundle carries the config snapshots that *produced* the run, so a
bundle from any deterministic runtime is its own reproduction recipe:
``python -m repro.obs.flight replay bundle.json`` rebuilds the engine
from the embedded specs, re-runs it, and diffs the period stream against
the ring float-for-float.  A sync-mode process fleet reproduces the
lockstep trajectory exactly (the PR-4 determinism contract), so fleet
bundles — whose rings were assembled in the parent over the event relay,
shard keys carrying ``pid<pid>/<shard>`` provenance — replay through the
single-process :class:`~repro.service.service.StreamService` and still
match float for float.  Live (wall-clock) runs have no deterministic
arrival recipe; their bundles carry ``replay: null`` and the CLI reports
them as not replayable (exit 2) rather than pretending.

Recording is O(1) per event and allocation-bounded (deques), and the
recorder never touches the loop — with it on or off the trajectory is
identical, which is precisely what makes replay exact.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ...errors import ObservabilityError
from ..bus import EventBus, get_bus
from ..events import IncidentDumped, event_to_dict
from ..health import SEVERITY_CRITICAL, HealthMonitor
from ..logconf import get_logger

_log = get_logger("obs.flight")

#: bundle format tag; bump on incompatible layout changes
FLIGHT_FORMAT = "repro-flight-1"

#: event kinds the recorder rings (everything the post-mortem needs; the
#: tuple_trace firehose stays out on purpose — sampled spans are a
#: different subsystem with its own sinks)
RING_KINDS = (
    "period", "shed", "ingest", "sysid",
    "route_changed", "migration_started", "migration_completed",
    "headroom_changed", "target_changed", "alpha_capped", "rebalanced",
    "worker_down", "worker_restarted", "drain_truncated",
    "model_mismatch", "margin_eroded",
)


def _json_default(value):
    """Serialize the odd non-JSON native (numpy scalars, paths, sets)."""
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


class FlightRecorder:
    """Per-shard bounded event rings + incident bundle writer.

    ``ring`` bounds every per-shard, per-kind deque, so memory is
    O(shards x kinds x ring) regardless of run length.  ``experiment`` /
    ``service`` are the dataclass specs that built the run (snapshotted
    into each bundle via ``asdict``); ``replay_spec`` is the recipe the
    ``replay`` subcommand uses to re-run the window (see
    :func:`replay_bundle` for the recognized kinds), or None when the
    run is not deterministically reproducible (live traffic).
    """

    def __init__(self, bus: Optional[EventBus] = None, *,
                 ring: int = 256,
                 directory: Union[str, Path] = "incidents",
                 runtime: str = "lockstep",
                 experiment=None,
                 service=None,
                 replay_spec: Optional[dict] = None,
                 registry=None,
                 status_fn=None,
                 max_dumps: int = 8):
        if ring < 1:
            raise ObservabilityError(f"ring size must be >= 1, got {ring}")
        if max_dumps < 1:
            raise ObservabilityError(
                f"max_dumps must be >= 1, got {max_dumps}")
        self.bus = bus if bus is not None else get_bus()
        self.ring = int(ring)
        self.directory = Path(directory)
        self.runtime = runtime
        self.experiment = experiment
        self.service = service
        self.replay_spec = replay_spec
        self.registry = registry
        self.status_fn = status_fn
        self.max_dumps = int(max_dumps)
        #: paths of the bundles written so far, in order
        self.incidents: List[Path] = []
        self._rings: Dict[str, Dict[str, deque]] = {}
        self._events_seen = 0
        self._watched: List[HealthMonitor] = []
        self._closed = False
        self.bus.subscribe(self._on_event, kinds=RING_KINDS)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _on_event(self, event) -> None:
        doc = event_to_dict(event)
        shard = doc.get("shard") or "main"
        rings = self._rings.get(shard)
        if rings is None:
            rings = self._rings[shard] = {}
        ring = rings.get(event.kind)
        if ring is None:
            ring = rings[event.kind] = deque(maxlen=self.ring)
        ring.append(doc)
        self._events_seen += 1

    def snapshot(self) -> dict:
        """The rings as plain JSON-able lists (oldest first)."""
        return {
            shard: {kind: list(ring) for kind, ring in sorted(rings.items())}
            for shard, rings in sorted(self._rings.items())
        }

    # ------------------------------------------------------------------ #
    # triggers
    # ------------------------------------------------------------------ #
    def watch(self, monitor: HealthMonitor) -> HealthMonitor:
        """Auto-dump whenever ``monitor`` opens a *critical* episode.

        Chains onto the monitor's ``on_report`` slot (preserving any
        previous callback), so one recorder can watch several monitors
        and vice versa.  Returns the monitor for fluent wiring.
        """
        previous = monitor.on_report

        def hook(report):
            if previous is not None:
                previous(report)
            if report.severity == SEVERITY_CRITICAL:
                self.dump(
                    reason=(f"{report.kind} opened on "
                            f"{report.shard or 'main'} at period "
                            f"{report.first_k}: {report.detail}"),
                    trigger="health",
                    shard=report.shard,
                )

        monitor.on_report = hook
        self._watched.append(monitor)
        return monitor

    def handle_signals(self) -> bool:
        """Dump on ``SIGUSR2`` (operator-initiated post-mortem).

        Returns False on platforms without SIGUSR2 or off the main
        thread, where signal handlers cannot be installed.
        """
        if not hasattr(signal, "SIGUSR2"):  # pragma: no cover - win only
            return False
        try:
            signal.signal(
                signal.SIGUSR2,
                lambda signum, frame: self.dump(reason="SIGUSR2",
                                                trigger="signal"))
        except ValueError:  # pragma: no cover - non-main thread
            return False
        return True

    # ------------------------------------------------------------------ #
    # the bundle
    # ------------------------------------------------------------------ #
    def bundle(self, reason: str = "", trigger: str = "manual",
               shard: Optional[str] = None) -> dict:
        """Build (but do not write) one self-contained incident bundle."""
        def spec_dict(spec):
            if spec is None:
                return None
            if is_dataclass(spec) and not isinstance(spec, type):
                return asdict(spec)
            return dict(spec)

        health = None
        for monitor in self._watched:
            health = monitor.summary()
            break
        return {
            "format": FLIGHT_FORMAT,
            "reason": reason,
            "trigger": trigger,
            "shard": shard,
            "runtime": self.runtime,
            "written_at": time.time(),
            "pid": os.getpid(),
            "ring": self.ring,
            "events_seen": self._events_seen,
            "experiment": spec_dict(self.experiment),
            "service": spec_dict(self.service),
            "replay": (dict(self.replay_spec)
                       if self.replay_spec is not None else None),
            "rings": self.snapshot(),
            "health": health,
            "metrics": (self.registry.snapshot()
                        if self.registry is not None else None),
            "status": (self.status_fn()
                       if self.status_fn is not None else None),
        }

    def dump(self, reason: str = "", trigger: str = "manual",
             shard: Optional[str] = None) -> Optional[Path]:
        """Write one incident bundle; returns its path (None if capped).

        ``max_dumps`` bounds disk usage under a flapping detector: once
        reached, further triggers are logged and ignored.
        """
        if self._closed or len(self.incidents) >= self.max_dumps:
            if not self._closed:
                _log.warning("flight recorder at max_dumps=%d; "
                             "dropping %s-triggered dump (%s)",
                             self.max_dumps, trigger, reason)
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        seq = len(self.incidents)
        path = self.directory / (
            f"incident-{os.getpid()}-{seq:03d}-{trigger}.json")
        doc = self.bundle(reason=reason, trigger=trigger, shard=shard)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(doc, default=_json_default))
        os.replace(tmp, path)
        self.incidents.append(path)
        _log.info("incident bundle written: %s (%s: %s)", path, trigger,
                  reason or "no reason given")
        if self.bus:
            self.bus.emit(IncidentDumped(reason=reason, trigger=trigger,
                                         path=str(path), shard=shard))
        return path

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach from the bus (idempotent; rings stay readable)."""
        if not self._closed:
            self.bus.unsubscribe(self._on_event)
            self._closed = True

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# bundle loading + deterministic replay
# ---------------------------------------------------------------------- #
class ReplayDiff:
    """The outcome of replaying one bundle against its recorded rings."""

    def __init__(self) -> None:
        self.compared = 0
        self.mismatches: List[dict] = []
        self.skipped: List[str] = []

    @property
    def ok(self) -> bool:
        return self.compared > 0 and not self.mismatches

    def summary(self) -> dict:
        return {"ok": self.ok, "compared": self.compared,
                "mismatches": self.mismatches, "skipped": self.skipped}


def load_bundle(path: Union[str, Path]) -> dict:
    """Read and format-check one incident bundle."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != FLIGHT_FORMAT:
        raise ObservabilityError(
            f"not a flight bundle (format {doc.get('format')!r}, "
            f"expected {FLIGHT_FORMAT!r}): {path}")
    return doc


def _base_shard(label: str) -> str:
    """Strip fleet relay provenance: ``pid1234/shard0`` -> ``shard0``."""
    return label.rsplit("/", 1)[-1]


def _record_fields():
    from ...metrics.recorder import PeriodRecord
    return [f.name for f in fields(PeriodRecord)]


def _diff_periods(diff: ReplayDiff, shard: str, recorded: List[dict],
                  replayed_by_k: Dict[int, dict]) -> None:
    names = _record_fields()
    for doc in recorded:
        rec = doc.get("record") or {}
        k = rec.get("k")
        replayed = replayed_by_k.get(k)
        if replayed is None:
            diff.mismatches.append({
                "shard": shard, "k": k, "field": None,
                "recorded": "present", "replayed": "missing"})
            continue
        diff.compared += 1
        for name in names:
            a, b = rec.get(name), replayed.get(name)
            if a != b:
                diff.mismatches.append({
                    "shard": shard, "k": k, "field": name,
                    "recorded": a, "replayed": b})


def _not_replayable(bundle: dict) -> Optional[str]:
    """Why this bundle cannot be deterministically replayed, or None."""
    spec = bundle.get("replay")
    if spec is None:
        return ("bundle carries no replay recipe (live/wall-clock runs "
                "have no deterministic arrival stream)")
    kind = spec.get("kind")
    if kind not in ("service", "strategy"):
        return f"unknown replay recipe kind {kind!r}"
    if kind == "service" and not spec.get("sync", True):
        return ("async (free-running) fleet runs do not reproduce the "
                "lockstep trajectory; only sync-mode bundles replay "
                "exactly")
    return None


def replay_bundle(bundle: dict) -> ReplayDiff:
    """Re-run the bundle's recipe and diff the period stream, exactly.

    The engine is deterministic from period 0, so the whole run is
    re-executed and the *recorded window* (each shard's period ring) is
    compared float-for-float against the replayed stream.  Raises
    :class:`~repro.errors.ObservabilityError` when the bundle carries no
    usable recipe — callers distinguishing "mismatch" from "cannot
    replay" should check :func:`_not_replayable` first (the CLI maps the
    two onto exit codes 1 and 2).
    """
    why = _not_replayable(bundle)
    if why is not None:
        raise ObservabilityError(why)
    spec = bundle["replay"]
    if spec["kind"] == "service":
        replayed = _replay_service(bundle, spec)
    else:
        replayed = _replay_strategy(bundle, spec)
    diff = ReplayDiff()
    for shard, rings in sorted(bundle.get("rings", {}).items()):
        recorded = rings.get("period") or []
        if not recorded:
            continue
        name = _base_shard(shard)
        by_k = replayed.get(name)
        if by_k is None:
            diff.skipped.append(
                f"shard {shard!r}: no replayed counterpart {name!r}")
            continue
        _diff_periods(diff, shard, recorded, by_k)
    if diff.compared == 0 and not diff.mismatches:
        raise ObservabilityError(
            "bundle rings hold no period records to compare")
    return diff


def _by_k(record) -> Dict[int, dict]:
    return {p.k: asdict(p) for p in record.periods}


def _replay_service(bundle: dict, spec: dict) -> Dict[str, Dict[int, dict]]:
    # lazy imports: obs must stay importable without the experiments layer
    from ...experiments.config import ExperimentConfig
    from ...experiments.service_demo import run_service_experiment
    from ...service.config import ServiceConfig

    if bundle.get("experiment") is None or bundle.get("service") is None:
        raise ObservabilityError(
            "service bundle is missing its experiment/service snapshots")
    config = ExperimentConfig(**bundle["experiment"])
    allowed = {f.name for f in fields(ServiceConfig)}
    svc_kwargs = {k: v for k, v in bundle["service"].items() if k in allowed}
    # the replay leg is a pure re-execution: no serving, no new bundles
    # (sysid/health/flight are bus observers — they never alter the
    # trajectory, so disabling them changes nothing but wall time)
    svc_kwargs.update(serve=False, flight=0, sysid=False, health=False,
                      trace=False, tuptrace=0.0)
    svc = ServiceConfig(**svc_kwargs)
    result = run_service_experiment(
        config, svc, spec.get("workload_kind", "web"))
    return {name: _by_k(record)
            for name, record in result.shard_records.items()}


def _replay_strategy(bundle: dict, spec: dict) -> Dict[str, Dict[int, dict]]:
    from ...experiments.config import ExperimentConfig
    from ...experiments.runner import make_workload, run_strategy
    from ...workloads import CostTrace, constant_rate

    if bundle.get("experiment") is None:
        raise ObservabilityError(
            "strategy bundle is missing its experiment snapshot")
    config = ExperimentConfig(**bundle["experiment"])
    wl = spec.get("workload") or {}
    wl_kind = wl.get("kind", "web")
    if wl_kind == "constant":
        workload = constant_rate(
            wl["rate"], wl["n_periods"], period=wl.get("period", 1.0))
    elif wl_kind in ("web", "pareto"):
        workload = make_workload(wl_kind, config,
                                 beta=wl.get("beta", 1.0))
    else:
        raise ObservabilityError(f"unknown workload kind {wl_kind!r}")
    trace = spec.get("cost_trace")
    cost_trace = (CostTrace(trace["values"], trace.get("period", 1.0))
                  if trace else None)
    record = run_strategy(
        spec.get("strategy", "CTRL"), workload, config,
        cost_trace=cost_trace,
        actuator=spec.get("actuator", "entry"),
        alpha_cap=spec.get("alpha_cap", 1.0),
        engine_kind=spec.get("engine_kind"),
        scheduler=spec.get("scheduler"),
    )
    return {"main": _by_k(record)}


# ---------------------------------------------------------------------- #
# CLI: python -m repro.obs.flight {info, replay} bundle.json
# ---------------------------------------------------------------------- #
def _cmd_info(path: str) -> int:
    bundle = load_bundle(path)
    rings = bundle.get("rings", {})
    print(f"bundle:    {path}")
    print(f"runtime:   {bundle.get('runtime')}  "
          f"trigger={bundle.get('trigger')}  pid={bundle.get('pid')}")
    print(f"reason:    {bundle.get('reason') or '(none)'}")
    print(f"ring size: {bundle.get('ring')}  "
          f"events seen: {bundle.get('events_seen')}")
    for shard in sorted(rings):
        kinds = ", ".join(f"{kind}:{len(docs)}"
                          for kind, docs in sorted(rings[shard].items()))
        print(f"  {shard}: {kinds}")
    health = bundle.get("health")
    if health:
        print(f"health:    critical_open={health.get('critical_open')} "
              f"counts={health.get('counts')}")
    why = _not_replayable(bundle)
    print(f"replay:    {'yes' if why is None else f'no - {why}'}")
    return 0


def _cmd_replay(path: str, verbose: bool = False) -> int:
    bundle = load_bundle(path)
    why = _not_replayable(bundle)
    if why is not None:
        print(f"not replayable: {why}")
        return 2
    diff = replay_bundle(bundle)
    if diff.ok:
        print(f"replay OK: {diff.compared} period records matched "
              "float-for-float")
        for note in diff.skipped:
            print(f"  skipped: {note}")
        return 0
    print(f"replay MISMATCH: {len(diff.mismatches)} differences over "
          f"{diff.compared} compared records")
    shown = diff.mismatches if verbose else diff.mismatches[:10]
    for m in shown:
        print(f"  shard={m['shard']} k={m['k']} field={m['field']}: "
              f"recorded={m['recorded']!r} replayed={m['replayed']!r}")
    if not verbose and len(diff.mismatches) > 10:
        print(f"  ... {len(diff.mismatches) - 10} more (use --verbose)")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.flight",
        description="inspect and deterministically replay incident bundles")
    sub = parser.add_subparsers(dest="command", required=True)
    p_info = sub.add_parser("info", help="summarize one bundle")
    p_info.add_argument("bundle")
    p_replay = sub.add_parser(
        "replay",
        help="re-run the bundle's recipe and diff the period stream "
             "(exit 0 exact, 1 mismatch, 2 not replayable)")
    p_replay.add_argument("bundle")
    p_replay.add_argument("--verbose", action="store_true",
                          help="print every field-level mismatch")
    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info(args.bundle)
    return _cmd_replay(args.bundle, verbose=args.verbose)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())


__all__ = [
    "FLIGHT_FORMAT",
    "RING_KINDS",
    "FlightRecorder",
    "ReplayDiff",
    "load_bundle",
    "replay_bundle",
]
