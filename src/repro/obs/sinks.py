"""Bus subscribers that persist live observability data to disk.

These sinks turn the in-process event stream into files an operator can
tail *while the run is in flight* — unlike the post-hoc CSV exports in
:mod:`repro.metrics.export`, which need the finished :class:`RunRecord`.

Imports of :mod:`repro.metrics` are deferred to call time:
``repro.dsms.engine`` imports this package at module load, and
``repro.metrics.recorder`` imports the engine, so a top-level import here
would close the cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Union

from .bus import BoundedSubscription, EventBus, get_bus
from .events import ObsEvent

PathLike = Union[str, Path]


class PeriodJsonlSink:
    """Streams one JSON line per control period to a file, live.

    Subscribes to ``"period"`` events on construction; each event's
    :class:`~repro.metrics.recorder.PeriodRecord` is flattened with the
    canonical column set (``repro.metrics.export.PERIOD_FIELDS``) plus the
    shard label, and flushed immediately so ``tail -f`` sees rows as the
    run produces them.

    By default the write+flush happens synchronously on the emitting
    control loop — fine for local disks. ``bounded=True`` moves the I/O
    behind a :class:`~repro.obs.bus.BoundedSubscription` drain thread
    (``maxlen``/``policy`` as there), so a slow filesystem backs up the
    sink's own ring buffer instead of the run; drops are counted on
    ``repro_obs_dropped_total``.
    """

    def __init__(self, path: PathLike, bus: Optional[EventBus] = None,
                 bounded: bool = False, maxlen: int = 1024,
                 policy: str = "drop_oldest"):
        from ..metrics.export import PERIOD_FIELDS  # lazy: import cycle
        self._fields = PERIOD_FIELDS
        self.path = Path(path)
        self.bus = bus if bus is not None else get_bus()
        self.rows = 0
        self._fh: Optional[IO[str]] = self.path.open("a")
        self._sub: Optional[BoundedSubscription] = None
        if bounded:
            self._sub = self.bus.subscribe_bounded(
                self._on_event, kinds=("period",), maxlen=maxlen,
                policy=policy, name=f"jsonl:{self.path.name}")
        else:
            self.bus.subscribe(self._on_event, kinds=("period",))

    def _on_event(self, event: ObsEvent) -> None:
        if self._fh is None:
            return
        p = event.record
        row = {f: getattr(p, f) for f in self._fields}
        row["shard"] = event.shard
        self._fh.write(json.dumps(row) + "\n")
        self._fh.flush()
        self.rows += 1

    def close(self) -> None:
        if self._sub is not None:
            self._sub.close()  # joins the drain thread: buffered rows land
            self._sub = None
        else:
            self.bus.unsubscribe(self._on_event)
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "PeriodJsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
