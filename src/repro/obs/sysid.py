"""Online system identification: live plant gain and stability margins.

The controller is designed offline against the paper's Section 3 model —
an integrator whose gain ``cT/H`` comes from the *estimated* per-tuple
cost.  At runtime the real plant drifts: the cost EWMA lags cost steps,
workload mix shifts the operator profile, actuation latency adds phase.
The paper's Section 4.3.1 robustness argument ("stable while the real
gain stays within ``1/K`` of the design gain") is evaluated at design
time; this module evaluates it *live*.

Per shard, a forgetting-factor recursive-least-squares estimator folds in
one ``(Δu(k), Δy(k))`` pair per control period — the net tuples the
period pushed into the virtual queue against the queue increment it
produced — and identifies the true service rate ``ŝ = H/ĉ`` (tuples per
second the plant actually works off while busy).  From it:

* ``gain_ratio`` — identified plant gain over the design model's gain,
  exactly the paper's ``K`` (equals ``ĉ / c_est`` — how wrong the
  controller's cost estimate is);
* effective margins — the nominal CTRL open loop ``L(z) = (b0 z + b1) /
  ((z + a)(z - 1))`` is cost-independent (the controller gain ``H/(cT)``
  cancels the design plant gain ``cT/H``), so the *real* open loop is
  ``K * L(z)`` and :func:`repro.control.margins.stability_margins`
  re-evaluates it with the identified gain.  The effective gain margin
  is exact and O(1) every period (``GM_nominal / K``); the phase and
  modulus margins come from a throttled full sweep.
* ``oscillation`` — a limit-cycle score over the recent error signal
  (sign-alternation rate blended with the strongest low-lag
  autocorrelation), the signature of a saturated actuator hunting.

Saturation-awareness: periods where ``alpha`` is pinned at the actuator
limit carry no information about the plant gain (the commanded input
never reached the plant), and periods whose backlog was too small to
keep the server busy end to end say nothing about the service rate (the
integrator model only holds in the overload regime the paper sheds in) —
both are *excluded* from the regression.  See THEORY.md §15 for why
naive closed-loop regression is biased and when a dither on ``u`` is
needed.

Everything here is a pure bus observer: it subscribes to ``period`` (and
``headroom_changed``) events and emits ``sysid`` / ``model_mismatch`` /
``margin_eroded`` events back.  It never touches the control loop, so
runs are float-for-float identical with or without it — which is what
makes the flight recorder's deterministic replay possible.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional

from typing import TYPE_CHECKING

from ..control.margins import StabilityMargins, stability_margins
from ..control.transfer_function import TransferFunction
from .bus import EventBus, get_bus
from .events import MarginEroded, ModelMismatch, SysIdUpdate

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pole_placement import ControllerGains


class RlsGainEstimator:
    """Forgetting-factor RLS over ``(Δu, Δy)`` period pairs.

    Plant model (the paper's Eq. 2 rearranged): the virtual queue obeys
    ``Δy(k) = Δu(k) - s * T(k)`` while the server is busy, where ``Δu``
    is the net tuples the period pushed into the queue, ``Δy`` the queue
    increment, ``T`` the period length and ``s`` the *true* service rate
    ``H / c_true`` in tuples/second.  The estimator runs scalar RLS on
    ``θ = s`` with regressor ``φ = T`` and target ``Δu - Δy`` — a
    deliberately rank-1 problem: with a near-exact queue identity the
    two-parameter form (admission efficiency + rate) is collinear under
    closed-loop operation, and the collinear direction is precisely the
    closed-loop identification bias THEORY.md §15 describes.

    A forgetting factor ``λ`` < 1 keeps the estimator tracking a drifting
    plant (effective memory ``1/(1-λ)`` samples); the scalar covariance
    is carried explicitly so there is no numpy on the per-period path.
    """

    def __init__(self, forgetting: float = 0.7, delta: float = 1e4):
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting factor must be in (0, 1], got {forgetting}")
        if delta <= 0:
            raise ValueError(f"initial covariance must be positive, got {delta}")
        self.forgetting = float(forgetting)
        self.s = 0.0
        self.p = float(delta)
        self.samples = 0

    def update(self, du: float, dy: float, period: float) -> None:
        """Fold one period pair in: regressor ``φ = T``, target ``Δu - Δy``."""
        lam = self.forgetting
        phi = float(period)
        if phi <= 0:
            return
        target = float(du) - float(dy)    # tuples the server worked off
        gain = self.p * phi / (lam + phi * self.p * phi)
        self.s += gain * (target - self.s * phi)
        self.p = (self.p - gain * phi * self.p) / lam
        self.samples += 1

    @property
    def service_rate(self) -> float:
        """Identified service rate ``H / c_true`` (tuples/second)."""
        return self.s

    def rescale_service(self, factor: float) -> None:
        """Scale the service-rate estimate for a known headroom change.

        ``s = H/c`` is proportional to headroom, so a coordinator
        reallocation is a *known* plant step — scaling the state (instead
        of waiting out the forgetting factor) keeps the cost estimate
        ``ĉ`` continuous through it.
        """
        if factor > 0:
            self.s *= factor


def oscillation_score(errors, max_lag: int = 8) -> float:
    """Limit-cycle score in [0, 1] for a recent error window.

    Blends the sign-alternation rate of the error signal with the
    strongest positive autocorrelation at small lags (mean removed): a
    saturated actuator hunting around its limit produces both — rapid
    sign flips and a short, strongly periodic cycle.  Returns 0 for
    windows too short or too quiet to judge.
    """
    xs = [float(e) for e in errors]
    n = len(xs)
    if n < 8:
        return 0.0
    mu = sum(xs) / n
    centered = [x - mu for x in xs]
    var = sum(c * c for c in centered) / n
    if var <= 1e-12:
        return 0.0
    flips = sum(
        1 for a, b in zip(xs, xs[1:])
        if (a - mu) * (b - mu) < 0
    )
    alternation = flips / (n - 1)
    best_rho = 0.0
    for lag in range(1, min(max_lag, n - 2) + 1):
        acc = sum(centered[i] * centered[i + lag] for i in range(n - lag))
        rho = acc / (var * n)
        if rho > best_rho:
            best_rho = rho
    return min(1.0, 0.5 * alternation + 0.5 * best_rho)


class _ShardSysId:
    """Per-shard estimator state (previous period sample + error window)."""

    __slots__ = ("estimator", "prev_queue", "have_prev", "errors",
                 "excluded", "full_margins", "last_update")

    def __init__(self, forgetting: float, window: int):
        self.estimator = RlsGainEstimator(forgetting=forgetting)
        self.prev_queue = 0.0
        self.have_prev = False
        self.errors: Deque[float] = deque(maxlen=window)
        self.excluded = 0
        self.full_margins: Optional[StabilityMargins] = None
        self.last_update: Optional[SysIdUpdate] = None


class SysIdMonitor:
    """Per-shard online plant identification over the event bus.

    Subscribe-and-emit: listens for ``period`` (and ``headroom_changed``)
    events, maintains one :class:`RlsGainEstimator` per shard label, and
    emits a :class:`~repro.obs.events.SysIdUpdate` every period — plus
    :class:`~repro.obs.events.ModelMismatch` /
    :class:`~repro.obs.events.MarginEroded` while those conditions hold.

    The design gain it compares against needs no out-of-band model: Eq. 11
    gives ``H / c_est = (q + 1) / ŷ`` from the period record itself, so
    ``gain_ratio = (q + 1) / (ŷ · ŝ)`` — the monitor works identically
    under the lockstep service, inside fleet workers (on their private
    bus, events relayed up with provenance) and on the live runtime.
    """

    def __init__(self, bus: Optional[EventBus] = None, *,
                 gains: Optional[ControllerGains] = None,
                 forgetting: float = 0.7,
                 min_samples: int = 8,
                 saturation_alpha: float = 0.999,
                 busy_backlog: float = 1.0,
                 mismatch_ratio: float = 1.35,
                 gain_margin_floor: float = 3.0,
                 modulus_floor: float = 0.25,
                 margin_sweep_every: int = 8,
                 margin_sweep_points: int = 256,
                 osc_window: int = 32):
        if mismatch_ratio <= 1.0:
            raise ValueError(f"mismatch ratio must exceed 1, got {mismatch_ratio}")
        if margin_sweep_every < 1:
            raise ValueError("margin_sweep_every must be >= 1")
        # deferred: repro.core pulls in the engine stack, which imports
        # this package back — resolving the gains at construction time
        # keeps repro.obs importable from inside repro.dsms
        from ..core.pole_placement import paper_gains
        self.bus = bus if bus is not None else get_bus()
        self.gains = gains if gains is not None else paper_gains()
        self.forgetting = float(forgetting)
        self.min_samples = int(min_samples)
        self.saturation_alpha = float(saturation_alpha)
        self.busy_backlog = float(busy_backlog)
        self.mismatch_ratio = float(mismatch_ratio)
        self.gain_margin_floor = float(gain_margin_floor)
        self.modulus_floor = float(modulus_floor)
        self.margin_sweep_every = int(margin_sweep_every)
        self.margin_sweep_points = int(margin_sweep_points)
        self.osc_window = int(osc_window)
        # The nominal CTRL open loop C(z)G(z): the controller gain H/(cT)
        # cancels the design plant gain cT/H, leaving a loop that depends
        # only on the pole-placement coefficients — so one precomputed
        # nominal is valid for every shard, whatever its cost or headroom.
        g = self.gains
        self.nominal_open_loop = TransferFunction(
            [g.b0, g.b1],
            [1.0, g.a - 1.0, -g.a],          # (z + a)(z - 1)
        )
        self.nominal_margins = stability_margins(self.nominal_open_loop,
                                                 n_points=2048)
        self._shards: Dict[str, _ShardSysId] = {}
        self._closed = False
        self.bus.subscribe(self._on_event,
                           kinds=("period", "headroom_changed"))

    # ------------------------------------------------------------------ #
    # event handling
    # ------------------------------------------------------------------ #
    def _on_event(self, event) -> None:
        if event.kind == "headroom_changed":
            self._on_headroom(event)
        else:
            self._on_period(event)

    def _state(self, shard: str) -> _ShardSysId:
        state = self._shards.get(shard)
        if state is None:
            state = _ShardSysId(self.forgetting, self.osc_window)
            self._shards[shard] = state
        return state

    def _on_headroom(self, event) -> None:
        state = self._shards.get(event.shard or "main")
        if state is not None and event.old and event.old > 0:
            state.estimator.rescale_service(event.new / event.old)

    def _on_period(self, event) -> None:
        record = event.record
        if record is None:
            return
        shard = event.shard or "main"
        state = self._state(shard)
        est = state.estimator

        queue = float(record.queue_length)
        # Δu: net tuples the period pushed into the virtual queue —
        # entry-admitted minus the retro-shed culled back out of it.
        du = float(record.admitted) - float(record.shed_retro)
        saturated = record.alpha >= self.saturation_alpha
        # busy guard: the integrator model only holds while the server is
        # busy end to end.  Requiring at least one full period's worth of
        # departures queued at *both* boundaries guarantees the queue
        # could not have emptied mid-period even with zero arrivals.
        needed = self.busy_backlog * float(record.outflow_rate) * \
            self._period_of(record)
        idle = (queue < max(needed, 1.0)
                or (state.have_prev and state.prev_queue < max(needed, 1.0)))
        if state.have_prev:
            if saturated or idle:
                state.excluded += 1
            else:
                est.update(du, queue - state.prev_queue,
                           self._period_of(record))
        state.prev_queue = queue
        state.have_prev = True
        state.errors.append(float(record.error))

        converged = est.samples >= self.min_samples and est.service_rate > 0
        # Eq. 11: y = (q + 1) c_est / H  =>  H / c_est = (q + 1) / y
        ratio = 1.0
        identified_gain = 0.0
        design_gain = 0.0
        if record.delay_estimate > 0:
            design_over = (queue + 1.0) / float(record.delay_estimate)
            design_gain = self._period_of(record) / design_over \
                if design_over > 0 else 0.0
            if converged:
                ratio = design_over / est.service_rate
                identified_gain = self._period_of(record) / est.service_rate
        elif converged:
            identified_gain = self._period_of(record) / est.service_rate

        k_ratio = ratio if converged and ratio > 0 else 1.0
        gm_nom = float(self.nominal_margins.gain_margin)
        gain_margin = gm_nom / k_ratio if math.isfinite(gm_nom) else gm_nom
        if converged and k_ratio > 0 and (
                state.full_margins is None
                or record.k % self.margin_sweep_every == 0):
            state.full_margins = stability_margins(
                k_ratio * self.nominal_open_loop,
                n_points=self.margin_sweep_points)
        full = state.full_margins or self.nominal_margins
        osc = oscillation_score(state.errors)

        mismatch = converged and (
            k_ratio > self.mismatch_ratio or k_ratio < 1.0 / self.mismatch_ratio)
        eroded = converged and (
            gain_margin < self.gain_margin_floor
            or full.modulus_margin < self.modulus_floor)

        update = SysIdUpdate(
            k=record.k,
            identified_gain=identified_gain,
            design_gain=design_gain,
            gain_ratio=k_ratio,
            service_rate=est.service_rate,
            gain_margin=float(gain_margin),
            phase_margin_deg=float(full.phase_margin_deg),
            modulus_margin=float(full.modulus_margin),
            oscillation=osc,
            converged=converged,
            saturated=saturated,
            samples=est.samples,
            excluded=state.excluded,
            mismatch=mismatch,
            eroded=eroded,
            shard=shard,
        )
        state.last_update = update
        if self.bus:
            self.bus.emit(update)
            if mismatch:
                self.bus.emit(ModelMismatch(
                    k=record.k, gain_ratio=k_ratio,
                    threshold=self.mismatch_ratio,
                    identified_gain=identified_gain,
                    design_gain=design_gain, shard=shard))
            if eroded:
                self.bus.emit(MarginEroded(
                    k=record.k, gain_margin=float(gain_margin),
                    gain_margin_floor=self.gain_margin_floor,
                    modulus_margin=float(full.modulus_margin),
                    modulus_floor=self.modulus_floor, shard=shard))

    @staticmethod
    def _period_of(record) -> float:
        """The control period length: recover T from the record's clock."""
        k = record.k
        t = record.time
        return t / (k + 1) if k >= 0 and t > 0 else 1.0

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Per-shard identified state, JSON-able (for results + bundles)."""
        out = {}
        for shard, state in sorted(self._shards.items()):
            est = state.estimator
            last = state.last_update
            out[shard] = {
                "samples": est.samples,
                "excluded": state.excluded,
                "service_rate": est.service_rate,
                "gain_ratio": last.gain_ratio if last else 1.0,
                "identified_gain": last.identified_gain if last else 0.0,
                "design_gain": last.design_gain if last else 0.0,
                "gain_margin": last.gain_margin if last else
                float(self.nominal_margins.gain_margin),
                "phase_margin_deg": last.phase_margin_deg if last else
                float(self.nominal_margins.phase_margin_deg),
                "modulus_margin": last.modulus_margin if last else
                float(self.nominal_margins.modulus_margin),
                "oscillation": last.oscillation if last else 0.0,
                "converged": bool(last.converged) if last else False,
                "mismatch": bool(last.mismatch) if last else False,
                "eroded": bool(last.eroded) if last else False,
            }
        return out

    def state_for(self, shard: str) -> Optional[dict]:
        """The one-shard slice of :meth:`summary` (worker-side shipping)."""
        return self.summary().get(shard)

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        if not self._closed:
            self.bus.unsubscribe(self._on_event)
            self._closed = True

    def __enter__(self) -> "SysIdMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "RlsGainEstimator",
    "SysIdMonitor",
    "oscillation_score",
]
