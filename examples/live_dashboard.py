#!/usr/bin/env python3
"""Live dashboard: watch a parallel sharded-service fan-out in real time.

Starts the stdlib HTTP observability server, then fans two coordinated
sharded-service runs (independent vs headroom mode) out over the
experiment process pool with the cross-process event relay attached — so
every period decision, shed action and headroom rebalance from every
worker process streams back to this process and is visible, while the
runs are in flight, at:

* ``/``         single-file HTML dashboard (SSE-fed control-signal charts)
* ``/metrics``  Prometheus text scrape, with per-worker ``pid.../shard...``
                provenance labels on the relayed series
* ``/health``   online health-detector verdicts as JSON
* ``/status``   latest per-shard period + event counts as JSON
* ``/events``   the raw SSE stream

Run:  PYTHONPATH=src python examples/live_dashboard.py

Knobs: ``REPRO_OBS_PORT`` pins the port (default: ephemeral, printed),
``REPRO_DASH_DURATION`` sets seconds of simulated time per run (default
90), and ``REPRO_OBS_LINGER`` keeps the server up that many seconds
after the runs finish so the final state can still be browsed/scraped.
"""

import os
import time

from repro.experiments import ExperimentConfig
from repro.experiments.parallel import Job, run_jobs
from repro.obs import EventRelay, ObsServer, configure_logging, get_bus, \
    get_logger, install_metrics
from repro.service import ServiceConfig

DURATION = float(os.environ.get("REPRO_DASH_DURATION", "90"))
LINGER = float(os.environ.get("REPRO_OBS_LINGER", "0"))


def main() -> None:
    configure_logging()
    log = get_logger("examples.dashboard")
    bus = get_bus()
    install_metrics(bus)

    server = ObsServer(bus=bus).start()
    print(f"dashboard:  {server.url}/")
    print(f"metrics:    {server.url}/metrics")
    print(f"health:     {server.url}/health")
    print(f"status:     {server.url}/status")

    config = ExperimentConfig(duration=DURATION, seed=11)
    # fluid-backend shards keep the fleet cheap enough to watch live
    jobs = [
        Job(config=config, workload_kind="web",
            key=mode,
            service=ServiceConfig(n_shards=2, n_sources=2, mode=mode,
                                  backend="fluid"))
        for mode in ("independent", "headroom")
    ]

    log.info("fanning %d service runs over the pool (duration %.0fs each)",
             len(jobs), DURATION)
    with EventRelay(bus=bus) as relay:
        results = run_jobs(jobs, workers=2, relay=relay)
        relay.flush()
        print(f"\nrelayed {relay.relayed} events from "
              f"{len(relay.per_worker)} worker(s): "
              + ", ".join(f"{w}={n}" for w, n in sorted(relay.per_worker.items())))

    for job, result in zip(jobs, results):
        worst, violation = result.worst_shard()
        qos = result.aggregate_qos()
        print(f"{job.key:>12}: worst shard {worst} "
              f"violation={violation:.1f} tuple-s, "
              f"fleet loss={100 * qos.loss_ratio:.1f}%")

    if LINGER > 0:
        print(f"\nserver stays up for {LINGER:.0f}s (REPRO_OBS_LINGER) "
              f"at {server.url}/ ...")
        time.sleep(LINGER)
    server.stop()


if __name__ == "__main__":
    main()
