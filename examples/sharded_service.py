#!/usr/bin/env python3
"""Sharded service: coordinated headroom rebalancing vs independent loops.

Four engine shards share one machine (the paper's H = 0.97 split four
ways), four sources are pinned round-robin across them, and source s0 is
a hotspot offering three times the regular load. Run the same skewed
workload twice:

* ``independent`` — four disjoint paper loops: the hotspot shard drowns,
  regulating at its delay target only by shedding hard;
* ``headroom`` — a global coordinator watches every shard's period
  measurements and re-shares the machine's CPU toward demand
  (sum-preserving, so the machine is never oversubscribed).

Run:  python examples/sharded_service.py
"""

from repro.experiments import ExperimentConfig, service_comparison
from repro.metrics.report import ascii_series
from repro.service import ServiceConfig

DURATION = 120.0


def main() -> None:
    config = ExperimentConfig(duration=DURATION, seed=11)
    service = ServiceConfig()  # 4 shards, hotspot x3 on s0, headroom mode
    comparison = service_comparison(config, service,
                                    modes=("independent", "headroom"))

    print("=== skewed workload: 4 shards, hotspot s0 at 3x ===\n")
    for mode, result in comparison.results.items():
        worst_name, worst_violation = result.worst_shard()
        qos = result.aggregate_qos()
        print(f"--- mode: {mode} ---")
        print(f"  worst shard:            {worst_name} "
              f"(accumulated violation {worst_violation:.1f} s)")
        print(f"  fleet tuples delivered: {qos.delivered}")
        print(f"  fleet tuples shed:      {qos.shed} "
              f"(loss ratio {qos.loss_ratio:.3f})")
        print(f"  fleet mean delay:       {qos.mean_delay:.2f} s\n")

    hot = "shard0"  # s0 is pinned round-robin onto shard0
    for mode in ("independent", "headroom"):
        rec = comparison.results[mode].shard_records[hot]
        print(f"{hot} delay estimate over time [{mode}]:")
        print(ascii_series(rec.estimated_delays(), width=72, height=10))
        print()

    final = comparison.results["headroom"].coordinator_history[-1]["headroom"]
    print("final CPU shares under the coordinator:")
    for i, h in enumerate(final):
        print(f"  shard{i}: H = {h:.3f}")
    gain = comparison.coordination_gain()
    print(f"\ncoordination gain (worst-shard violation ratio): {gain:.1f}x")


if __name__ == "__main__":
    main()
