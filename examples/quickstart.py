#!/usr/bin/env python3
"""Quickstart: control-based load shedding in five minutes.

Builds the paper's 14-operator query network, overloads it with a bursty
Pareto stream, and closes the feedback loop with the pole-placement
controller so the average processing delay holds at a 2-second target —
shedding only as much data as the overload requires.

Run:  python examples/quickstart.py

The run is observable live through :mod:`repro.obs`: set ``REPRO_LOG=debug``
(and optionally ``REPRO_LOG_JSON=1``) for the module loggers, and point
``REPRO_PROM_DUMP`` at a file to get a Prometheus text scrape of the run's
metrics, rewritten atomically every ``REPRO_PROM_DUMP_INTERVAL`` seconds
(default 1) *while the run is in flight* — scrape it mid-run, not just at
exit.

Set ``REPRO_TUPTRACE`` to a sample fraction in (0, 1] to stamp that share
of arrivals with per-tuple lifecycle spans (repro.obs.tuptrace): the run
then prints tail-latency percentiles, the queue-wait/service decomposition
and a cross-check of the sampled mean against the monitor's QoS mean.
``REPRO_TUPTRACE_OUT=trace.json`` additionally exports the spans as a
Chrome trace-event file (open in Perfetto / chrome://tracing) plus a
``.jsonl`` sibling with one trace document per line.

Set ``REPRO_SYSID=1`` to run online system identification next to the
loop (repro.obs.sysid): the run then prints the identified plant gain
against the controller's design model and the live stability margins.
Set ``REPRO_FLIGHT`` to a ring size (e.g. 256) to arm a flight recorder
(repro.obs.flight) that dumps a self-contained incident bundle into
``REPRO_FLIGHT_DIR`` (default ``incidents/``) whenever a critical health
episode opens — inspect it with ``python -m repro.obs.flight info``.
"""

import os
import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import identification_network, make_engine
from repro.metrics.report import ascii_series
from repro.obs import (
    FlightRecorder,
    HealthMonitor,
    SysIdMonitor,
    configure_logging,
    get_bus,
    install_metrics,
    start_prom_dump,
)
from repro.obs.tuptrace import TupleTracer
from repro.workloads import arrivals_from_trace, pareto_rate_trace_with_mean

TARGET_DELAY = 2.0      # seconds — the QoS requirement
CAPACITY = 190.0        # tuples/second the engine can process at H = 1
HEADROOM = 0.97         # fraction of CPU available to query processing
DURATION = 120.0        # seconds of simulated time


def main() -> None:
    # 0. Observability: module loggers honor REPRO_LOG / REPRO_LOG_JSON,
    #    and the metrics bridge folds every bus event into counters/gauges.
    configure_logging()
    install_metrics(get_bus())
    # periodic Prometheus snapshots while the run is live (REPRO_PROM_DUMP)
    dumper = start_prom_dump()

    # 1. The plant: a Borealis-like engine running a 14-operator network.
    network = identification_network(capacity=CAPACITY)
    engine = make_engine("full", network=network, headroom=HEADROOM,
                         rng=random.Random(0))

    # 2. The model the controller is designed against (paper Eq. 2/4).
    model = DsmsModel(cost=1.0 / CAPACITY, headroom=HEADROOM, period=1.0)

    # 3. Monitor (estimated-delay feedback), controller (Eq. 10 with the
    #    paper's pole-placement gains), and actuator (Eq. 13 coin flip).
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(model.cost, alpha=0.2))
    controller = PolePlacementController(model)
    actuator = EntryActuator()
    loop = ControlLoop(engine, controller, monitor, actuator,
                       target=TARGET_DELAY, period=1.0)

    # 3b. Optional per-tuple tracing (REPRO_TUPTRACE=0.01 samples 1%).
    #     max_finished is sized above the whole offered load so the
    #     analyzer never evicts completions mid-run — eviction would bias
    #     the sampled mean and break the cross-check below.
    tracer = None
    fraction = float(os.environ.get("REPRO_TUPTRACE", "0") or "0")
    if fraction > 0.0:
        tracer = TupleTracer(fraction=fraction, seed=42,
                             max_finished=1_000_000)
        loop.tuple_tracer = tracer

    # 3c. Optional control-health diagnostics (REPRO_SYSID / REPRO_FLIGHT):
    #     both are pure bus observers, so arming them never perturbs the
    #     control trajectory.
    sysid = None
    if os.environ.get("REPRO_SYSID", "") == "1":
        sysid = SysIdMonitor(loop.bus)
    recorder = None
    ring = int(os.environ.get("REPRO_FLIGHT", "0") or "0")
    if ring > 0:
        recorder = FlightRecorder(
            loop.bus, ring=ring,
            directory=os.environ.get("REPRO_FLIGHT_DIR", "incidents"),
            runtime="single")
        recorder.watch(HealthMonitor(loop.bus))
        recorder.handle_signals()  # SIGUSR2 -> dump a bundle on demand

    # 4. A bursty workload: long-tailed per-second rates, mean 1.4x capacity.
    trace = pareto_rate_trace_with_mean(
        int(DURATION), beta=1.0, target_mean=260.0, seed=7
    )
    arrivals = arrivals_from_trace(trace, seed=7)

    print(f"Offered load: mean {trace.mean():.0f} t/s, peak {trace.peak():.0f} "
          f"t/s against a capacity of {CAPACITY * HEADROOM:.0f} t/s")
    record = loop.run(arrivals, DURATION)

    # 5. What happened?
    qos = record.qos()
    print()
    print(ascii_series(record.true_delays(), title="average delay y(k) "
                       f"(target {TARGET_DELAY:.0f} s)", y_label="time (s) ->"))
    print()
    print(f"delivered tuples        : {qos.delivered}")
    print(f"mean delay              : {qos.mean_delay:.2f} s")
    print(f"delayed tuples          : {qos.delayed_tuples} "
          f"({100 * qos.violation_ratio:.1f}% of delivered)")
    print(f"accumulated violations  : {qos.accumulated_violation:.1f} tuple-seconds")
    print(f"maximal overshoot       : {qos.max_overshoot:.2f} s")
    print(f"data shed               : {qos.shed} ({100 * qos.loss_ratio:.1f}% "
          "of offered) — the price of holding the delay target")

    # 6. Tuple-trace tail analysis (only when REPRO_TUPTRACE sampled spans).
    if tracer is not None:
        analyzer = tracer.analyzer()
        pcts = analyzer.percentiles()
        decomp = analyzer.decompose()
        check = analyzer.cross_check(record)
        print(f"\ntuple tracing           : sampled {tracer.sampled} of "
              f"{tracer.offered} arrivals ({100 * fraction:.1f}% asked)")
        print(f"  completed / dropped   : {tracer.completed} / {tracer.dropped}")
        print("  latency percentiles   : " + "  ".join(
            f"{name}={v:.2f}s" for name, v in sorted(pcts.items())))
        p99 = decomp.get("p99", {})
        print(f"  p99 decomposition     : queue-wait "
              f"{p99.get('queue_wait', 0.0):.2f}s + service "
              f"{p99.get('service', 0.0):.2f}s + drain "
              f"{p99.get('drain', 0.0):.2f}s")
        print(f"  cross-check vs QoS    : sampled mean "
              f"{check['sampled_mean']:.3f}s vs monitor "
              f"{check['monitor_mean']:.3f}s "
              f"(rel err {100 * check['rel_err']:.2f}%, "
              f"{'OK' if check['ok'] else 'BIASED'})")
        out = os.environ.get("REPRO_TUPTRACE_OUT", "").strip()
        if out:
            n = tracer.export_chrome(out)
            jsonl = out.rsplit(".", 1)[0] + ".jsonl"
            m = tracer.export_jsonl(jsonl)
            print(f"  exported              : {n} traces -> {out} "
                  f"(Chrome trace events); {m} docs -> {jsonl}")

    # 7. Control-health readout (only when REPRO_SYSID / REPRO_FLIGHT ran).
    if sysid is not None:
        for shard, st in sysid.summary().items():
            print(f"\nonline system identification ({shard}):")
            print(f"  identified gain       : {st['identified_gain']:.4f} "
                  f"(design {st['design_gain']:.4f}, "
                  f"ratio K = {st['gain_ratio']:.3f})")
            print(f"  effective margins     : gain {st['gain_margin']:.2f}, "
                  f"phase {st['phase_margin_deg']:.1f} deg, "
                  f"modulus {st['modulus_margin']:.3f}")
            print(f"  oscillation score     : {st['oscillation']:.3f}  "
                  f"(samples {st['samples']}, excluded {st['excluded']})")
    if recorder is not None:
        if recorder.incidents:
            print("\nincident bundles        : "
                  + ", ".join(str(p) for p in recorder.incidents))
        else:
            print("\nincident bundles        : none (no critical episode)")

    if dumper is not None:
        dumper.stop()  # one final snapshot so the file holds the full run
        print(f"\nwrote {dumper.writes} Prometheus metrics snapshots "
              f"to {dumper.path}")


if __name__ == "__main__":
    main()
