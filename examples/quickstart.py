#!/usr/bin/env python3
"""Quickstart: control-based load shedding in five minutes.

Builds the paper's 14-operator query network, overloads it with a bursty
Pareto stream, and closes the feedback loop with the pole-placement
controller so the average processing delay holds at a 2-second target —
shedding only as much data as the overload requires.

Run:  python examples/quickstart.py

The run is observable live through :mod:`repro.obs`: set ``REPRO_LOG=debug``
(and optionally ``REPRO_LOG_JSON=1``) for the module loggers, and point
``REPRO_PROM_DUMP`` at a file to get a Prometheus text scrape of the run's
metrics, rewritten atomically every ``REPRO_PROM_DUMP_INTERVAL`` seconds
(default 1) *while the run is in flight* — scrape it mid-run, not just at
exit.
"""

import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import identification_network, make_engine
from repro.metrics.report import ascii_series
from repro.obs import configure_logging, get_bus, install_metrics, start_prom_dump
from repro.workloads import arrivals_from_trace, pareto_rate_trace_with_mean

TARGET_DELAY = 2.0      # seconds — the QoS requirement
CAPACITY = 190.0        # tuples/second the engine can process at H = 1
HEADROOM = 0.97         # fraction of CPU available to query processing
DURATION = 120.0        # seconds of simulated time


def main() -> None:
    # 0. Observability: module loggers honor REPRO_LOG / REPRO_LOG_JSON,
    #    and the metrics bridge folds every bus event into counters/gauges.
    configure_logging()
    install_metrics(get_bus())
    # periodic Prometheus snapshots while the run is live (REPRO_PROM_DUMP)
    dumper = start_prom_dump()

    # 1. The plant: a Borealis-like engine running a 14-operator network.
    network = identification_network(capacity=CAPACITY)
    engine = make_engine("full", network=network, headroom=HEADROOM,
                         rng=random.Random(0))

    # 2. The model the controller is designed against (paper Eq. 2/4).
    model = DsmsModel(cost=1.0 / CAPACITY, headroom=HEADROOM, period=1.0)

    # 3. Monitor (estimated-delay feedback), controller (Eq. 10 with the
    #    paper's pole-placement gains), and actuator (Eq. 13 coin flip).
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(model.cost, alpha=0.2))
    controller = PolePlacementController(model)
    actuator = EntryActuator()
    loop = ControlLoop(engine, controller, monitor, actuator,
                       target=TARGET_DELAY, period=1.0)

    # 4. A bursty workload: long-tailed per-second rates, mean 1.4x capacity.
    trace = pareto_rate_trace_with_mean(
        int(DURATION), beta=1.0, target_mean=260.0, seed=7
    )
    arrivals = arrivals_from_trace(trace, seed=7)

    print(f"Offered load: mean {trace.mean():.0f} t/s, peak {trace.peak():.0f} "
          f"t/s against a capacity of {CAPACITY * HEADROOM:.0f} t/s")
    record = loop.run(arrivals, DURATION)

    # 5. What happened?
    qos = record.qos()
    print()
    print(ascii_series(record.true_delays(), title="average delay y(k) "
                       f"(target {TARGET_DELAY:.0f} s)", y_label="time (s) ->"))
    print()
    print(f"delivered tuples        : {qos.delivered}")
    print(f"mean delay              : {qos.mean_delay:.2f} s")
    print(f"delayed tuples          : {qos.delayed_tuples} "
          f"({100 * qos.violation_ratio:.1f}% of delivered)")
    print(f"accumulated violations  : {qos.accumulated_violation:.1f} tuple-seconds")
    print(f"maximal overshoot       : {qos.max_overshoot:.2f} s")
    print(f"data shed               : {qos.shed} ({100 * qos.loss_ratio:.1f}% "
          "of offered) — the price of holding the delay target")

    if dumper is not None:
        dumper.stop()  # one final snapshot so the file holds the full run
        print(f"\nwrote {dumper.writes} Prometheus metrics snapshots "
              f"to {dumper.path}")


if __name__ == "__main__":
    main()
