#!/usr/bin/env python3
"""System identification: deriving the DSMS model from experiments.

Reproduces the paper's Section 4.2 methodology interactively: feed the
engine step and sinusoidal inputs, watch the virtual queue integrate above
capacity, then fit Eq. 2 with candidate headroom values and see which one
explains the data (the paper found H = 0.97 for its Borealis installation;
this engine is configured with 0.97 and the fit recovers it blindly).

Run:  python examples/system_identification.py
"""

from repro.experiments import ExperimentConfig, model_verification, step_response
from repro.metrics.report import ascii_series, format_table
from repro.workloads import sinusoid_rate, step_rate


def main() -> None:
    config = ExperimentConfig()
    print("Step-response experiment (paper Fig. 5): rates 150/190/200/300 t/s,")
    print(f"engine capacity {config.capacity:.0f} t/s at H = 1\n")
    results = step_response(config=config)
    rows = []
    for rate, r in sorted(results.items()):
        tail = r.delay_increments[-8:]
        rows.append([f"{rate:.0f}", f"{r.delays[-1]:.2f}",
                     f"{sum(tail) / len(tail):.3f}",
                     "saturated" if r.saturated else "steady"])
    print(format_table(
        ["input rate (t/s)", "final delay (s)", "dy/dk (s/period)",
         "regime"], rows))
    print("\n  -> below ~184 t/s (= 190 x 0.97) the delay is flat; above it")
    print("     the delay grows at a constant rate: the plant integrates.\n")

    print("Model verification with a step input (paper Fig. 6):")
    trace = step_rate(80, 10, low=10.0, high=300.0)
    fit = model_verification(trace, config)
    rows = [[f"{h:.2f}", f"{f.rms_error:.3f}"]
            for h, f in sorted(fit.fits.items())]
    print(format_table(["candidate H", "RMS model error (s)"], rows))
    print(f"  best H = {fit.best_headroom():.2f}; measured cost "
          f"{fit.measured_cost * 1000:.2f} ms/tuple\n")

    print("Model verification with a sinusoidal input (paper Fig. 7):")
    trace = sinusoid_rate(200, 50, low=0.0, high=400.0)
    fit = model_verification(trace, config)
    rows = [[f"{h:.2f}", f"{f.rms_error:.3f}"]
            for h, f in sorted(fit.fits.items())]
    print(format_table(["candidate H", "RMS model error (s)"], rows))
    print(f"  best H = {fit.best_headroom():.2f}\n")
    print(ascii_series(fit.measured, title="measured y(k) under the sinusoid",
                       y_label="time (s) ->"))


if __name__ == "__main__":
    main()
