#!/usr/bin/env python3
"""Control-health diagnostics: catch a model break before QoS does.

The scenario the paper's Section 6 robustness argument worries about:
mid-run, every tuple silently becomes 2x as expensive (a plan change, a
cache gone cold), so the controller's design model now understates the
plant gain by 2x. With a *capped* actuator (a per-run loss SLA of 50%)
the loop cannot shed its way back to the target, the queue diverges —
and the interesting question is which alarm fires first.

Online system identification (repro.obs.sysid) watches the closed loop's
own (du, dy) increments, re-estimates the plant gain each period, and
re-evaluates the stability margins for the *identified* loop. The
``model_mismatch`` detector opens on the gain ratio within a few periods
of the cost step — before the queue has dragged the measured delay far
enough past the target for ``qos_violation`` to open. The flight
recorder dumps a self-contained incident bundle at that moment, and
``python -m repro.obs.flight replay`` re-runs it deterministically.

Run:  python examples/control_health.py
"""

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_strategy
from repro.metrics.report import ascii_series
from repro.obs import EventBus, FlightRecorder, HealthMonitor, SysIdMonitor
from repro.obs.flight import load_bundle, replay_bundle
from repro.workloads import CostTrace, constant_rate

N_PERIODS = 240      # 4 virtual minutes at T = 1 s
STEP_AT = 100        # period where the per-tuple cost doubles
RATE = 250.0         # offered tuples/s (overload: capacity ~184 t/s)
ALPHA_CAP = 0.5      # loss SLA: never shed more than half the stream


def main() -> None:
    config = ExperimentConfig(duration=float(N_PERIODS), seed=42)
    workload = constant_rate(RATE, N_PERIODS)
    base = config.base_cost
    cost = CostTrace([base] * STEP_AT
                     + [2.0 * base] * (N_PERIODS - STEP_AT), 1.0)

    bus = EventBus()
    sysid = SysIdMonitor(bus)
    health = HealthMonitor(bus, qos_tolerance=2.0)
    recorder = FlightRecorder(
        bus, ring=64, directory="incidents", runtime="single",
        experiment=config,
        replay_spec={
            "kind": "strategy", "strategy": "CTRL",
            "workload": {"kind": "constant", "rate": RATE,
                         "n_periods": N_PERIODS, "period": 1.0},
            "cost_trace": {"values": list(cost.values), "period": 1.0},
            "alpha_cap": ALPHA_CAP,
        })
    recorder.watch(health)

    print(f"Constant {RATE:.0f} t/s; per-tuple cost doubles at period "
          f"{STEP_AT}; shedding capped at {100 * ALPHA_CAP:.0f}%\n")
    record = run_strategy("CTRL", workload, config, cost_trace=cost,
                          alpha_cap=ALPHA_CAP, bus=bus)
    health.finalize()

    print(ascii_series(record.true_delays(),
                       title="average delay y(k) under the capped actuator",
                       y_label="time (s) ->"))

    print("\nhealth episodes, in opening order:")
    for report in health.reports():
        span = (f"k={report.first_k}" if report.last_k == report.first_k
                else f"k={report.first_k}..{report.last_k}")
        flag = " [still open at end of run]" if report.open else ""
        print(f"  {report.severity:8s} {report.kind:18s} {span}  "
              f"{report.detail}{flag}")
    kinds = [r.kind for r in health.reports()]
    if "model_mismatch" in kinds and "qos_violation" in kinds:
        lead = kinds.index("qos_violation") - kinds.index("model_mismatch")
        assert lead > 0, "mismatch should open before the QoS alarm"
        print("\n  -> the identified-gain detector fired BEFORE the QoS "
              "detector: the model break is visible in (du, dy) while the "
              "queue is still dragging the delay up.")

    mismatches = [r for r in health.reports() if r.kind == "model_mismatch"]
    peak = max(r.value for r in mismatches) if mismatches else 1.0
    st = sysid.summary()["main"]
    print(f"\npeak gain-ratio excess K: {peak:.3f} during the episode; "
          f"{st['gain_ratio']:.3f} at end of run — the monitor's EWMA "
          "cost estimator eventually learns the new cost, so the design "
          "gain catches up and the *mismatch* (not the overload) heals")
    print(f"effective gain margin   : {st['gain_margin']:.2f} "
          "(nominal 5.07 / K)")

    assert recorder.incidents, "a critical episode should have dumped"
    bundle = str(recorder.incidents[0])
    print(f"\nincident bundle         : {bundle}")
    diff = replay_bundle(load_bundle(recorder.incidents[0]))
    print(f"deterministic replay    : {diff.summary()}")
    print("  (same check, offline:  python -m repro.obs.flight replay "
          + bundle + ")")


if __name__ == "__main__":
    main()
