#!/usr/bin/env python3
"""Process fleet: one worker process per shard, observed live.

Runs the hotspot workload through a true-parallel
:class:`~repro.service.fleet.ProcessFleet` — every shard is its own OS
process driving its own Monitor -> Controller -> Actuator loop, while
this (parent) process runs the headroom coordinator over relayed
per-period summaries. The observability uplink is attached, so every
worker's period decisions stream back here and are visible while the
fleet is in flight at:

* ``/``         the live dashboard (SSE-fed control-signal charts)
* ``/metrics``  Prometheus text scrape — relayed series carry
                ``shard="pid<pid>/<shard>"`` provenance labels, one pid
                per shard worker
* ``/health``   online health-detector verdicts (worker deaths included)
* ``/status``   the coordinator's live per-shard view: headroom, delay
                target, drop demand, worker pid, restarts

A deliberately killed worker (set ``REPRO_FLEET_FAIL_AT``) shows the
whole recovery story: ``worker_down`` in ``/health``, a new pid in
``/status``, and final aggregates identical to an undisturbed run —
recovery is deterministic replay from the coordinator's command journal.

Run:  PYTHONPATH=src python examples/process_fleet.py

Knobs: ``REPRO_OBS_PORT`` pins the port (default: ephemeral, printed),
``REPRO_FLEET_DURATION`` sets simulated seconds (default 120),
``REPRO_FLEET_SHARDS`` the worker count (default 4),
``REPRO_FLEET_FAIL_AT`` kills shard0's worker at that period (default
off, set e.g. 40), and ``REPRO_OBS_LINGER`` keeps the server up that
many seconds after the run so the final state can still be scraped.
"""

import os
import time

from repro.experiments import ExperimentConfig
from repro.experiments.service_demo import build_service_workload
from repro.obs import ObsServer, configure_logging, get_bus, get_logger, \
    install_metrics
from repro.service import FleetConfig, build_fleet

DURATION = float(os.environ.get("REPRO_FLEET_DURATION", "120"))
SHARDS = int(os.environ.get("REPRO_FLEET_SHARDS", "4"))
FAIL_AT = os.environ.get("REPRO_FLEET_FAIL_AT")
LINGER = float(os.environ.get("REPRO_OBS_LINGER", "0"))


def main() -> None:
    configure_logging()
    log = get_logger("examples.fleet")
    bus = get_bus()
    install_metrics(bus)

    config = ExperimentConfig(duration=DURATION, seed=11)
    svc = FleetConfig(n_shards=SHARDS, n_sources=SHARDS,
                      relay=True, health=True)
    fail_at = {"shard0": int(FAIL_AT)} if FAIL_AT else None
    fleet = build_fleet(config, svc, bus=bus, fail_at=fail_at)

    server = ObsServer(bus=bus, status_fn=fleet.status).start()
    print(f"dashboard:  {server.url}/")
    print(f"metrics:    {server.url}/metrics")
    print(f"health:     {server.url}/health")
    print(f"status:     {server.url}/status")

    arrivals = build_service_workload(config, svc)
    log.info("launching %d shard workers (duration %.0fs, sync mode%s)",
             SHARDS, DURATION,
             f", shard0 dies at period {FAIL_AT}" if fail_at else "")
    result = fleet.run(arrivals, config.duration)

    print(f"\nfleet finished in {result.wall_seconds:.2f}s wall-clock")
    for name, state in fleet.status()["shards"].items():
        print(f"  {name}: pid {state['pid']}, "
              f"restarts {state['restarts']}, "
              f"headroom {state['headroom']:.3f}")
    worst, violation = result.worst_shard()
    qos = result.aggregate_qos()
    print(f"worst shard {worst} violation={violation:.1f} tuple-s, "
          f"fleet loss={100 * qos.loss_ratio:.1f}%")
    if result.health is not None:
        downs = result.health["counts"].get("worker_down", 0)
        print(f"health: {'healthy' if result.health['healthy'] else 'degraded'}"
              f" ({downs} worker outage(s) on record)")

    if LINGER > 0:
        print(f"\nserver stays up for {LINGER:.0f}s (REPRO_OBS_LINGER) "
              f"at {server.url}/ ...")
        time.sleep(LINGER)
    server.stop()


if __name__ == "__main__":
    main()
