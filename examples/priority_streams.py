#!/usr/bin/env python3
"""Heterogeneous quality guarantees: priority- and value-aware shedding.

The paper's Section 6 sketches two extensions this library implements:
streams with different priorities, and semantic (utility-based) victim
selection. This example runs a telemetry platform with three customer
tiers sharing one engine during a 2x overload, then shows semantic
shedding preserving high-severity events at the same loss ratio.

Run:  python examples/priority_streams.py
"""

import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
    PriorityEntryActuator,
    SemanticEntryActuator,
)
from repro.dsms import MapOperator, QueryNetwork, make_engine
from repro.metrics.report import format_table
from repro.shedding import PriorityEntryShedder, SemanticEntryShedder
from repro.workloads import merge_arrivals

TIERS = {"gold": 3.0, "silver": 2.0, "bronze": 1.0}
RATE_PER_TIER = 250.0   # tuples/s offered by each tier
CAPACITY = 380.0        # total tuples/s the engine sustains at H = 1
DURATION = 90.0


def build_network() -> QueryNetwork:
    net = QueryNetwork("telemetry")
    for tier in TIERS:
        net.add_source(tier)
        net.add_operator(MapOperator(f"{tier}_ingest", 1.0 / CAPACITY),
                         [tier])
    return net


def tier_arrivals(seed: int):
    rng = random.Random(seed)
    streams = []
    for tier in TIERS:
        stream = []
        for k in range(int(DURATION)):
            n = int(RATE_PER_TIER)
            for i in range(n):
                # values: (severity score in [0,1),)
                stream.append((k + i / n, (rng.random(),), tier))
        streams.append(stream)
    return merge_arrivals(*streams)


def run(actuator):
    engine = make_engine("full", network=build_network(), headroom=0.97,
                         rng=random.Random(1))
    model = DsmsModel(cost=1.0 / CAPACITY, headroom=0.97, period=1.0)
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(model.cost, 0.2))
    loop = ControlLoop(engine, PolePlacementController(model), monitor,
                       actuator, target=2.0, period=1.0)
    return loop.run(tier_arrivals(seed=2), DURATION)


def main() -> None:
    offered = len(TIERS) * RATE_PER_TIER
    print(f"Three tiers offer {offered:.0f} tuples/s against "
          f"{CAPACITY * 0.97:.0f} tuples/s of capacity — about half must "
          "be shed.\n")

    # 1. priority-aware: gold survives, bronze absorbs the loss
    priority = PriorityEntryActuator(
        PriorityEntryShedder(TIERS, rng=random.Random(3))
    )
    rec = run(priority)
    rows = [[tier, f"{TIERS[tier]:.0f}", f"{loss:.1%}"]
            for tier, loss in sorted(priority.loss_by_source().items(),
                                     key=lambda kv: -TIERS[kv[0]])]
    print("Priority-aware shedding (strict priority, water-filled):")
    print(format_table(["tier", "priority", "data lost"], rows))
    q = rec.qos()
    print(f"aggregate: mean delay {q.mean_delay:.2f} s (target 2 s), "
          f"total loss {q.loss_ratio:.1%}\n")

    # 2. semantic: same loss, but the high-severity events survive
    semantic = SemanticEntryActuator(
        SemanticEntryShedder(utility=lambda v: v[0] if v else 0.0,
                             rng=random.Random(4))
    )
    rec_sem = run(semantic)
    random_baseline = EntryActuator()
    rec_rand = run(random_baseline)
    print("Semantic shedding (drop lowest-severity events first):")
    print(format_table(
        ["shedder", "loss", "severity retained"],
        [["random coin", f"{rec_rand.qos().loss_ratio:.1%}",
          f"{1 - rec_rand.qos().loss_ratio:.1%} (proportional)"],
         ["semantic", f"{rec_sem.qos().loss_ratio:.1%}",
          f"{semantic.utility_retention:.1%} of offered severity-mass"]],
    ))
    print("\nSame delay guarantee, same loss ratio — but the shed tuples")
    print("are the ones the queries cared least about.")


if __name__ == "__main__":
    main()
