#!/usr/bin/env python3
"""Sweeping a tuning grid on the vectorized batch backend.

The paper's Fig. 19 experiment re-runs the whole closed loop once per
control period — with the ``batch`` backend the entire grid advances in
lock-step through one stacked numpy recursion instead (one control period
per step for every grid point at once), with an optional per-point
cross-check against the scalar engine. This example sweeps control period
x delay target on the quick config, cross-checks a sample, and prints the
speed/fidelity trade-off. See docs/THEORY.md §8 for why the batch
integration is exact, and README.md's "Engine backends" table.

Run:  python examples/batch_grid_sweep.py      (needs numpy: repro[fast])
"""

import time

from repro.dsms.batch import HAVE_NUMPY
from repro.experiments import (
    QUICK_CONFIG,
    GridPoint,
    cross_check_grid,
    period_sweep,
    run_batch_grid,
    scalar_reference,
)
from repro.metrics.report import format_table


def main() -> int:
    if not HAVE_NUMPY:
        print("numpy not installed — the batch backend needs repro[fast]")
        return 0

    # 1. A 4x3 tuning grid: control period x delay target, CTRL on the
    #    web workload. One run per cell on the scalar path; one stacked
    #    pass for all twelve cells on the batch path.
    periods = (0.25, 0.5, 1.0, 2.0)
    targets = (1.0, 2.0, 4.0)
    points = [
        GridPoint(config=QUICK_CONFIG.scaled(period=t), target=yd,
                  key=f"T={t}/yd={yd}")
        for t in periods for yd in targets
    ]

    start = time.perf_counter()
    results = run_batch_grid(points)
    batch_wall = time.perf_counter() - start

    rows = []
    for res in results:
        rows.append([res.point.key,
                     f"{res.qos.accumulated_violation:.1f}",
                     f"{res.qos.loss_ratio:.3f}",
                     f"{res.qos.mean_delay:.2f}"])
    print(f"Tuning grid ({len(points)} points, "
          f"{QUICK_CONFIG.duration:.0f} s each) in {batch_wall:.2f} s:")
    print(format_table(
        ["point", "violation (s)", "loss ratio", "mean delay (s)"], rows))

    # 2. Cross-check a sample of the grid against the scalar engine: the
    #    batch kernel must agree on violation time and loss ratio within
    #    1% (run_batch_grid is a kernel, not an approximation).
    sample = points[:: len(points) // 4]
    sampled = results[:: len(points) // 4]
    start = time.perf_counter()
    reports = cross_check_grid(sample, sampled)
    scalar_wall = time.perf_counter() - start
    worst = max(max(r.violation_err, r.loss_err) for r in reports)
    print(f"\nCross-check: {len(reports)} sampled points agree with the "
          f"scalar engine\n  worst error {worst:.2%} (tolerance 1%), "
          f"scalar sample took {scalar_wall:.2f} s")

    # 3. The same speedup is one keyword away in the figure experiments.
    start = time.perf_counter()
    sweep = period_sweep(QUICK_CONFIG, periods=(0.5, 1.0, 2.0),
                         backend="batch")
    sweep_wall = time.perf_counter() - start
    best = min(sweep.metrics.items(),
               key=lambda kv: kv[1].accumulated_violation)
    print(f"\nperiod_sweep(..., backend='batch'): {len(sweep.metrics)} "
          f"periods in {sweep_wall:.2f} s; best T = {best[0]} "
          f"({best[1].accumulated_violation:.1f} s violation)")

    # 4. Scalar single-point timing for scale.
    start = time.perf_counter()
    scalar_reference(points[0])
    one = time.perf_counter() - start
    print(f"\nOne scalar run takes {one:.2f} s -> the {len(points)}-point "
          f"grid would cost ~{one * len(points):.1f} s serially vs "
          f"{batch_wall:.2f} s batched "
          f"({one * len(points) / batch_wall:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
