#!/usr/bin/env python3
"""Stock-tick tracking with a firm freshness deadline.

The paper's other motivating application: tracking of stock prices, where
query results have a *firm* deadline — a price signal delivered late is
worthless. This example compares the control-based shedder (CTRL) against
the Aurora open-loop shedder on a tick stream whose volume follows the
market's open/close volume smile, and then tightens the deadline at
mid-session to show runtime setpoint tracking (the paper's Fig. 18
capability).

Run:  python examples/financial_ticks.py
"""

import math
import random

from repro.core import (
    AuroraOpenLoopController,
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import chain_network, make_engine
from repro.metrics.report import ascii_series, format_table
from repro.workloads import RateTrace, arrivals_from_trace

CAPACITY = 400.0       # ticks/second the analytics chain sustains at H = 1
SESSION = 180.0        # seconds of simulated trading
INITIAL_DEADLINE = 1.0
TIGHT_DEADLINE = 0.5   # tightened at mid-session
TARGET_MARGIN = 0.6    # regulate at 60% of the deadline: a firm deadline
                       # needs headroom for the regulation ripple


def volume_smile(n_periods: int) -> RateTrace:
    """U-shaped intraday volume: heavy at the open and the close."""
    values = []
    for k in range(n_periods):
        x = k / max(n_periods - 1, 1)          # 0 .. 1 over the session
        smile = 1.0 + 2.2 * (2.0 * x - 1.0) ** 2   # 1.0 mid, 3.2 at ends
        values.append(220.0 * smile)
        # bursts on "news": every ~40 s a 3-second doubling
        if (k % 40) in (20, 21, 22):
            values[-1] *= 2.0
    return RateTrace(values, 1.0)


def deadline_schedule(t: float) -> float:
    return INITIAL_DEADLINE if t < SESSION / 2 else TIGHT_DEADLINE


def news_cost_multiplier(t: float) -> float:
    """Earnings announcements at t=60 and t=130 double per-tick work for 20 s
    (sentiment models run on every tick) — the paper's Fig. 14 scenario."""
    if 60.0 <= t < 80.0 or 130.0 <= t < 150.0:
        return 2.0
    return 1.0


def run(controller_cls):
    network = chain_network(n_operators=6, capacity=CAPACITY)
    engine = make_engine("full", network=network, headroom=0.97,
                         rng=random.Random(2),
                    cost_multiplier=news_cost_multiplier)
    model = DsmsModel(cost=1.0 / CAPACITY, headroom=0.97, period=0.5)
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(model.cost, 0.15))
    loop = ControlLoop(engine, controller_cls(model), monitor,
                       EntryActuator(),
                       target=lambda k: TARGET_MARGIN * deadline_schedule(k * 0.5),
                       period=0.5)
    arrivals = arrivals_from_trace(volume_smile(int(SESSION)), n_fields=6,
                                   seed=5)
    record = loop.run(arrivals, SESSION)
    # staleness is judged against the *deadline*, not the regulation target
    qos = record.qos(target=lambda t: deadline_schedule(t))
    return record, qos


def main() -> None:
    trace = volume_smile(int(SESSION))
    print(f"Tick volume: {trace.mean():.0f}/s mean, {trace.peak():.0f}/s peak "
          f"(capacity {CAPACITY * 0.97:.0f}/s); deadline {INITIAL_DEADLINE} s, "
          f"tightened to {TIGHT_DEADLINE} s at t = {SESSION / 2:.0f} s\n")
    rows = []
    records = {}
    for cls in (PolePlacementController, AuroraOpenLoopController):
        record, q = run(cls)
        records[cls.name] = record
        rows.append([cls.name, q.accumulated_violation, q.delayed_tuples,
                     q.max_overshoot, q.loss_ratio])
    print(format_table(
        ["shedder", "stale tick-seconds", "stale ticks",
         "worst staleness (s)", "ticks dropped"], rows))
    print()
    print(ascii_series(records["CTRL"].true_delays(),
                       title="CTRL: tick staleness y(k) — note the step down "
                             "when the deadline tightens",
                       y_label="session time (s) ->"))


if __name__ == "__main__":
    main()
