#!/usr/bin/env python3
"""Live source migration: drain, cutover, recover — without a restart.

Eight sources are pinned round-robin across four shards, which puts the
4x hotspot s0 *and* regular source s4 together on shard0. The per-shard
headroom ceiling (32% of the machine) binds on shard0, so CPU-share
rebalancing alone cannot save it: the coordinator's headroom pool has
nothing left to give. Run the same skewed workload twice:

* ``rebalancing only`` — shard0 pegs at its ceiling and regulates at the
  delay target only by accumulating QoS violation;
* ``rebalancing + migration`` — the coordinator's migration policy
  notices the persistent deficit next to idle surplus, drains s4's
  in-flight work from shard0, journals the cutover epoch, and re-pins
  s4 onto a cold shard. The hotspot shard recovers within periods.

The cutover is a transaction (docs/THEORY.md §13): the old shard drains
*before* the routing table commits, so no admitted tuple is discarded or
split across shards, and every runtime that replays the journal lands on
the same epoch.

Run:  python examples/live_migration.py
"""

from repro.experiments import ExperimentConfig, build_service_workload
from repro.metrics.report import ascii_series
from repro.obs import EventBus
from repro.service import ServiceConfig, build_service

DURATION = 60.0

MIGRATION = ServiceConfig(n_shards=4, n_sources=8, hotspot_factor=4.0,
                          per_source_rate=14.0, headroom_ceiling=0.32,
                          migration=True, migration_patience=3,
                          migration_cooldown=10)


def run(config, service_config, workload, bus=None):
    service = build_service(config, service_config)
    if bus is not None:
        service.bus = bus
        service.coordinator.bus = bus
        for shard in service.shards:
            scoped = bus.scoped(shard.name)
            shard.loop.bus = scoped
            shard.engine.bus = scoped
    result = service.run(workload, config.duration)
    return service, result


def main() -> None:
    config = ExperimentConfig(duration=DURATION, seed=7)
    workload = build_service_workload(config, MIGRATION)

    baseline_cfg = ServiceConfig(
        **{**{f: getattr(MIGRATION, f) for f in (
            "n_shards", "n_sources", "hotspot_factor",
            "per_source_rate", "headroom_ceiling")},
           "migration": False})

    bus = EventBus()
    events = []
    bus.subscribe(events.append,
                  kinds=("route_changed", "migration_started",
                         "migration_completed"))

    print("=== stuck hotspot: s0 (4x) and s4 share shard0, "
          "ceiling H <= 0.32 ===\n")
    __, baseline = run(config, baseline_cfg, workload)
    service, migrated = run(config, MIGRATION, workload, bus=bus)

    moves = [(e["k"], e["migration"])
             for e in migrated.coordinator_history if "migration" in e]
    if not moves:
        raise SystemExit("no migration triggered — policy tuning regressed")
    for k, plan in moves:
        print(f"period {k}: coordinator moved {plan['source']} "
              f"shard{plan['from']} -> shard{plan['to']} "
              f"(deficit {plan['deficit']:.3f}, epoch {plan['epoch']})")
    done = next(e for e in events if e.kind == "migration_completed")
    print(f"  drained {done.drained} in-flight tuples in "
          f"{done.virtual_seconds:.2f}s of virtual time before cutover\n")

    for label, result in (("rebalancing only", baseline),
                          ("rebalancing + migration", migrated)):
        worst_name, worst_violation = result.worst_shard(
            "accumulated_violation")
        qos = result.aggregate_qos()
        print(f"--- {label} ---")
        print(f"  worst shard:            {worst_name} "
              f"(accumulated violation {worst_violation:.1f} s)")
        print(f"  fleet tuples delivered: {qos.delivered}")
        print(f"  fleet tuples shed:      {qos.shed} "
              f"(loss ratio {qos.loss_ratio:.3f})\n")

    hot = "shard0"  # round-robin pins s0 and s4 there
    for label, result in (("rebalancing only", baseline),
                          ("rebalancing + migration", migrated)):
        rec = result.shard_records[hot]
        print(f"{hot} delay estimate over time [{label}]:")
        print(ascii_series(rec.estimated_delays(), width=72, height=10))
        print()

    print(f"final routing table (epoch {service.router.epoch}):")
    for source, shard in sorted(service.router.routes().items()):
        print(f"  {source} -> shard{shard}")

    __, worst_without = baseline.worst_shard("accumulated_violation")
    __, worst_with = migrated.worst_shard("accumulated_violation")
    assert worst_with < 0.1 * worst_without, (worst_with, worst_without)
    print(f"\nworst-shard violation: {worst_without:.1f}s -> "
          f"{worst_with:.1f}s after one migration")


if __name__ == "__main__":
    main()
