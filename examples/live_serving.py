#!/usr/bin/env python3
"""Real-time serving: a live node holding its delay target over a socket.

This is the paper's deployment scenario end-to-end: a wall-clock
control loop behind a TCP ingestion front-end, a traffic generator
replaying a trace at a controlled overload factor over localhost, and
the live dashboard watching the feedback loop work in real time.

The script starts a live node (CTRL strategy), blasts it with roughly
``REPRO_LIVE_OVERLOAD``x its capacity for ``REPRO_LIVE_DURATION`` wall
seconds, and prints the per-period trajectory: the delay estimate
converging into the target band while the entry actuator sheds the
surplus. With ``REPRO_LIVE_COMPARE=1`` it then repeats the identical
replay against AURORA and BASELINE comparators, which let the delay run
away or overshoot — the paper's Fig. 6/8 contrast, live.

Run:  PYTHONPATH=src python examples/live_serving.py

Knobs: ``REPRO_OBS_PORT`` pins the dashboard port (default ephemeral,
printed), ``REPRO_LIVE_DURATION`` wall seconds per run (default 12),
``REPRO_LIVE_OVERLOAD`` offered-rate multiple of capacity (default 3),
``REPRO_LIVE_PERIOD`` control period seconds (default 0.25),
``REPRO_OBS_LINGER`` keeps the dashboard up after the run, and
``REPRO_LIVE_COMPARE=1`` adds the AURORA/BASELINE comparison runs.

While it runs, watch it live:

    curl -s http://127.0.0.1:$REPRO_OBS_PORT/status | python -m json.tool
    open http://127.0.0.1:$REPRO_OBS_PORT/        # dashboard

or replay your own traffic at the printed ingest port:

    python -m repro.workloads.replay --port <ingest port> --speed 50
"""

import os
import time

from repro.experiments import ExperimentConfig
from repro.obs import configure_logging, get_bus, install_metrics
from repro.serve import build_live_runner
from repro.workloads import arrivals_from_trace, constant_rate
from repro.workloads.replay import TraceReplayer

DURATION = float(os.environ.get("REPRO_LIVE_DURATION", "12"))
OVERLOAD = float(os.environ.get("REPRO_LIVE_OVERLOAD", "3"))
PERIOD = float(os.environ.get("REPRO_LIVE_PERIOD", "0.25"))
LINGER = float(os.environ.get("REPRO_OBS_LINGER", "0"))
COMPARE = os.environ.get("REPRO_LIVE_COMPARE", "") == "1"

#: modest capacity so OVERLOADx is loopback-feasible on any machine
CAPACITY = 200.0
TARGET = 0.5


def run_live(strategy: str, serve: bool) -> None:
    n_periods = max(4, int(round(DURATION / PERIOD)))
    config = ExperimentConfig(capacity=CAPACITY, period=PERIOD,
                              target=TARGET, duration=DURATION)
    runner = build_live_runner(config, strategy=strategy, backend="fluid",
                               serve=serve, max_periods=n_periods)
    runner.handle_signals()
    runner.start()
    if serve and runner.obs_server is not None:
        print(f"dashboard:  {runner.obs_server.url}/")
        print(f"status:     {runner.obs_server.url}/status")
        print(f"metrics:    {runner.obs_server.url}/metrics")
    print(f"ingest:     tcp://127.0.0.1:{runner.ingest_port}  "
          f"({strategy}, capacity {CAPACITY:.0f} t/s, "
          f"target {TARGET}s, period {PERIOD}s)")

    # offered load: OVERLOADx capacity, evenly paced, replayed in real time
    trace = constant_rate(CAPACITY * OVERLOAD, n_periods, period=PERIOD)
    arrivals = arrivals_from_trace(trace, seed=7)
    replayer = TraceReplayer(arrivals, "127.0.0.1", runner.ingest_port,
                             speed=1.0, stamp_sent=True).start()
    print(f"replaying   {len(arrivals)} tuples "
          f"(~{CAPACITY * OVERLOAD:.0f} t/s offered = {OVERLOAD:.0f}x "
          f"capacity) for {DURATION:.0f}s of wall time ...")

    runner.wait(timeout=DURATION + 30)
    record = runner.stop()
    replayer.stop()

    periods = record.periods
    stride = max(1, len(periods) // 10)
    for p in periods[::stride]:
        band = "in band" if abs(p.delay_estimate - TARGET) <= 0.5 * TARGET \
            else "  OUT  "
        print(f"  k={p.k:>3}  offered={p.offered:>4}  admitted={p.admitted:>4}"
              f"  yhat={p.delay_estimate:6.3f}s [{band}]  alpha={p.alpha:.2f}"
              f"  q={p.queue_length}")
    tail = periods[len(periods) // 2:]
    mean_tail = sum(p.delay_estimate for p in tail) / max(len(tail), 1)
    snap = runner.ingest.snapshot()
    print(f"{strategy:>9}: tail mean delay {mean_tail:.3f}s "
          f"(target {TARGET}s), max alpha "
          f"{max(p.alpha for p in periods):.2f}, "
          f"ingest accepted={snap.accepted} dropped={snap.dropped}")


def main() -> None:
    configure_logging()
    install_metrics(get_bus())
    run_live("CTRL", serve=True)
    if COMPARE:
        for strategy in ("AURORA", "BASELINE"):
            print()
            run_live(strategy, serve=False)
    if LINGER > 0:
        print(f"\nlingering {LINGER:.0f}s (REPRO_OBS_LINGER) ...")
        time.sleep(LINGER)


if __name__ == "__main__":
    main()
