#!/usr/bin/env python3
"""Designing your own load-shedding controller with the control toolkit.

Walks through the paper's Appendix A with different design choices:
closed-loop pole locations trade convergence speed against control
authority (how hard the shedder is worked), and damping trades speed
against oscillation. Prints step responses and the resulting gains,
including the recovery of the paper's published constants.

Run:  python examples/controller_design.py
"""

from repro.control import stability_margins, step_metrics, step_response
from repro.core import DsmsModel, design_gains, poles_from_specs
from repro.metrics.report import format_table


def main() -> None:
    model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
    print(f"Plant: G(z) = cT/(H(z-1)) with c = {model.cost * 1000:.2f} ms, "
          f"H = {model.headroom}, T = {model.period} s\n")

    # 1. The paper's design: both poles at 0.7, controller pole at 0.8.
    paper = design_gains(poles=(0.7, 0.7), controller_pole=0.8)
    print("The paper's design (poles 0.7/0.7, controller pole 0.8):")
    print(f"  b0 = {paper.b0:.4f}, b1 = {paper.b1:.4f}, a = {paper.a:.4f}")
    print("  (Section 5 reports b0 = 0.4, b1 = -0.31, a = -0.8)\n")

    # 2. Sweep the closed-loop pole location.
    rows = []
    for pole in (0.9, 0.8, 0.7, 0.5, 0.3):
        gains = design_gains(poles=(pole, pole), controller_pole=0.8)
        closed = gains.closed_loop(model)
        resp = step_response(closed, 40)
        m = step_metrics(resp)
        # control authority: the immediate reaction to a unit error is
        # b0 * H/(cT) tuples/s of admission change
        authority = gains.b0 * model.headroom / (model.cost * model.period)
        rows.append([f"{pole:.1f}", f"{gains.b0:.2f}", f"{gains.b1:.2f}",
                     m.settling_index, f"{m.overshoot_pct:.1f}%",
                     f"{authority:.0f}"])
    print("Pole-location sweep (double real pole, controller pole 0.8):")
    print(format_table(
        ["pole", "b0", "b1", "settle (periods)", "overshoot",
         "tuples/s per second of error"], rows))
    print("  -> faster poles settle sooner but shed much harder per unit\n"
          "     of error — the paper's reason for not placing poles at 0\n")

    # 3. From engineering specs instead of pole locations.
    rows = []
    for conv, damp in ((3.0, 1.0), (3.0, 0.7), (6.0, 1.0), (1.5, 1.0)):
        poles = poles_from_specs(convergence_periods=conv, damping=damp)
        gains = design_gains(poles=poles, controller_pole=0.8)
        resp = step_response(gains.closed_loop(model), 60)
        m = step_metrics(resp)
        rows.append([conv, damp, f"{poles[0].real:.3f}{poles[0].imag:+.3f}j",
                     m.settling_index, f"{m.overshoot_pct:.1f}%",
                     "yes" if m.oscillatory else "no"])
    print("Designs from (convergence, damping) specs:")
    print(format_table(
        ["converge (periods)", "damping", "pole", "settle", "overshoot",
         "oscillates"], rows))
    print("\n  The paper picks 3-period convergence with damping 1 — the\n"
          "  fastest design with no oscillation and moderate authority.\n")

    # 4. Robustness margins of the chosen design.
    open_loop = paper.transfer_function(model) * model.plant()
    m = stability_margins(open_loop)
    print("Stability margins of the paper's loop C(z)G(z):")
    print(f"  gain margin    : {m.gain_margin:.2f}x — the cost estimate "
          "c(k) may be wrong by this factor before instability")
    print(f"  phase margin   : {m.phase_margin_deg:.1f} degrees — tolerated "
          "extra actuation lag")
    print(f"  modulus margin : {m.modulus_margin:.2f} — distance to the "
          "critical point under any perturbation mix")


if __name__ == "__main__":
    main()
