#!/usr/bin/env python3
"""Network monitoring for intrusion detection under overload.

One of the paper's motivating applications (Section 1): alerts must reach
the operator before a *soft deadline* — a late intrusion alert is worthless
— while the system tolerates some lost flow records. This example runs a
two-source query network (flow records joined against an alert feed, plus a
per-second traffic aggregate) through a traffic spike, with and without the
control loop.

Run:  python examples/network_monitoring.py
"""

import random

from repro.core import (
    ControlDecision,
    ControlLoop,
    Controller,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import make_engine, monitoring_network
from repro.workloads import merge_arrivals, piecewise_rate

ALERT_DEADLINE = 1.0   # seconds: alerts older than this are useless
CAPACITY = 500.0       # flow tuples/second at H = 1
DURATION = 90.0


def flow_arrivals(seed: int):
    """Normal traffic with a 30-second attack spike (4x rate)."""
    trace = piecewise_rate([(30, 350.0), (30, 1400.0), (30, 350.0)])
    rng = random.Random(seed)
    out = []
    for k, rate in enumerate(trace):
        n = int(rate)
        for i in range(n):
            # values: (suspicion score, host id)
            out.append((k + i / n, (rng.random(), rng.randrange(50)), "flows"))
    return out


def alert_arrivals(seed: int):
    """A steady trickle of IDS alerts, 5 per second."""
    rng = random.Random(seed)
    return [
        (k + i / 5, (0.0, rng.randrange(50)), "alerts")
        for k in range(int(DURATION)) for i in range(5)
    ]


class AdmitEverything(Controller):
    """The do-nothing baseline: never sheds (desired inflow unbounded)."""

    name = "NONE"

    def decide(self, m, target):
        return ControlDecision(v=float("inf"), u=0.0, error=0.0)


def run(controlled: bool):
    network = monitoring_network(capacity=CAPACITY)
    engine = make_engine("full", network=network, headroom=0.97,
                         rng=random.Random(1))
    model = DsmsModel(cost=1.0 / CAPACITY, headroom=0.97, period=0.5)
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(model.cost, 0.2))
    controller = (PolePlacementController(model) if controlled
                  else AdmitEverything(model))
    # regulate at 60% of the deadline so the ripple stays inside it
    loop = ControlLoop(engine, controller, monitor, EntryActuator(),
                       target=0.6 * ALERT_DEADLINE, period=0.5)
    arrivals = merge_arrivals(flow_arrivals(seed=3), alert_arrivals(seed=4))
    record = loop.run(arrivals, DURATION)
    alarms = network.operators["alarm_out"].consumed
    return record, alarms


def main() -> None:
    print("Scenario: 350 flows/s baseline, attack spike to 1400/s for 30 s;")
    print(f"alerts must be matched within {ALERT_DEADLINE:.1f} s to be useful.\n")
    for controlled in (False, True):
        label = "WITH control-based shedding" if controlled else \
                "WITHOUT load shedding      "
        record, alarms = run(controlled)
        # lateness is judged against the deadline, not the regulation target
        qos = record.qos(target=ALERT_DEADLINE)
        print(f"{label}: "
              f"max delay {qos.max_overshoot + ALERT_DEADLINE:5.1f} s | "
              f"late results {qos.delayed_tuples:6d} | "
              f"flow records shed {100 * qos.loss_ratio:4.1f}% | "
              f"alarms raised {alarms}")
    print("\nThe controlled system sacrifices a fraction of flow records to")
    print("keep every delivered alert inside its deadline; the uncontrolled")
    print("system delivers stale results for the whole attack window.")


if __name__ == "__main__":
    main()
