"""Legacy setup shim.

The build host has no ``wheel`` package, so PEP 660 editable installs fail;
``pip install -e . --no-use-pep517`` (or plain ``pip install -e .`` on older
pips) uses this file via ``setup.py develop``. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
