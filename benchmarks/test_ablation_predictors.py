"""Ablation — inflow prediction for the actuator (Section 6 future work).

The Eq. 13 actuator estimates fin(k+1) with fin(k); on monotone ramps
(the paper's Fig. 8A stress) that estimate is systematically low and the
shedder under-drops for one period at a time. Trend-aware prediction
(Holt) removes that bias; mean-reverting prediction (AR(1)) helps on
bursty traces. CTRL's feedback already corrects the error a period later,
so gains are modest but consistent — prediction sharpens the actuator, it
does not replace feedback.
"""

from repro.core import Ar1Predictor, HoltPredictor, MovingAveragePredictor
from repro.experiments import make_workload, run_strategy
from repro.metrics.report import format_table
from repro.workloads import ramp_rate

PREDICTORS = {
    "last-value (paper)": None,
    "moving-average(5)": MovingAveragePredictor,
    "holt": HoltPredictor,
    "ar1": Ar1Predictor,
}


def _run(workload, cfg, predictor_cls):
    from repro.core import (ControlLoop, DsmsModel, EntryActuator, Monitor,
                            PolePlacementController)
    from repro.experiments import build_engine, make_cost_trace
    from repro.workloads import arrivals_from_trace

    engine = build_engine(cfg, make_cost_trace(cfg))
    model = DsmsModel(cost=cfg.base_cost, headroom=cfg.headroom,
                      period=cfg.period)
    monitor = Monitor(engine, model, cost_estimator=cfg.make_cost_estimator())
    loop = ControlLoop(engine, PolePlacementController(model), monitor,
                       EntryActuator(), target=cfg.target, period=cfg.period,
                       cycle_cost=cfg.control_overhead,
                       predictor=predictor_cls() if predictor_cls else None)
    arrivals = arrivals_from_trace(workload, poisson=True, seed=cfg.seed)
    return loop.run(arrivals, cfg.duration)


def test_ablation_predictors(benchmark, config, save_report):
    cfg = config.scaled(duration=150.0, use_cost_trace=False)
    ramp = ramp_rate(int(cfg.duration), start=80.0, slope=4.0)  # 80 -> 676
    web = make_workload("web", cfg)

    def run_matrix():
        out = {}
        for name, cls in PREDICTORS.items():
            out[("ramp", name)] = _run(ramp, cfg, cls).qos()
            out[("web", name)] = _run(web, cfg, cls).qos()
        return out

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = [[wl, name, f"{q.accumulated_violation:.0f}",
             f"{q.loss_ratio:.3f}", f"{q.max_overshoot:.2f}"]
            for (wl, name), q in results.items()]
    save_report("ablation_predictors", "\n".join([
        "Ablation — actuator inflow predictors (ramp = the paper's Fig. 8A "
        "stress)",
        format_table(["workload", "predictor", "acc_viol (s)", "loss",
                      "overshoot (s)"], rows),
    ]))

    # on the ramp, trend-aware prediction must not be worse than last-value
    assert (results[("ramp", "holt")].accumulated_violation
            <= 1.1 * results[("ramp", "last-value (paper)")].accumulated_violation)
    # no predictor destabilizes the loop on the web trace
    for name in PREDICTORS:
        q = results[("web", name)]
        assert q.accumulated_violation < 5 * results[
            ("web", "last-value (paper)")].accumulated_violation + 1e-9
