"""Section 5.1 — computational overhead of the controller.

Paper: one control decision costs ~20 microseconds on a Pentium 4 2.4 GHz —
trivial against control periods of hundreds of milliseconds. This is the
one benchmark where pytest-benchmark's own timing *is* the result.
"""

from repro.core import DsmsModel, PolePlacementController
from repro.experiments.overhead import _measurement


def test_overhead_controller_step(benchmark, config, save_report):
    model = DsmsModel(cost=config.base_cost, headroom=config.headroom,
                      period=config.period)
    controller = PolePlacementController(model)
    measurements = [_measurement(k, model) for k in range(100)]
    counter = {"k": 0}

    def one_decision():
        k = counter["k"] = counter["k"] + 1
        controller.decide(measurements[k % 100], config.target)

    benchmark(one_decision)
    us = benchmark.stats["mean"] * 1e6
    save_report("overhead_controller_step", "\n".join([
        "Section 5.1 — controller overhead per decision",
        f"measured: {us:.2f} us/decision "
        "(paper: ~20 us on a 2006 Pentium 4 2.4 GHz)",
        f"at T = 1 s this is {us / 1e6 * 100:.5f}% of a control period",
    ]))

    # must remain trivial relative to any sensible control period
    assert us < 200.0
