"""Ablation — cost-estimator choice and why the loop tolerates lag.

The per-tuple cost signal c(k) can be smoothed aggressively (slow EWMA,
the Borealis-like default), lightly (last value), robustly (window median)
or optimally (scalar Kalman filter — the paper's proposed extension).
Closed-loop CTRL must stay within a narrow performance band across all of
them, while open-loop AURORA's performance hinges on estimation accuracy —
the Section 4.3.1 disturbance-rejection argument made concrete.
"""

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table

#: display label -> picklable estimator spec (None = config-default EWMA)
ESTIMATORS = {
    "ewma(tau=20s)": None,
    "last-value": "last",
    "median(5)": "median5",
    "kalman": "kalman",
}


def test_ablation_estimators(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)

    def run_matrix():
        cells = [(strat, est_name)
                 for est_name in ESTIMATORS
                 for strat in ("CTRL", "AURORA")]
        jobs = [
            Job(strategy=strat, config=cfg, workload_kind="web",
                estimator=ESTIMATORS[est_name],
                key=f"{strat}/{est_name}")
            for strat, est_name in cells
        ]
        records = run_jobs(jobs)
        return {cell: rec.qos() for cell, rec in zip(cells, records)}

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = [[strat, est, f"{q.accumulated_violation:.0f}",
             f"{q.loss_ratio:.3f}", f"{q.max_overshoot:.1f}"]
            for (strat, est), q in results.items()]
    save_report("ablation_estimators", "\n".join([
        "Ablation — cost estimators (closed loop tolerates estimation lag; "
        "open loop does not)",
        format_table(["strategy", "estimator", "acc_viol (s)", "loss",
                      "overshoot (s)"], rows),
    ]))

    ctrl = [q.accumulated_violation
            for (s, __), q in results.items() if s == "CTRL"]
    aurora = [q.accumulated_violation
              for (s, __), q in results.items() if s == "AURORA"]
    # CTRL's spread across estimators is far smaller than AURORA's
    ctrl_spread = max(ctrl) / max(min(ctrl), 1e-9)
    aurora_spread = max(aurora) / max(min(aurora), 1e-9)
    assert ctrl_spread < aurora_spread
    # CTRL beats AURORA under every estimator
    for est_name in ESTIMATORS:
        assert (results[("CTRL", est_name)].accumulated_violation
                < results[("AURORA", est_name)].accumulated_violation)
