"""Ablation — cost-estimator choice and why the loop tolerates lag.

The per-tuple cost signal c(k) can be smoothed aggressively (slow EWMA,
the Borealis-like default), lightly (last value), robustly (window median)
or optimally (scalar Kalman filter — the paper's proposed extension).
Closed-loop CTRL must stay within a narrow performance band across all of
them, while open-loop AURORA's performance hinges on estimation accuracy —
the Section 4.3.1 disturbance-rejection argument made concrete.
"""

from repro.core import (
    EwmaEstimator,
    KalmanCostEstimator,
    LastValueEstimator,
    WindowMedianEstimator,
)
from repro.experiments import make_cost_trace, make_workload, run_strategy
from repro.metrics.report import format_table

ESTIMATORS = {
    "ewma(tau=20s)": None,  # the config default
    "last-value": LastValueEstimator,
    "median(5)": lambda c: WindowMedianEstimator(c, window=5),
    "kalman": KalmanCostEstimator,
}


def test_ablation_estimators(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)
    workload = make_workload("web", cfg)
    cost_trace = make_cost_trace(cfg)

    def run_matrix():
        out = {}
        for est_name, factory in ESTIMATORS.items():
            wrapped = (None if factory is None
                       else (lambda f=factory: f(cfg.base_cost)))
            for strat in ("CTRL", "AURORA"):
                rec = run_strategy(strat, workload, cfg, cost_trace,
                                   estimator_factory=wrapped)
                out[(strat, est_name)] = rec.qos()
        return out

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = [[strat, est, f"{q.accumulated_violation:.0f}",
             f"{q.loss_ratio:.3f}", f"{q.max_overshoot:.1f}"]
            for (strat, est), q in results.items()]
    save_report("ablation_estimators", "\n".join([
        "Ablation — cost estimators (closed loop tolerates estimation lag; "
        "open loop does not)",
        format_table(["strategy", "estimator", "acc_viol (s)", "loss",
                      "overshoot (s)"], rows),
    ]))

    ctrl = [q.accumulated_violation
            for (s, __), q in results.items() if s == "CTRL"]
    aurora = [q.accumulated_violation
              for (s, __), q in results.items() if s == "AURORA"]
    # CTRL's spread across estimators is far smaller than AURORA's
    ctrl_spread = max(ctrl) / max(min(ctrl), 1e-9)
    aurora_spread = max(aurora) / max(min(aurora), 1e-9)
    assert ctrl_spread < aurora_spread
    # CTRL beats AURORA under every estimator
    for est_name in ESTIMATORS:
        assert (results[("CTRL", est_name)].accumulated_violation
                < results[("AURORA", est_name)].accumulated_violation)
