"""Ablation — control-based shedding vs bounded-buffer backpressure.

Mainstream stream engines manage overload with backpressure (a bounded
buffer), not load shedding. Expressed in this framework, backpressure is a
proportional law toward a *memory* bound — it regulates queue length, so
its latency silently tracks the per-tuple cost. Under the Fig. 14 cost
variations CTRL holds the 2 s delay target; the backpressured system's
delay follows the cost curve instead (doubling on the terrace, ~5x on the
jump peak), and it pays roughly the same data loss to do so.
"""

import statistics

from repro.experiments import Job, run_jobs
from repro.metrics.qos import delay_percentiles
from repro.metrics.report import format_table


def test_ablation_backpressure(benchmark, config, save_report):
    cfg = config.scaled(duration=300.0)
    # size the buffer to give a 2 s delay at *nominal* cost — the fairest
    # possible tuning for backpressure
    buffer_tuples = int(cfg.target * cfg.headroom / cfg.base_cost)

    def run_both():
        jobs = [
            Job(strategy="CTRL", config=cfg, workload_kind="web"),
            Job(strategy="BACKPRESSURE", config=cfg, workload_kind="web",
                controller_kwargs={"max_queue": buffer_tuples}),
        ]
        records = run_jobs(jobs)
        return {"CTRL": records[0], "BACKPRESSURE": records[1]}

    records = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    stats = {}
    for name, rec in records.items():
        q = rec.qos()
        y = [v for v in rec.true_delays()[20:] if v > 0]
        p = delay_percentiles(
            [d for d in rec.departures if d.departed <= cfg.duration]
        )
        stats[name] = (statistics.mean(y), max(y), q)
        rows.append([name, f"{statistics.mean(y):.2f}", f"{max(y):.2f}",
                     f"{p[0.95]:.2f}", f"{q.accumulated_violation:.0f}",
                     f"{q.loss_ratio:.3f}"])
    save_report("ablation_backpressure", "\n".join([
        "Ablation — CTRL vs bounded-buffer backpressure "
        f"(buffer {buffer_tuples} tuples = 2 s at nominal cost)",
        format_table(["strategy", "mean y (s)", "worst y (s)", "p95 delay",
                      "acc_viol (s)", "loss"], rows),
        "Backpressure regulates queue length, so its delay tracks the",
        "Fig. 14 cost curve; CTRL regulates the delay itself.",
    ]))

    mean_ctrl, worst_ctrl, q_ctrl = stats["CTRL"]
    mean_bp, worst_bp, q_bp = stats["BACKPRESSURE"]
    # CTRL tracks the target; backpressure drifts with the cost events
    assert abs(mean_ctrl - cfg.target) < 0.5
    assert worst_bp > worst_ctrl
    assert q_ctrl.accumulated_violation < q_bp.accumulated_violation
    # at comparable loss
    assert abs(q_ctrl.loss_ratio - q_bp.loss_ratio) < 0.1
