"""Fig. 16 — can AURORA be rescued by a more aggressive threshold?

Paper: rerunning AURORA with H = 0.96 (shed more) leaves the Web input
unstable, and where it helps (Pareto) it costs ~37% more data loss than
CTRL — open-loop tuning is brittle and input-dependent.

Our reproduction: on the Web input the retuned AURORA remains far worse
than CTRL on violations, and it never beats CTRL on loss. The paper's
"Pareto becomes violation-free" point does not reproduce because our
AURORA's over-admission is dominated by cost-estimation lag (x2-x4.8 cost
events), which a 1% capacity margin cannot cover — see EXPERIMENTS.md.
"""

from repro.experiments import aurora_retuned
from repro.metrics.report import format_table


def test_fig16_aurora_retuned(benchmark, config, save_report):
    results = benchmark.pedantic(
        lambda: {kind: aurora_retuned(kind, config, headroom_override=0.96)
                 for kind in ("web", "pareto")},
        rounds=1, iterations=1,
    )
    rows = []
    for kind, r in results.items():
        rows.append([
            kind,
            f"{r.aurora_metrics.accumulated_violation:.0f}",
            f"{r.ctrl_metrics.accumulated_violation:.0f}",
            f"{r.aurora_metrics.loss_ratio:.3f}",
            f"{r.ctrl_metrics.loss_ratio:.3f}",
            f"{r.relative_loss:.2f}",
        ])
    save_report("fig16_aurora_retuned", "\n".join([
        "Fig. 16 — AURORA retuned with H = 0.96 vs CTRL "
        "(paper: Web still unstable; where stable, ~1.37x CTRL's loss)",
        format_table(["workload", "aurora acc_viol", "ctrl acc_viol",
                      "aurora loss", "ctrl loss", "loss ratio"], rows),
    ]))

    web = results["web"]
    # Web stays unstable: retuning does not close the violation gap
    assert (web.aurora_metrics.accumulated_violation
            > 2 * web.ctrl_metrics.accumulated_violation)
    # and the retuned AURORA pays at least CTRL-level loss on the web input
    assert web.relative_loss > 0.9
