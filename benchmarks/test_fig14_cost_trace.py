"""Fig. 14 — variable unit processing costs.

Paper: a Pareto-jittered ~5 ms base with a small peak at the 50th second, a
large peak with a sudden jump from the 125th, and a high terrace with a
sudden drop between the 250th and 350th second.
"""

from repro.experiments import make_cost_trace
from repro.metrics.report import ascii_series


def test_fig14_cost_trace(benchmark, config, save_report):
    trace = benchmark.pedantic(
        lambda: make_cost_trace(config),
        rounds=1, iterations=1,
    )
    ms = [v * 1000 for v in trace]
    save_report("fig14_cost_trace", "\n".join([
        "Fig. 14 — per-tuple cost trace (ms); base ~5.3 ms, peak at ~50 s,",
        "jump peak from 125 s, terrace 250-350 s with a sudden drop",
        ascii_series(ms, title="cost (ms)", y_label="time (s) ->"),
    ]))

    base = config.base_cost
    assert trace.at(20.0) < 1.4 * base          # quiet baseline
    assert trace.at(52.0) > 1.5 * base          # small peak
    assert trace.at(126.0) > 3.0 * base         # sudden jump
    assert trace.at(126.0) > trace.at(124.0) * 2.0
    assert trace.at(300.0) > 1.6 * base         # terrace holds
    assert trace.at(352.0) < 1.4 * base         # sudden drop
    assert len(trace) == int(config.duration)
