"""Fig. 12 — relative performance of the load-shedding strategies.

Paper (400 s, yd = 2 s, T = 1 s, Fig. 14 cost variations): on the Web trace
AURORA accumulates ~205x CTRL's delay violations and BASELINE ~23x, with
similar gaps for delayed tuples and maximal overshoot, while the data loss
ratio is nearly identical across methods (AURORA ~0.986-0.987 of CTRL's).

Our simulated engine reproduces the ordering and the near-equal loss; the
violation factors are smaller (single digits to tens) because the simulated
monitor's q-counting is exact, which lets even the poor strategies react to
congestion one period late rather than many — see EXPERIMENTS.md.
"""

from repro.experiments import compare_both_workloads
from repro.metrics.report import qos_table, ratio_table


def test_fig12_relative_performance(benchmark, config, save_report):
    results = benchmark.pedantic(
        lambda: compare_both_workloads(config),
        rounds=1, iterations=1,
    )
    sections = ["Fig. 12 — strategy comparison "
                "(paper: CTRL << BASELINE << AURORA on delay metrics, "
                "loss ~equal)"]
    for kind, res in results.items():
        sections.append(f"\n[{kind} workload] absolute metrics:")
        sections.append(qos_table(res.metrics))
        sections.append(f"[{kind} workload] relative to CTRL "
                        "(the paper's Fig. 12 format):")
        sections.append(ratio_table(res.metrics, reference="CTRL"))
    save_report("fig12_relative_performance", "\n".join(sections))

    for kind, res in results.items():
        ctrl = res.metrics["CTRL"]
        aurora = res.metrics["AURORA"]
        baseline = res.metrics["BASELINE"]
        # ordering on the primary metric
        assert ctrl.accumulated_violation < aurora.accumulated_violation, kind
        assert baseline.accumulated_violation < aurora.accumulated_violation, kind
        # AURORA is at least several times worse than CTRL
        assert aurora.accumulated_violation > 3 * ctrl.accumulated_violation, kind
        # overshoot ordering
        assert ctrl.max_overshoot <= aurora.max_overshoot, kind
        # loss is comparable across methods (within ~0.12 absolute)
        losses = [m.loss_ratio for m in res.metrics.values()]
        assert max(losses) - min(losses) < 0.15, kind
