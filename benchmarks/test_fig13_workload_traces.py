"""Fig. 13 — traces of the synthetic and (synthesized) real stream data.

Paper: the Web trace (LBL-PKT-4) fluctuates between ~100 and ~400 t/s with
multi-second bursts; the Pareto (beta = 1) trace is more dramatic, spiking
to ~800 t/s. We regenerate both and check those characteristics.
"""

from repro.experiments import make_workload
from repro.metrics.report import ascii_series, format_table


def test_fig13_workload_traces(benchmark, config, save_report):
    traces = benchmark.pedantic(
        lambda: {kind: make_workload(kind, config)
                 for kind in ("web", "pareto")},
        rounds=1, iterations=1,
    )
    web, pareto = traces["web"], traces["pareto"]
    rows = [
        ["web", f"{web.mean():.0f}", f"{web.peak():.0f}",
         f"{web.burstiness():.2f}"],
        ["pareto", f"{pareto.mean():.0f}", f"{pareto.peak():.0f}",
         f"{pareto.burstiness():.2f}"],
    ]
    save_report("fig13_workload_traces", "\n".join([
        "Fig. 13 — workload traces (paper: Pareto fluctuates more "
        "dramatically than Web)",
        format_table(["trace", "mean t/s", "peak t/s", "burstiness CV"], rows),
        "",
        ascii_series(list(web), title="web arrival rate (t/s)",
                     y_label="time (s) ->"),
        "",
        ascii_series(list(pareto), title="pareto(beta=1) arrival rate (t/s)",
                     y_label="time (s) ->"),
    ]))

    # the paper's qualitative characteristics
    assert pareto.burstiness() > web.burstiness()
    assert pareto.peak() <= 800.0 + 1e-6
    assert pareto.peak() > 2 * web.mean()
    # bursts last several seconds -> positive lag-1 autocorrelation (web)
    values = list(web)
    mu = web.mean()
    lag1 = sum((values[i] - mu) * (values[i + 1] - mu)
               for i in range(len(values) - 1))
    lag1 /= sum((v - mu) ** 2 for v in values)
    assert lag1 > 0.3
