"""Ablation — semantic vs statistical shedding ([26]'s distinction).

The Aurora work the paper builds on distinguishes statistical shedding
(random victims) from semantic shedding (victims chosen by a utility
analysis). With utility = the tuple's first value field, the semantic
entry shedder must match the statistical one on every control metric
while retaining substantially more utility mass.
"""

import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    Monitor,
    PolePlacementController,
    SemanticEntryActuator,
)
from repro.experiments import build_engine, make_cost_trace, make_workload
from repro.metrics.report import format_table
from repro.shedding import SemanticEntryShedder
from repro.workloads import arrivals_from_trace


def test_ablation_semantic(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)
    workload = make_workload("web", cfg)
    cost_trace = make_cost_trace(cfg)

    def run(actuator):
        engine = build_engine(cfg, cost_trace)
        model = DsmsModel(cost=cfg.base_cost, headroom=cfg.headroom,
                          period=cfg.period)
        monitor = Monitor(engine, model,
                          cost_estimator=cfg.make_cost_estimator())
        loop = ControlLoop(engine, PolePlacementController(model), monitor,
                           actuator, target=cfg.target, period=cfg.period,
                           cycle_cost=cfg.control_overhead)
        arrivals = arrivals_from_trace(workload, poisson=True, seed=cfg.seed)
        return loop.run(arrivals, cfg.duration)

    def run_both():
        semantic_act = SemanticEntryActuator(
            SemanticEntryShedder(utility=lambda v: v[0] if v else 0.0,
                                 rng=random.Random(1))
        )
        rec_sem = run(semantic_act)
        rec_rand = run(EntryActuator())
        return rec_sem, rec_rand, semantic_act

    rec_sem, rec_rand, semantic_act = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    q_sem, q_rand = rec_sem.qos(), rec_rand.qos()
    rows = [
        ["statistical", f"{q_rand.accumulated_violation:.0f}",
         f"{q_rand.loss_ratio:.3f}", f"{1 - q_rand.loss_ratio:.1%}"],
        ["semantic", f"{q_sem.accumulated_violation:.0f}",
         f"{q_sem.loss_ratio:.3f}",
         f"{semantic_act.utility_retention:.1%}"],
    ]
    save_report("ablation_semantic", "\n".join([
        "Ablation — semantic vs statistical shedding "
        "(same control, more utility retained)",
        format_table(["shedder", "acc_viol (s)", "loss",
                      "utility retained"], rows),
    ]))

    # same delay control and loss...
    assert abs(q_sem.loss_ratio - q_rand.loss_ratio) < 0.05
    assert q_sem.accumulated_violation < 2.0 * q_rand.accumulated_violation
    # ...but clearly better utility retention than the proportional baseline
    assert semantic_act.utility_retention > (1 - q_sem.loss_ratio) + 0.1
