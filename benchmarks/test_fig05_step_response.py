"""Fig. 5 — system responses to step inputs.

Paper: input rates of 150/190/200/300 tuples/s stepped at t = 10 s; below
~190 t/s the delay is constant, above it the delay grows linearly and its
increment Δy converges to a stable value (the integrator signature).
"""

from repro.experiments import step_response
from repro.metrics.report import format_table

RATES = (150.0, 190.0, 200.0, 300.0)


def test_fig05_step_response(benchmark, config, save_report):
    results = benchmark.pedantic(
        lambda: step_response(rates=RATES, config=config),
        rounds=1, iterations=1,
    )
    rows = []
    for rate in RATES:
        r = results[rate]
        tail = r.delay_increments[-8:]
        dy = sum(tail) / len(tail)
        rows.append([f"{rate:.0f}", f"{r.delays[20]:.2f}", f"{r.delays[-1]:.2f}",
                     f"{dy:.3f}", "saturated" if r.saturated else "steady"])
    save_report("fig05_step_response", "\n".join([
        "Fig. 5 — step responses (paper: threshold at ~190 t/s, H = 0.97)",
        format_table(["rate t/s", "y @20s", "y @end", "dy/dk s",
                      "regime"], rows),
    ]))

    # paper shapes: 150 stays flat; 200 and 300 integrate; growth rate
    # scales with the excess over capacity H/c = 184.3 t/s
    assert not results[150.0].saturated
    assert results[200.0].saturated and results[300.0].saturated
    d200 = results[200.0].delay_increments[-8:]
    d300 = results[300.0].delay_increments[-8:]
    ratio = (sum(d300) / 8) / (sum(d200) / 8)
    expected = (300 - 184.3) / (200 - 184.3)
    assert abs(ratio - expected) / expected < 0.35
