"""Fig. 15 — transient performance of the three strategies.

Paper: CTRL's y(k) hugs the 2 s target for the whole 400 s run, recovering
quickly from the cost peaks; BASELINE and AURORA show peaks that are large
in both height and width, AURORA drifting far from the target.
"""

import statistics

from repro.experiments import compare_strategies
from repro.metrics.report import ascii_series


def test_fig15_transient(benchmark, config, save_report):
    result = benchmark.pedantic(
        lambda: compare_strategies("web", config),
        rounds=1, iterations=1,
    )
    sections = ["Fig. 15 — y(k) time series on the Web trace "
                "(target = 2 s; paper: CTRL hugs the target)"]
    series = {}
    for name in ("CTRL", "BASELINE", "AURORA"):
        y = result.transient(name)
        series[name] = y
        sections.append("")
        sections.append(ascii_series(y, title=f"{name}: average delay y(k) (s)",
                                     y_label="time (s) ->"))
    save_report("fig15_transient", "\n".join(sections))

    def tracking_error(y):
        settled = [v for v in y[20:] if v > 0]
        return statistics.mean(abs(v - config.target) for v in settled)

    err = {name: tracking_error(y) for name, y in series.items()}
    # CTRL tracks the target far better than AURORA
    assert err["CTRL"] < 0.5 * err["AURORA"]
    # CTRL's worst excursion is the smallest
    assert max(series["CTRL"]) <= max(series["AURORA"])
    # CTRL's mean sits near the target
    settled = [v for v in series["CTRL"][20:] if v > 0]
    assert abs(statistics.mean(settled) - config.target) < 0.5
