"""Fig. 17 — effect of input burstiness on performance.

Paper: Pareto bias factors beta in {0.1, 0.25, 0.5, 1, 1.25, 1.5} (smaller
= burstier); CTRL's metrics barely change while AURORA's degrade
dramatically.

Our reproduction asserts the robust form of that claim: CTRL beats AURORA
on every delay metric at every bias factor, by a wide margin at the bursty
end. The paper's normalized flatness for CTRL only partially reproduces —
our CTRL's violation floor at beta = 1.5 is near zero, which inflates its
own normalized ratios (see EXPERIMENTS.md).
"""

from repro.experiments import PAPER_BIAS_FACTORS, burstiness_sweep
from repro.metrics.report import format_table


def test_fig17_burstiness(benchmark, config, save_report):
    results = benchmark.pedantic(
        lambda: {name: burstiness_sweep(name, config,
                                        bias_factors=PAPER_BIAS_FACTORS)
                 for name in ("CTRL", "AURORA")},
        rounds=1, iterations=1,
    )
    sections = ["Fig. 17 — burstiness sweep "
                "(paper: CTRL flat, AURORA degrades; smaller beta = burstier)"]
    for name, sweep in results.items():
        rows = []
        norm = sweep.normalized(reference_beta=1.5)
        for beta in PAPER_BIAS_FACTORS:
            q = sweep.metrics[beta]
            rows.append([f"{beta:.2f}", f"{q.accumulated_violation:.0f}",
                         f"{norm[beta]['accumulated_violation']:.2f}",
                         f"{q.max_overshoot:.1f}", f"{q.loss_ratio:.3f}"])
        sections.append(f"\n[{name}]")
        sections.append(format_table(
            ["beta", "acc_viol (s)", "rel to beta=1.5", "overshoot (s)",
             "loss"], rows))
    save_report("fig17_burstiness", "\n".join(sections))

    ctrl, aurora = results["CTRL"], results["AURORA"]
    for beta in PAPER_BIAS_FACTORS:
        assert (ctrl.metrics[beta].accumulated_violation
                < aurora.metrics[beta].accumulated_violation), beta
        assert (ctrl.metrics[beta].max_overshoot
                <= aurora.metrics[beta].max_overshoot), beta
    # at the burstiest setting AURORA is catastrophically worse
    assert (aurora.metrics[0.1].accumulated_violation
            > 3 * ctrl.metrics[0.1].accumulated_violation)
