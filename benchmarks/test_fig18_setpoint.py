"""Fig. 18 — responses to runtime changes of the target value.

Paper: yd = 1 s initially, 3 s at the 150th second, 5 s at the 300th.
CTRL converges to each new target quickly with unaffected stability;
AURORA does not respond to yd at all; BASELINE converges (slowly, in the
paper's system).
"""

import statistics

from repro.experiments import PAPER_SCHEDULE, setpoint_tracking
from repro.metrics.report import ascii_series, format_table


def test_fig18_setpoint(benchmark, config, save_report):
    # isolate setpoint tracking from the Fig. 14 cost disturbances — the
    # terrace (250-350 s) would otherwise overlap the 5 s setpoint window
    cfg = config.scaled(use_cost_trace=False)
    result = benchmark.pedantic(
        lambda: setpoint_tracking(cfg, schedule=PAPER_SCHEDULE),
        rounds=1, iterations=1,
    )

    def window_mean(y, lo, hi):
        vals = [v for v in y[lo:hi] if v > 0]
        return statistics.mean(vals) if vals else 0.0

    rows = []
    series = {}
    for name in ("CTRL", "BASELINE", "AURORA"):
        y = result.transient(name)
        series[name] = y
        rows.append([name,
                     f"{window_mean(y, 100, 148):.2f}",
                     f"{window_mean(y, 250, 298):.2f}",
                     f"{window_mean(y, 350, 398):.2f}",
                     result.settling_periods(name, 150),
                     result.settling_periods(name, 300)])
    sections = [
        "Fig. 18 — setpoint tracking (yd: 1 s -> 3 s @150 s -> 5 s @300 s)",
        format_table(["strategy", "y mean @[100,148]", "y mean @[250,298]",
                      "y mean @[350,398]", "settle @150 (periods)",
                      "settle @300 (periods)"], rows),
        "",
        ascii_series(series["CTRL"], title="CTRL y(k): steps to 1 / 3 / 5 s",
                     y_label="time (s) ->"),
    ]
    save_report("fig18_setpoint", "\n".join(sections))

    # CTRL converges to each target
    y_ctrl = series["CTRL"]
    assert abs(window_mean(y_ctrl, 100, 148) - 1.0) < 0.5
    assert abs(window_mean(y_ctrl, 250, 298) - 3.0) < 0.8
    assert abs(window_mean(y_ctrl, 350, 398) - 5.0) < 1.0
    assert result.settling_periods("CTRL", 150) < 40
    # AURORA's trajectory is indifferent to the schedule: its mean misses
    # at least one of the targets badly
    y_a = series["AURORA"]
    misses = [abs(window_mean(y_a, 100, 148) - 1.0) > 0.5,
              abs(window_mean(y_a, 250, 298) - 3.0) > 0.8,
              abs(window_mean(y_a, 350, 398) - 5.0) > 1.0]
    assert any(misses)
