"""Fig. 19 — performance under different control periods.

Paper: nine periods from 31.25 ms to 8000 ms (doubling); delay violations
explode beyond T ~ 4 s (the sampling theorem bound for the input's bursts),
performance also degrades for very small T, and the best region is
[250, 1000] ms.

Our reproduction: the right-side blow-up reproduces directly. The
small-T penalty appears in the *data loss* (the per-cycle monitoring cost
consumes up to ~10% of capacity at 31 ms), while delay violations keep
improving slightly at small T because the simulated monitor counts the
queue exactly — see EXPERIMENTS.md for the divergence note.
"""

from repro.experiments import PAPER_PERIODS, period_sweep
from repro.metrics.report import format_table


def test_fig19_period_sweep(benchmark, config, save_report):
    sweep = benchmark.pedantic(
        lambda: period_sweep(config, periods=PAPER_PERIODS),
        rounds=1, iterations=1,
    )
    rel = sweep.relative_to_best()
    rows = []
    for t in PAPER_PERIODS:
        q = sweep.metrics[t]
        rows.append([f"{t * 1000:.2f}", f"{q.accumulated_violation:.0f}",
                     f"{rel[t]['accumulated_violation']:.1f}",
                     f"{q.max_overshoot:.1f}",
                     f"{q.loss_ratio:.3f}",
                     f"{rel[t]['loss_ratio']:.2f}"])
    save_report("fig19_period_sweep", "\n".join([
        "Fig. 19 — control-period sweep on the Web trace "
        "(paper: best region [250, 1000] ms, blow-up beyond 4 s)",
        format_table(["T (ms)", "acc_viol (s)", "rel", "overshoot (s)",
                      "loss", "loss rel"], rows),
    ]))

    m = sweep.metrics
    # right side: delay violations explode for T >= 4 s
    assert m[8.0].accumulated_violation > 3 * m[1.0].accumulated_violation
    assert m[4.0].accumulated_violation > 1.5 * m[1.0].accumulated_violation
    # left side: the loss penalty of over-frequent monitoring
    assert m[0.03125].loss_ratio > m[0.5].loss_ratio
    # the paper's best band stays competitive on every metric
    for t in (0.25, 0.5, 1.0):
        assert rel[t]["loss_ratio"] < 1.15
        assert (m[t].accumulated_violation
                < 0.5 * m[8.0].accumulated_violation)
