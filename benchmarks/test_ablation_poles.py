"""Ablation — closed-loop pole location (Section 4.4.1's design tradeoff).

The paper argues poles at 0 (deadbeat) are "practically not a good idea due
to the large control authority needed": faster poles correct disturbances
sooner (fewer violations) but work the shedder harder on noise. This sweep
quantifies the tradeoff on the Web workload.
"""

from repro.core import design_gains
from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table

POLES = (0.9, 0.8, 0.7, 0.5, 0.2)


def test_ablation_poles(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)

    def run_sweep():
        jobs = [
            Job(strategy="CTRL", config=cfg, workload_kind="web",
                controller_kwargs={"gains": design_gains(
                    poles=(pole, pole), controller_pole=0.8)},
                key=f"pole={pole}")
            for pole in POLES
        ]
        records = run_jobs(jobs)
        return {pole: rec.qos() for pole, rec in zip(POLES, records)}

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [[f"{p:.1f}", f"{q.accumulated_violation:.0f}",
             f"{q.delayed_tuples}", f"{q.max_overshoot:.1f}",
             f"{q.loss_ratio:.3f}"]
            for p, q in sorted(results.items())]
    save_report("ablation_poles", "\n".join([
        "Ablation — closed-loop pole sweep (paper default 0.7: ~3-period "
        "convergence, damping 1)",
        format_table(["pole", "acc_viol (s)", "delayed", "overshoot (s)",
                      "loss"], rows),
    ]))

    # slow poles let disturbances linger: 0.9 must be worst on violations
    worst = max(results, key=lambda p: results[p].accumulated_violation)
    assert worst == 0.9
    # the paper's 0.7 stays within 2x of the best violation count
    best = min(q.accumulated_violation for q in results.values())
    assert results[0.7].accumulated_violation < 2.5 * max(best, 1e-9)
