"""Fig. 6 — model verification with step inputs.

Paper: Eq. 2 predictions from runtime q(k) fit the measured delays for all
three candidate headrooms, but H = 0.97 has far smaller modeling errors
than 0.95 and 1.00 (Fig. 6B). Our engine is configured with H = 0.97 and
the blind fit must recover it.
"""

from repro.experiments import model_verification
from repro.metrics.report import format_table
from repro.workloads import step_rate


def test_fig06_model_verification_step(benchmark, config, save_report):
    trace = step_rate(80, 10, low=10.0, high=300.0)
    result = benchmark.pedantic(
        lambda: model_verification(trace, config),
        rounds=1, iterations=1,
    )
    rows = [[f"{h:.2f}", f"{fit.rms_error:.3f}"]
            for h, fit in sorted(result.fits.items())]
    save_report("fig06_model_verification_step", "\n".join([
        "Fig. 6 — model vs measured under a step input "
        "(paper: H = 0.97 minimizes the error)",
        format_table(["candidate H", "RMS error (s)"], rows),
        f"best H = {result.best_headroom():.2f}   "
        f"measured c = {result.measured_cost * 1000:.2f} ms/tuple",
    ]))

    assert result.best_headroom() == 0.97
    assert result.fits[0.97].rms_error < result.fits[1.00].rms_error
    # the model must explain the data well in absolute terms too
    assert result.fits[0.97].rms_error < 0.1 * max(result.measured)
