"""Ablation — where to shed: entry coin-flip vs in-network vs LSRM.

Section 4.5.2's claim: the controller is agnostic to *where* load is shed
because the delay dynamics depend only on the outstanding load. All three
actuators must therefore stabilize the loop and pay comparable loss; the
LSRM additionally optimizes which results are lost.
"""

import statistics

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table

ACTUATORS = ("entry", "queue", "lsrm")


def test_ablation_actuators(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)

    def run_all():
        jobs = [Job(strategy="CTRL", config=cfg, workload_kind="web",
                    actuator=name) for name in ACTUATORS]
        return dict(zip(ACTUATORS, run_jobs(jobs)))

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    tracking = {}
    for name, rec in records.items():
        q = rec.qos()
        est = [p.delay_estimate for p in rec.periods[20:]]
        tracking[name] = statistics.mean(est)
        rows.append([name, f"{tracking[name]:.2f}", f"{q.loss_ratio:.3f}",
                     f"{q.accumulated_violation:.0f}",
                     f"{q.max_overshoot:.1f}"])
    save_report("ablation_actuators", "\n".join([
        "Ablation — actuator choice (Section 4.5.2: equivalent for control)",
        format_table(["actuator", "mean ŷ (target 2 s)", "loss",
                      "acc_viol (s)", "overshoot (s)"], rows),
    ]))

    losses = [records[n].qos().loss_ratio for n in ACTUATORS]
    # every actuator regulates the feedback signal to the target
    for name in ACTUATORS:
        assert abs(tracking[name] - cfg.target) < 0.5, name
    # and pays comparable loss
    assert max(losses) - min(losses) < 0.08
