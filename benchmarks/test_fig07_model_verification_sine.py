"""Fig. 7 — model verification with sinusoidal inputs.

Paper: fin oscillates in [0, 400] t/s; small periodic modeling errors
remain (unknown fast dynamics) but H = 0.97 again fits best.
"""

from repro.experiments import model_verification
from repro.metrics.report import format_table
from repro.workloads import sinusoid_rate


def test_fig07_model_verification_sine(benchmark, config, save_report):
    trace = sinusoid_rate(200, 50, low=0.0, high=400.0)
    result = benchmark.pedantic(
        lambda: model_verification(trace, config),
        rounds=1, iterations=1,
    )
    rows = [[f"{h:.2f}", f"{fit.rms_error:.3f}"]
            for h, fit in sorted(result.fits.items())]
    save_report("fig07_model_verification_sine", "\n".join([
        "Fig. 7 — model vs measured under a sinusoid in [0, 400] t/s",
        format_table(["candidate H", "RMS error (s)"], rows),
        f"best H = {result.best_headroom():.2f}",
    ]))

    assert result.best_headroom() == 0.97
    assert result.fits[0.97].rms_error < result.fits[0.95].rms_error
    assert result.fits[0.97].rms_error < result.fits[1.00].rms_error
