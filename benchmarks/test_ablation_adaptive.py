"""Ablation — the adaptive-control extension (Section 6 future work).

The paper proposes adaptive control for fast-changing per-tuple costs. Our
:class:`~repro.core.AdaptiveController` identifies the plant gain cT/H by
recursive least squares instead of relying on the cost statistics. This
benchmark compares CTRL and ADAPTIVE under cost variations twice as fast
as Fig. 14's, where the fixed-gain design's cost estimate lags hardest.
"""

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table
from repro.workloads import Circumstance, cost_trace


def fast_cost_trace(config):
    """Fig. 14-style circumstances compressed into half the time."""
    base = config.base_cost
    circ = [
        Circumstance("peak", start=20.0, duration=12.0, height=base),
        Circumstance("jump_peak", start=60.0, duration=20.0, height=3.8 * base),
        Circumstance("terrace", start=120.0, duration=50.0, height=base),
        Circumstance("jump_peak", start=175.0, duration=20.0, height=2.5 * base),
    ]
    return cost_trace(int(config.duration), base, circumstances=circ,
                      seed=config.seed)


def test_ablation_adaptive(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)
    costs = fast_cost_trace(cfg)

    def run_both():
        names = ("CTRL", "ADAPTIVE", "AURORA")
        jobs = [Job(strategy=name, config=cfg, workload_kind="web",
                    cost_trace=costs) for name in names]
        return {name: rec.qos()
                for name, rec in zip(names, run_jobs(jobs))}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[name, f"{q.accumulated_violation:.0f}", f"{q.delayed_tuples}",
             f"{q.max_overshoot:.1f}", f"{q.loss_ratio:.3f}"]
            for name, q in results.items()]
    save_report("ablation_adaptive", "\n".join([
        "Ablation — adaptive gain identification under fast cost changes",
        format_table(["strategy", "acc_viol (s)", "delayed",
                      "overshoot (s)", "loss"], rows),
    ]))

    # both feedback designs must beat the open loop under fast cost changes
    assert (results["CTRL"].accumulated_violation
            < results["AURORA"].accumulated_violation)
    assert (results["ADAPTIVE"].accumulated_violation
            < results["AURORA"].accumulated_violation)
