"""Perf regression harness: engine + control-loop + figure-benchmark timings.

Writes ``BENCH_engine.json`` at the repository root so successive PRs can
track the performance trajectory (each revision's numbers live in git
history). Three sections:

* ``engine_throughput`` — raw discrete-event engine tuples/second on the
  14-operator identification network, measured on the optimized hot path
  and on the legacy path (scan-based scheduling + per-tuple cost-multiplier
  call) for a before/after pair on every run;
* ``control_loop`` — closed-loop CTRL control cycles/second, i.e. the full
  monitor -> controller -> actuator stack including the engine;
* ``obs_overhead`` — the same closed loop with the observability layer
  absent, disabled (bus with no subscribers), fully enabled (metrics
  bridge + health monitor + tracer) and relayed (every event round-tripped
  through the cross-process manager queue); the disabled path must stay
  within 5% of baseline;
* ``tuptrace`` — the closed loop with sampled per-tuple lifecycle tracing
  off, at 1% and at 100%, plus a fidelity gate: the fully-sampled trace
  mean delay must agree with the monitor's QoS mean within 2%;
* ``sysid`` — the closed loop with the full control-health stack armed
  (online system identification + health monitor + flight recorder)
  against the silent path: the armed overhead must stay within 5%, and
  the identified plant gain must land within 10% of the design model on
  a matched plant (gain ratio K ~ 1);
* ``figure_fanout`` — wall-clock for the multi-strategy Fig. 12 job matrix
  (strategies x workloads) run serially vs. via the process pool;
* ``fleet`` — the 4-shard hotspot service run lockstep vs. as a per-shard
  process fleet (sync mode): aggregates must match bit-for-bit, and the
  wall-clock speedup is recorded alongside ``cpu_count`` (parallel
  speedups are only asserted on multi-core machines);
* ``grid_sweep`` — the Fig. 19-style tuning grid (control periods x delay
  targets, 400 s runs) on the vectorized batch backend vs. the scalar
  ``VirtualQueueEngine`` path, including a full QoS cross-check: violation
  time and loss ratio must agree within 1% on every grid point;
* ``ingest`` — the real-time serving front-end: pre-encoded wire frames
  blasted over a loopback TCP socket into the asyncio ``IngestServer``,
  measuring decode+stamp tuples/second (the ceiling on live offered load);
* ``migration`` — the live source-migration transaction: whole-queue
  drain latency on a loaded shard, plus the end-to-end hotspot scenario
  (coordinator-triggered move) timed against a rebalance-only baseline,
  recording periods-to-QoS-recovery and the worst-shard violation
  improvement.

The parallel sections (``figure_fanout``, ``fleet``) record a
``speedup_meaningful`` flag and, when the machine cannot express the
parallelism (fewer CPUs than workers/shards), a ``skip_reason`` — the
trend check skips those speedup gates instead of warn-failing on
single-CPU runners.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py           # quick
    PYTHONPATH=src python benchmarks/perf/bench_engine.py --full    # paper-scale
    PYTHONPATH=src python benchmarks/perf/bench_engine.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import socket
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dsms import DepthFirstScheduler, identification_network, make_engine  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    Job,
    run_jobs,
    run_strategy,
    make_workload,
)

OUTPUT = REPO_ROOT / "BENCH_engine.json"

STRATEGIES = ("CTRL", "BASELINE", "AURORA")
WORKLOADS = ("web", "pareto")


def overload_arrivals(n_tuples: int, rate: float, seed: int = 0):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for __ in range(n_tuples):
        t += rng.expovariate(rate)
        out.append((t, (rng.random(), rng.random(), rng.random(),
                        rng.random()), "src"))
    return out


def bench_engine_throughput(n_tuples: int, legacy: bool) -> dict:
    """Drive the engine at ~2x capacity and measure tuples/second."""
    net = identification_network()
    engine = make_engine("full", network=net)
    if legacy:
        # reconstruct the pre-optimization hot path: an unbound scheduler
        # forces the per-tuple topological scan, and an explicit constant
        # multiplier forces the per-tuple function call
        engine.scheduler = DepthFirstScheduler(net)
        for q in engine.queues.values():
            q.set_watcher(None)
        engine.cost_multiplier = lambda t: 1.0
    arrivals = overload_arrivals(n_tuples, rate=380.0)
    horizon = arrivals[-1][0] + 60.0
    start = time.perf_counter()
    engine.submit_many(arrivals)
    engine.run_until(horizon)
    wall = time.perf_counter() - start
    return {
        "source_tuples": engine.admitted_total,
        "departed": engine.departed_total,
        "wall_seconds": round(wall, 4),
        "tuples_per_second": round(engine.departed_total / wall, 1),
    }


def bench_control_loop(duration: float) -> dict:
    """Closed-loop CTRL cycles/second (full monitor/controller/actuator)."""
    cfg = ExperimentConfig(duration=duration)
    workload = make_workload("web", cfg)
    start = time.perf_counter()
    record = run_strategy("CTRL", workload, cfg)
    wall = time.perf_counter() - start
    return {
        "control_cycles": len(record.periods),
        "wall_seconds": round(wall, 4),
        "cycles_per_second": round(len(record.periods) / wall, 1),
        "sim_duration_seconds": duration,
    }


def bench_obs_overhead(duration: float, repeats: int = 5) -> dict:
    """Cost of the observability layer on the closed CTRL loop.

    Four variants of the same run, interleaved and rotated per round to
    spread machine noise evenly: ``baseline`` (default silent bus — the
    pre-obs reference), ``disabled`` (an explicit bus with no
    subscribers, i.e. every emit guard evaluated and skipped),
    ``enabled`` (metrics bridge + health monitor subscribed plus a
    per-period tracer) and ``relayed`` (every event serialized over the
    cross-process manager queue and re-emitted into a metrics bridge on
    a separate parent bus — the full :class:`repro.obs.relay.EventRelay`
    round trip, flush included; the manager itself starts outside the
    timed window). Each variant scores its best-of-``repeats`` wall time
    so load spikes on shared runners drop out. The acceptance bar is on
    the disabled path: it must stay within 5% of baseline.
    """
    from repro.obs import (
        EventBus,
        EventRelay,
        HealthMonitor,
        MetricsRegistry,
        PeriodTracer,
        install_metrics,
        worker_relay,
    )

    cfg = ExperimentConfig(duration=duration)
    workload = make_workload("web", cfg)

    def baseline_run():
        return run_strategy("CTRL", workload, cfg)

    def disabled_run():
        return run_strategy("CTRL", workload, cfg, bus=EventBus())

    def enabled_run():
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        monitor = HealthMonitor(bus)
        try:
            return run_strategy("CTRL", workload, cfg, bus=bus,
                                tracer=PeriodTracer())
        finally:
            monitor.close()
            bridge.close()

    parent_bus = EventBus()
    relay_bridge = install_metrics(parent_bus, MetricsRegistry())
    relay = EventRelay(bus=parent_bus, registry=relay_bridge.registry).start()

    def relayed_run():
        loop_bus = EventBus()
        with worker_relay(relay.queue, worker="bench", bus=loop_bus):
            record = run_strategy("CTRL", workload, cfg, bus=loop_bus)
        relay.flush()
        return record

    variants = [("baseline", baseline_run), ("disabled", disabled_run),
                ("enabled", enabled_run), ("relayed", relayed_run)]
    best = {name: float("inf") for name, __ in variants}
    cycles = 0
    try:
        for round_no in range(repeats):
            rot = round_no % len(variants)
            order = variants[rot:] + variants[:rot]
            for name, fn in order:
                start = time.perf_counter()
                record = fn()
                best[name] = min(best[name], time.perf_counter() - start)
                cycles = len(record.periods)
    finally:
        relay.stop()
        relay_bridge.close()

    cps = {name: cycles / wall for name, wall in best.items()}
    disabled_overhead = max(0.0, 1.0 - cps["disabled"] / cps["baseline"])
    enabled_overhead = max(0.0, 1.0 - cps["enabled"] / cps["baseline"])
    relayed_overhead = max(0.0, 1.0 - cps["relayed"] / cps["baseline"])
    return {
        "sim_duration_seconds": duration,
        "repeats": repeats,
        "control_cycles": cycles,
        "baseline_cycles_per_second": round(cps["baseline"], 1),
        "disabled_cycles_per_second": round(cps["disabled"], 1),
        "enabled_cycles_per_second": round(cps["enabled"], 1),
        "relayed_cycles_per_second": round(cps["relayed"], 1),
        "disabled_overhead_fraction": round(disabled_overhead, 4),
        "enabled_overhead_fraction": round(enabled_overhead, 4),
        "relayed_overhead_fraction": round(relayed_overhead, 4),
        "disabled_within_5pct": bool(disabled_overhead <= 0.05),
    }


def bench_tuptrace(duration: float, repeats: int = 5) -> dict:
    """Cost and fidelity of sampled per-tuple lifecycle tracing.

    Three variants of the closed CTRL loop, rotated best-of-``repeats``
    like ``bench_obs_overhead``: ``off`` (no tracer — the reference),
    ``sampled`` (1% of arrivals stamped with TraceContexts) and ``full``
    (every arrival traced — the worst case). Alongside the wall-clock
    overheads, the full variant's TailAnalyzer mean must agree with the
    monitor's QoS mean delay within 2% — the tracer is only worth its
    cost if the spans it collects are faithful.
    """
    from repro.obs.tuptrace import TupleTracer

    cfg = ExperimentConfig(duration=duration)
    workload = make_workload("web", cfg)
    tracers = {}

    def off_run():
        return run_strategy("CTRL", workload, cfg)

    def sampled_run():
        tracers["sampled"] = TupleTracer(fraction=0.01, seed=42)
        return run_strategy("CTRL", workload, cfg,
                            tuple_tracer=tracers["sampled"])

    def full_run():
        tracers["full"] = TupleTracer(fraction=1.0, seed=42,
                                      max_finished=1_000_000)
        return run_strategy("CTRL", workload, cfg,
                            tuple_tracer=tracers["full"])

    variants = [("off", off_run), ("sampled", sampled_run),
                ("full", full_run)]
    best = {name: float("inf") for name, __ in variants}
    cycles = 0
    record = None
    for round_no in range(repeats):
        rot = round_no % len(variants)
        order = variants[rot:] + variants[:rot]
        for name, fn in order:
            start = time.perf_counter()
            rec = fn()
            best[name] = min(best[name], time.perf_counter() - start)
            cycles = len(rec.periods)
            if name == "full":
                record = rec

    cps = {name: cycles / wall for name, wall in best.items()}
    sampled_overhead = max(0.0, 1.0 - cps["sampled"] / cps["off"])
    full_overhead = max(0.0, 1.0 - cps["full"] / cps["off"])
    check = tracers["full"].analyzer().cross_check(record)
    return {
        "sim_duration_seconds": duration,
        "repeats": repeats,
        "control_cycles": cycles,
        "off_cycles_per_second": round(cps["off"], 1),
        "sampled_cycles_per_second": round(cps["sampled"], 1),
        "full_cycles_per_second": round(cps["full"], 1),
        "sampled_fraction": 0.01,
        "sampled_overhead_fraction": round(sampled_overhead, 4),
        "full_overhead_fraction": round(full_overhead, 4),
        "full_traced": tracers["full"].sampled,
        "full_sampled_mean_delay": round(check["sampled_mean"], 4),
        "monitor_mean_delay": round(check["monitor_mean"], 4),
        "cross_check_rel_err": round(check["rel_err"], 5),
        "cross_check_within_2pct": bool(check["ok"]),
    }


def bench_sysid(duration: float, repeats: int = 5) -> dict:
    """Cost and fidelity of the control-health diagnostics layer.

    Two variants of the closed CTRL loop under a constant overload
    (rotated best-of-``repeats`` like ``bench_obs_overhead``): ``off``
    (default silent bus) and ``armed`` (online system identification +
    health monitor + flight recorder all subscribed — the full
    control-health stack a production run would carry). Two gates ride
    on the armed run: its overhead must stay within 5% of the off path,
    and the identified plant gain must land within 10% of the design
    model's — the workload is sized so the queue stays busy and the
    cost model is exact, i.e. the identified ratio K should be ~1.
    """
    import tempfile

    from repro.obs import (
        EventBus,
        FlightRecorder,
        HealthMonitor,
        SysIdMonitor,
    )
    from repro.workloads import constant_rate

    cfg = ExperimentConfig(duration=duration)
    workload = constant_rate(250.0, int(duration))
    state = {}

    def off_run():
        return run_strategy("CTRL", workload, cfg)

    def armed_run():
        bus = EventBus()
        mon = SysIdMonitor(bus)
        with tempfile.TemporaryDirectory() as tmp:
            rec = FlightRecorder(bus, ring=256, directory=tmp)
            hm = rec.watch(HealthMonitor(bus))
            try:
                return run_strategy("CTRL", workload, cfg, bus=bus)
            finally:
                state["summary"] = mon.summary()["main"]
                state["incidents"] = len(rec.incidents)
                hm.close()
                mon.close()
                rec.close()

    variants = [("off", off_run), ("armed", armed_run)]
    best = {name: float("inf") for name, __ in variants}
    cycles = 0
    for round_no in range(repeats):
        rot = round_no % len(variants)
        order = variants[rot:] + variants[:rot]
        for name, fn in order:
            start = time.perf_counter()
            record = fn()
            best[name] = min(best[name], time.perf_counter() - start)
            cycles = len(record.periods)

    cps = {name: cycles / wall for name, wall in best.items()}
    armed_overhead = max(0.0, 1.0 - cps["armed"] / cps["off"])
    st = state["summary"]
    gain_rel_err = abs(st["gain_ratio"] - 1.0)
    return {
        "sim_duration_seconds": duration,
        "repeats": repeats,
        "control_cycles": cycles,
        "off_cycles_per_second": round(cps["off"], 1),
        "armed_cycles_per_second": round(cps["armed"], 1),
        "armed_overhead_fraction": round(armed_overhead, 4),
        "armed_within_5pct": bool(armed_overhead <= 0.05),
        "identified_gain": round(st["identified_gain"], 6),
        "design_gain": round(st["design_gain"], 6),
        "gain_ratio": round(st["gain_ratio"], 4),
        "gain_rel_err": round(gain_rel_err, 4),
        "gain_within_10pct": bool(st["converged"] and gain_rel_err <= 0.10),
        "sysid_samples": st["samples"],
        "sysid_excluded": st["excluded"],
        "incident_bundles": state["incidents"],
    }


def bench_grid_sweep(duration: float) -> dict:
    """Fig. 19-style tuning grid: batch backend vs scalar engine path.

    Both paths consume the same disk-cached arrival traces (pre-warmed off
    the clock, the steady state the trace cache exists to provide), so the
    comparison measures simulation cost, not workload generation.
    """
    from repro.experiments.batch_sweep import (
        GridPoint,
        _point_inputs,
        run_batch_grid,
        scalar_reference,
    )

    periods = (0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    targets = (1.0, 1.5, 2.0, 3.0, 4.0)
    points = [
        GridPoint(config=ExperimentConfig(period=t, duration=duration),
                  strategy="CTRL", workload_kind="web", target=yd,
                  key=f"T={t}/yd={yd}")
        for t in periods for yd in targets
    ]
    for t in periods:  # warm the on-disk arrival cache for both paths
        _point_inputs(points[len(targets) * periods.index(t)])

    start = time.perf_counter()
    results = run_batch_grid(points)
    batch_wall = time.perf_counter() - start

    start = time.perf_counter()
    scalar = [scalar_reference(p)[0] for p in points]
    scalar_wall = time.perf_counter() - start

    worst_violation_err = 0.0
    worst_loss_err = 0.0
    for res, ref in zip(results, scalar):
        denom = max(abs(ref.accumulated_violation), 1.0)
        worst_violation_err = max(
            worst_violation_err,
            abs(res.qos.accumulated_violation - ref.accumulated_violation)
            / denom)
        worst_loss_err = max(
            worst_loss_err, abs(res.qos.loss_ratio - ref.loss_ratio))
    return {
        "grid_points": len(points),
        "sim_duration_seconds": duration,
        "batch_wall_seconds": round(batch_wall, 4),
        "scalar_wall_seconds": round(scalar_wall, 4),
        "speedup": round(scalar_wall / batch_wall, 2),
        "worst_violation_err": round(worst_violation_err, 5),
        "worst_loss_err": round(worst_loss_err, 5),
        "cross_check_within_1pct": bool(worst_violation_err <= 0.01
                                        and worst_loss_err <= 0.01),
    }


def bench_figure_fanout(duration: float, workers: int) -> dict:
    """Fig. 12 job matrix: serial vs process-pool wall-clock."""
    cfg = ExperimentConfig(duration=duration)
    jobs = [
        Job(strategy=s, config=cfg, workload_kind=w, key=f"{w}/{s}")
        for w in WORKLOADS
        for s in STRATEGIES
    ]
    start = time.perf_counter()
    serial = run_jobs(jobs, workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_jobs(jobs, workers=workers)
    parallel_wall = time.perf_counter() - start
    identical = all(
        a.periods == b.periods and a.departures == b.departures
        for a, b in zip(serial, parallel)
    )
    cpus = os.cpu_count() or 1
    meaningful = cpus >= workers
    return {
        "jobs": len(jobs),
        "workers": workers,
        # a pool cannot beat serial without a core per worker; the trend
        # check skips the speedup gate when speedup_meaningful is False
        "cpu_count": cpus,
        "speedup_meaningful": meaningful,
        "skip_reason": None if meaningful else (
            f"cpu_count {cpus} < workers {workers}: pool speedup is "
            "machine topology, not a regression"
        ),
        "sim_duration_seconds": duration,
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2),
        "records_identical": identical,
    }


def bench_fleet(duration: float) -> dict:
    """Lockstep service vs true-parallel process fleet, 4 shards.

    Runs the hotspot workload through both runners off the same specs.
    The hard bar is correctness — sync-mode fleet aggregates must match
    the lockstep records bit-for-bit; the speedup is reported per
    machine and only meaningful when ``cpu_count >= 2`` (one worker per
    shard cannot beat one process on one core).
    """
    from repro.experiments import FleetComparison, fleet_comparison
    from repro.service import FleetConfig

    cfg = ExperimentConfig(duration=duration)
    fc = FleetConfig(n_shards=4, n_sources=4)
    comp = fleet_comparison(cfg, fc)
    cpus = os.cpu_count() or 1
    meaningful = cpus >= fc.n_shards
    return {
        "shards": fc.n_shards,
        "cpu_count": cpus,
        "speedup_meaningful": meaningful,
        "skip_reason": None if meaningful else (
            f"cpu_count {cpus} < shards {fc.n_shards}: fleet speedup is "
            "machine topology, not a regression"
        ),
        "sim_duration_seconds": duration,
        "lockstep_wall_seconds": round(comp.lockstep.wall_seconds, 4),
        "fleet_wall_seconds": round(comp.fleet.wall_seconds, 4),
        "speedup": round(comp.speedup, 2),
        "aggregates_match": comp.aggregates_match(),
    }


def bench_migration(duration: float) -> dict:
    """The live source-migration transaction, microbench + end-to-end.

    Two measurements. First, raw drain latency: a loaded shard flushes
    its whole engine queue (the safety half of the cutover) and we time
    the wall clock per drained tuple. Second, the hotspot scenario the
    migration policy exists for — 8 sources round-robin on 4 shards put
    the 4x hotspot and a second source on shard0, whose 0.32 headroom
    ceiling binds; the run with ``migration=True`` must trigger a
    coordinator-planned move and recover the worst shard's QoS, and we
    record how many periods after the cutover the hot shard's delay
    estimate needs to return under its base target.
    """
    from repro.experiments import build_service_workload
    from repro.service import ServiceConfig, build_service
    from repro.service.shard import build_shard

    cfg = ExperimentConfig(duration=duration, seed=7)

    # -- drain latency microbench ------------------------------------- #
    shard = build_shard("drain", cfg, headroom=0.25, target=cfg.target,
                        engine_seed=3)
    record = shard.loop.begin()
    due = [(i * 0.002, (0.5, 0.5, 0.5, 0.5), shard.entry_source)
           for i in range(2000)]
    shard.loop.run_period(record, 0, due)
    backlog = shard.engine.outstanding
    start = time.perf_counter()
    report = shard.drain_source("bench", budget=600.0)
    drain_wall = time.perf_counter() - start

    # -- end-to-end hotspot scenario ---------------------------------- #
    knobs = dict(n_shards=4, n_sources=8, hotspot_factor=4.0,
                 per_source_rate=14.0, headroom_ceiling=0.32,
                 migration_patience=3, migration_cooldown=10)
    migrating = ServiceConfig(migration=True, **knobs)
    arrivals = build_service_workload(cfg, migrating)
    service = build_service(cfg, migrating)
    start = time.perf_counter()
    moved = service.run(arrivals, cfg.duration)
    moved_wall = time.perf_counter() - start
    stayed = build_service(
        cfg, ServiceConfig(**knobs)).run(arrivals, cfg.duration)

    plans = [(e["k"], e["migration"]) for e in moved.coordinator_history
             if "migration" in e]
    recovery = None
    if plans:
        cut_k, plan = plans[0]
        hot = moved.shard_records[f"shard{plan['from']}"]
        for p in hot.periods[cut_k:]:
            if p.delay_estimate <= moved.base_target:
                recovery = p.k - cut_k
                break
    worst_without = stayed.worst_shard("accumulated_violation")[1]
    worst_with = moved.worst_shard("accumulated_violation")[1]
    return {
        "sim_duration_seconds": duration,
        "drain_backlog": backlog,
        "drain_wall_seconds": round(drain_wall, 4),
        "drain_virtual_seconds": round(report.virtual_seconds, 4),
        "drain_tuples_per_second": round(
            report.drained / drain_wall, 1) if drain_wall > 0 else None,
        "migrations_triggered": len(plans),
        "cutover_k": plans[0][0] if plans else None,
        "periods_to_qos_recovery": recovery,
        "wall_seconds": round(moved_wall, 4),
        "worst_violation_without_migration": round(worst_without, 3),
        "worst_violation_with_migration": round(worst_with, 3),
        "migration_improves_worst_shard": bool(worst_with < worst_without),
    }


def bench_ingest(n_tuples: int) -> dict:
    """Serving front-end throughput over loopback TCP.

    A client blasts ``n_tuples`` pre-encoded wire frames down one
    connection as fast as the kernel accepts them; the clock runs from
    the first byte sent until the ingest buffer has stamped the last
    tuple, so the number is the decode+stamp ceiling of the asyncio
    front-end — the most offered load a live run can ever see.
    """
    from repro.core.clock import WallClock
    from repro.serve.ingest import IngestBuffer, IngestServer
    from repro.serve.protocol import encode_tuple

    clock = WallClock()
    clock.start()
    buf = IngestBuffer(clock, maxlen=n_tuples + 1)
    server = IngestServer(buf, port=0)
    server.start()
    payload = b"".join(
        encode_tuple((i % 97, i % 89, i % 83, i % 79))
        for i in range(n_tuples)
    )
    try:
        start = time.perf_counter()
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30.0) as sock:
            sock.sendall(payload)
            deadline = start + 300.0
            while buf.accepted < n_tuples and time.perf_counter() < deadline:
                time.sleep(0.001)
        wall = time.perf_counter() - start
    finally:
        server.stop()
    return {
        "tuples": n_tuples,
        "payload_bytes": len(payload),
        "accepted": buf.accepted,
        "dropped": buf.dropped,
        "wall_seconds": round(wall, 4),
        "tuples_per_second": round(buf.accepted / wall, 1),
        "mbytes_per_second": round(len(payload) / wall / 1e6, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper-scale durations (slower, steadier numbers)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the fan-out benchmark "
                             "(default: min(4, cpu_count) but at least 2)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write the JSON (default {OUTPUT})")
    args = parser.parse_args(argv)

    n_tuples = 60_000 if args.full else 20_000
    ingest_tuples = 200_000 if args.full else 50_000
    loop_duration = 400.0 if args.full else 120.0
    fanout_duration = 400.0 if args.full else 60.0
    workers = args.workers or max(2, min(4, os.cpu_count() or 1))

    print(f"engine throughput ({n_tuples} tuples, optimized)...", flush=True)
    optimized = bench_engine_throughput(n_tuples, legacy=False)
    print(f"engine throughput ({n_tuples} tuples, legacy path)...", flush=True)
    legacy = bench_engine_throughput(n_tuples, legacy=True)
    print(f"control loop ({loop_duration:.0f}s sim)...", flush=True)
    loop = bench_control_loop(loop_duration)
    print(f"figure fan-out ({fanout_duration:.0f}s sim x "
          f"{len(STRATEGIES) * len(WORKLOADS)} jobs, "
          f"{workers} workers)...", flush=True)
    fanout = bench_figure_fanout(fanout_duration, workers)
    print(f"process fleet ({fanout_duration:.0f}s sim, 4 shards, "
          "lockstep vs fleet)...", flush=True)
    fleet = bench_fleet(fanout_duration)
    print(f"migration ({fanout_duration:.0f}s sim, hotspot move vs "
          "rebalance-only)...", flush=True)
    migration = bench_migration(fanout_duration)
    print(f"obs overhead ({loop_duration:.0f}s sim x 4 variants x 5 "
          "repeats)...", flush=True)
    obs = bench_obs_overhead(loop_duration)
    print(f"tuple tracing ({loop_duration:.0f}s sim x 3 variants x 5 "
          "repeats)...", flush=True)
    tuptrace = bench_tuptrace(loop_duration)
    print(f"control health ({loop_duration:.0f}s sim x 2 variants x 5 "
          "repeats)...", flush=True)
    sysid = bench_sysid(loop_duration)
    print("grid sweep (9 periods x 5 targets, batch vs scalar)...",
          flush=True)
    grid = bench_grid_sweep(400.0)
    print(f"ingest front-end ({ingest_tuples} tuples over loopback)...",
          flush=True)
    ingest = bench_ingest(ingest_tuples)

    report = {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "mode": "full" if args.full else "quick",
        "engine_throughput": {
            "after_optimized": optimized,
            "before_legacy_path": legacy,
            "single_process_speedup": round(
                optimized["tuples_per_second"] / legacy["tuples_per_second"], 3
            ),
        },
        "control_loop": loop,
        "obs_overhead": obs,
        "tuptrace": tuptrace,
        "sysid": sysid,
        "figure_fanout": fanout,
        "fleet": fleet,
        "migration": migration,
        "grid_sweep": grid,
        "ingest": ingest,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")

    failures = []
    if not fanout["records_identical"]:
        failures.append("parallel records diverged from serial records")
    if not fleet["aggregates_match"]:
        failures.append(
            "sync-mode fleet aggregates diverged from the lockstep service"
        )
    if report["engine_throughput"]["single_process_speedup"] < 1.0:
        failures.append("optimized engine slower than the legacy path")
    if not obs["disabled_within_5pct"]:
        failures.append(
            "disabled observability costs more than 5% of the control "
            f"loop ({obs['disabled_overhead_fraction']:.1%})"
        )
    if not tuptrace["cross_check_within_2pct"]:
        failures.append(
            "tuptrace tier: fully-sampled trace mean diverged from the "
            f"monitor's QoS mean by more than 2% "
            f"(rel err {tuptrace['cross_check_rel_err']:.2%})"
        )
    if not sysid["armed_within_5pct"]:
        failures.append(
            "sysid tier: the armed control-health stack costs more than "
            f"5% of the control loop "
            f"({sysid['armed_overhead_fraction']:.1%})"
        )
    if not sysid["gain_within_10pct"]:
        failures.append(
            "sysid tier: the online-identified plant gain landed more "
            "than 10% from the design model on a matched plant "
            f"(ratio {sysid['gain_ratio']})"
        )
    if not grid["cross_check_within_1pct"]:
        failures.append(
            "batch grid sweep diverged from the scalar engine by more "
            f"than 1% (violation err {grid['worst_violation_err']}, "
            f"loss err {grid['worst_loss_err']})"
        )
    if ingest["accepted"] < ingest["tuples"]:
        failures.append(
            f"ingest front-end lost frames ({ingest['accepted']}/"
            f"{ingest['tuples']} stamped)"
        )
    if migration["migrations_triggered"] < 1:
        failures.append(
            "migration tier: the hotspot scenario never triggered a "
            "coordinator-planned move"
        )
    elif not migration["migration_improves_worst_shard"]:
        failures.append(
            "migration tier: moving the source did not improve the worst "
            "shard's QoS over rebalancing alone"
        )
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
