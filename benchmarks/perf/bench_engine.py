"""Perf regression harness: engine + control-loop + figure-benchmark timings.

Writes ``BENCH_engine.json`` at the repository root so successive PRs can
track the performance trajectory (each revision's numbers live in git
history). Three sections:

* ``engine_throughput`` — raw discrete-event engine tuples/second on the
  14-operator identification network, measured on the optimized hot path
  and on the legacy path (scan-based scheduling + per-tuple cost-multiplier
  call) for a before/after pair on every run;
* ``control_loop`` — closed-loop CTRL control cycles/second, i.e. the full
  monitor -> controller -> actuator stack including the engine;
* ``figure_fanout`` — wall-clock for the multi-strategy Fig. 12 job matrix
  (strategies x workloads) run serially vs. via the process pool.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py           # quick
    PYTHONPATH=src python benchmarks/perf/bench_engine.py --full    # paper-scale
    PYTHONPATH=src python benchmarks/perf/bench_engine.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dsms import DepthFirstScheduler, Engine, identification_network  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentConfig,
    Job,
    run_jobs,
    run_strategy,
    make_workload,
)

OUTPUT = REPO_ROOT / "BENCH_engine.json"

STRATEGIES = ("CTRL", "BASELINE", "AURORA")
WORKLOADS = ("web", "pareto")


def overload_arrivals(n_tuples: int, rate: float, seed: int = 0):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for __ in range(n_tuples):
        t += rng.expovariate(rate)
        out.append((t, (rng.random(), rng.random(), rng.random(),
                        rng.random()), "src"))
    return out


def bench_engine_throughput(n_tuples: int, legacy: bool) -> dict:
    """Drive the engine at ~2x capacity and measure tuples/second."""
    net = identification_network()
    engine = Engine(net)
    if legacy:
        # reconstruct the pre-optimization hot path: an unbound scheduler
        # forces the per-tuple topological scan, and an explicit constant
        # multiplier forces the per-tuple function call
        engine.scheduler = DepthFirstScheduler(net)
        for q in engine.queues.values():
            q.set_watcher(None)
        engine.cost_multiplier = lambda t: 1.0
    arrivals = overload_arrivals(n_tuples, rate=380.0)
    horizon = arrivals[-1][0] + 60.0
    start = time.perf_counter()
    engine.submit_many(arrivals)
    engine.run_until(horizon)
    wall = time.perf_counter() - start
    return {
        "source_tuples": engine.admitted_total,
        "departed": engine.departed_total,
        "wall_seconds": round(wall, 4),
        "tuples_per_second": round(engine.departed_total / wall, 1),
    }


def bench_control_loop(duration: float) -> dict:
    """Closed-loop CTRL cycles/second (full monitor/controller/actuator)."""
    cfg = ExperimentConfig(duration=duration)
    workload = make_workload("web", cfg)
    start = time.perf_counter()
    record = run_strategy("CTRL", workload, cfg)
    wall = time.perf_counter() - start
    return {
        "control_cycles": len(record.periods),
        "wall_seconds": round(wall, 4),
        "cycles_per_second": round(len(record.periods) / wall, 1),
        "sim_duration_seconds": duration,
    }


def bench_figure_fanout(duration: float, workers: int) -> dict:
    """Fig. 12 job matrix: serial vs process-pool wall-clock."""
    cfg = ExperimentConfig(duration=duration)
    jobs = [
        Job(strategy=s, config=cfg, workload_kind=w, key=f"{w}/{s}")
        for w in WORKLOADS
        for s in STRATEGIES
    ]
    start = time.perf_counter()
    serial = run_jobs(jobs, workers=1)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_jobs(jobs, workers=workers)
    parallel_wall = time.perf_counter() - start
    identical = all(
        a.periods == b.periods and a.departures == b.departures
        for a, b in zip(serial, parallel)
    )
    return {
        "jobs": len(jobs),
        "workers": workers,
        "sim_duration_seconds": duration,
        "serial_wall_seconds": round(serial_wall, 4),
        "parallel_wall_seconds": round(parallel_wall, 4),
        "speedup": round(serial_wall / parallel_wall, 2),
        "records_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper-scale durations (slower, steadier numbers)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the fan-out benchmark "
                             "(default: min(4, cpu_count) but at least 2)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write the JSON (default {OUTPUT})")
    args = parser.parse_args(argv)

    n_tuples = 60_000 if args.full else 20_000
    loop_duration = 400.0 if args.full else 120.0
    fanout_duration = 400.0 if args.full else 60.0
    workers = args.workers or max(2, min(4, os.cpu_count() or 1))

    print(f"engine throughput ({n_tuples} tuples, optimized)...", flush=True)
    optimized = bench_engine_throughput(n_tuples, legacy=False)
    print(f"engine throughput ({n_tuples} tuples, legacy path)...", flush=True)
    legacy = bench_engine_throughput(n_tuples, legacy=True)
    print(f"control loop ({loop_duration:.0f}s sim)...", flush=True)
    loop = bench_control_loop(loop_duration)
    print(f"figure fan-out ({fanout_duration:.0f}s sim x "
          f"{len(STRATEGIES) * len(WORKLOADS)} jobs, "
          f"{workers} workers)...", flush=True)
    fanout = bench_figure_fanout(fanout_duration, workers)

    report = {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "mode": "full" if args.full else "quick",
        "engine_throughput": {
            "after_optimized": optimized,
            "before_legacy_path": legacy,
            "single_process_speedup": round(
                optimized["tuples_per_second"] / legacy["tuples_per_second"], 3
            ),
        },
        "control_loop": loop,
        "figure_fanout": fanout,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")

    failures = []
    if not fanout["records_identical"]:
        failures.append("parallel records diverged from serial records")
    if report["engine_throughput"]["single_process_speedup"] < 1.0:
        failures.append("optimized engine slower than the legacy path")
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
