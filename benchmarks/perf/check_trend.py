"""Compare a fresh BENCH_engine.json against the committed baseline.

CI runs the perf harness on every push, then calls this script to compare
the fresh numbers with the baseline checked into the repository. A drop of
more than ``--tolerance`` (default 20%) in either headline throughput
metric fails the build:

* ``engine_throughput.after_optimized.tuples_per_second``
* ``control_loop.cycles_per_second``
* ``grid_sweep.speedup`` (batch backend vs scalar engine on the Fig. 19
  tuning grid)
* ``ingest.tuples_per_second`` (wire frames decoded and stamped by the
  real-time serving front-end over loopback TCP)

Two *parallel* speedups — ``figure_fanout.speedup`` (process pool vs
serial) and ``fleet.speedup`` (per-shard process fleet vs lockstep) —
are checked the same way, but only when the section's recorded
``cpu_count`` is at least 2 in both reports: on a single-CPU machine a
process pool/fleet cannot beat one process, so a sub-1x "speedup" there
is machine topology, not a regression (and asserting on it would make
the check flap between runner shapes).

Throughput *gains* never fail; CI runners are noisy, so the tolerance is
deliberately loose — the check exists to catch order-of-magnitude
regressions (an accidentally quadratic hot path), not 5% jitter. Update
the committed baseline in the same PR whenever the numbers legitimately
move.

One absolute check rides along: the fresh report's
``obs_overhead.disabled_overhead_fraction`` must stay at or below 5% —
the observability layer is contractually free when nobody subscribes.
(Skipped with a note if the fresh report predates the obs section.)

Usage::

    python benchmarks/perf/check_trend.py BENCH_engine.json BENCH_fresh.json
    python benchmarks/perf/check_trend.py baseline.json fresh.json --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: dotted paths of the metrics the trend check guards (higher = better)
METRICS = (
    "engine_throughput.after_optimized.tuples_per_second",
    "control_loop.cycles_per_second",
    "grid_sweep.speedup",
    "ingest.tuples_per_second",
)

#: sections whose ``speedup`` only means anything on multi-core machines;
#: each is guarded like METRICS but skipped unless the section's own
#: ``cpu_count`` is >= 2 in both reports
PARALLEL_SECTIONS = ("figure_fanout", "fleet")


def dig(doc: dict, dotted: str) -> float:
    node = doc
    for part in dotted.split("."):
        try:
            node = node[part]
        except (KeyError, TypeError):
            raise SystemExit(
                f"metric {dotted!r} missing from report (at {part!r})"
            )
    return float(node)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_engine.json")
    parser.add_argument("fresh", type=Path,
                        help="report from this run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop per metric "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    failures = []
    for metric in METRICS:
        base = dig(baseline, metric)
        now = dig(fresh, metric)
        if base <= 0:
            print(f"{metric}: baseline {base} not positive, skipping")
            continue
        change = (now - base) / base
        status = "OK" if change >= -args.tolerance else "REGRESSION"
        print(f"{metric}: baseline {base:.1f} -> fresh {now:.1f} "
              f"({change:+.1%}) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"{metric} dropped {-change:.1%} "
                f"(> {args.tolerance:.0%} allowed)"
            )

    for section in PARALLEL_SECTIONS:
        metric = f"{section}.speedup"
        base_sec = baseline.get(section)
        fresh_sec = fresh.get(section)
        if base_sec is None or fresh_sec is None:
            print(f"{metric}: section missing from "
                  f"{'baseline' if base_sec is None else 'fresh'} report, "
                  "skipping")
            continue
        cpus = min(int(base_sec.get("cpu_count") or 1),
                   int(fresh_sec.get("cpu_count") or 1))
        if cpus < 2:
            print(f"{metric}: cpu_count {cpus} < 2, parallel speedup "
                  "not meaningful on this machine, skipping")
            continue
        base = float(base_sec["speedup"])
        now = float(fresh_sec["speedup"])
        if base <= 0:
            print(f"{metric}: baseline {base} not positive, skipping")
            continue
        change = (now - base) / base
        status = "OK" if change >= -args.tolerance else "REGRESSION"
        print(f"{metric}: baseline {base:.2f} -> fresh {now:.2f} "
              f"({change:+.1%}) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"{metric} dropped {-change:.1%} "
                f"(> {args.tolerance:.0%} allowed)"
            )

    obs = fresh.get("obs_overhead")
    if obs is None:
        print("obs_overhead: section missing from fresh report, skipping")
    else:
        overhead = float(obs["disabled_overhead_fraction"])
        status = "OK" if overhead <= 0.05 else "REGRESSION"
        print(f"obs_overhead.disabled_overhead_fraction: "
              f"{overhead:.1%} (<= 5.0% allowed) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"disabled observability overhead {overhead:.1%} "
                "exceeds the 5% budget"
            )

    for failure in failures:
        print(f"PERF TREND FAILURE: {failure}", file=sys.stderr)
    if failures:
        print(
            "If this slowdown is expected, regenerate the baseline with\n"
            "  PYTHONPATH=src python benchmarks/perf/bench_engine.py\n"
            "and commit the new BENCH_engine.json in the same PR.",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
