"""Compare a fresh BENCH_engine.json against the committed baseline.

CI runs the perf harness on every push, then calls this script to compare
the fresh numbers with the baseline checked into the repository. A drop of
more than ``--tolerance`` (default 20%) in either headline throughput
metric fails the build:

* ``engine_throughput.after_optimized.tuples_per_second``
* ``control_loop.cycles_per_second``
* ``grid_sweep.speedup`` (batch backend vs scalar engine on the Fig. 19
  tuning grid)
* ``ingest.tuples_per_second`` (wire frames decoded and stamped by the
  real-time serving front-end over loopback TCP)
* ``tuptrace.full_cycles_per_second`` (the closed loop with every tuple
  lifecycle-traced — the worst-case tracing path must not rot)

Two *parallel* speedups — ``figure_fanout.speedup`` (process pool vs
serial) and ``fleet.speedup`` (per-shard process fleet vs lockstep) —
are checked the same way, but *skipped* (cleanly, never warn-failed)
whenever either report says the machine could not express the
parallelism: the harness records ``speedup_meaningful`` and a
``skip_reason`` when ``cpu_count`` is below the section's own degree of
parallelism (workers for the pool, shards for the fleet). On such a
runner a sub-1x "speedup" is machine topology, not a regression, and
asserting on it would make the check flap between runner shapes. Older
reports without those fields fall back to the recorded ``cpu_count``
against the section's ``workers``/``shards``.

Throughput *gains* never fail; CI runners are noisy, so the tolerance is
deliberately loose — the check exists to catch order-of-magnitude
regressions (an accidentally quadratic hot path), not 5% jitter. Update
the committed baseline in the same PR whenever the numbers legitimately
move.

Absolute checks ride along on the fresh report (each skipped with a note
when the report predates its section):

* ``obs_overhead.disabled_overhead_fraction`` must stay at or below 5% —
  the observability layer is contractually free when nobody subscribes;
* ``sysid.armed_overhead_fraction`` must stay at or below 5% — the full
  control-health stack (system identification + health monitor + flight
  recorder) rides the same bus and must stay near-free;
* ``sysid.gain_within_10pct`` must hold — on a matched plant the
  online-identified gain lands within 10% of the design model, or the
  estimator has rotted.

Usage::

    python benchmarks/perf/check_trend.py BENCH_engine.json BENCH_fresh.json
    python benchmarks/perf/check_trend.py baseline.json fresh.json --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: dotted paths of the metrics the trend check guards (higher = better)
METRICS = (
    "engine_throughput.after_optimized.tuples_per_second",
    "control_loop.cycles_per_second",
    "grid_sweep.speedup",
    "ingest.tuples_per_second",
    "tuptrace.full_cycles_per_second",
)

#: sections whose ``speedup`` only means anything when the machine has a
#: core per unit of parallelism; each is guarded like METRICS but skipped
#: when either report records a ``skip_reason`` (or, for older reports,
#: when ``cpu_count`` is below the section's workers/shards)
PARALLEL_SECTIONS = ("figure_fanout", "fleet")


def parallel_skip_reason(section: str, doc: dict, which: str):
    """Why this report's ``section.speedup`` should not be gated, if so."""
    sec = doc.get(section)
    if sec is None:
        return f"section missing from {which} report"
    if "speedup_meaningful" in sec:
        if not sec["speedup_meaningful"]:
            return f"{which}: {sec.get('skip_reason') or 'not meaningful'}"
        return None
    # pre-skip_reason report: reconstruct the gate from cpu_count vs the
    # section's own degree of parallelism
    degree = int(sec.get("workers") or sec.get("shards") or 2)
    cpus = int(sec.get("cpu_count") or 1)
    if cpus < degree:
        return (f"{which}: cpu_count {cpus} < {degree} "
                "(parallel speedup not meaningful)")
    return None


def dig(doc: dict, dotted: str) -> float:
    node = doc
    for part in dotted.split("."):
        try:
            node = node[part]
        except (KeyError, TypeError):
            raise SystemExit(
                f"metric {dotted!r} missing from report (at {part!r})"
            )
    return float(node)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_engine.json")
    parser.add_argument("fresh", type=Path,
                        help="report from this run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop per metric "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    failures = []
    for metric in METRICS:
        base = dig(baseline, metric)
        now = dig(fresh, metric)
        if base <= 0:
            print(f"{metric}: baseline {base} not positive, skipping")
            continue
        change = (now - base) / base
        status = "OK" if change >= -args.tolerance else "REGRESSION"
        print(f"{metric}: baseline {base:.1f} -> fresh {now:.1f} "
              f"({change:+.1%}) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"{metric} dropped {-change:.1%} "
                f"(> {args.tolerance:.0%} allowed)"
            )

    for section in PARALLEL_SECTIONS:
        metric = f"{section}.speedup"
        skip = (parallel_skip_reason(section, baseline, "baseline")
                or parallel_skip_reason(section, fresh, "fresh"))
        if skip is not None:
            print(f"{metric}: skipping — {skip}")
            continue
        base = float(baseline[section]["speedup"])
        now = float(fresh[section]["speedup"])
        if base <= 0:
            print(f"{metric}: baseline {base} not positive, skipping")
            continue
        change = (now - base) / base
        status = "OK" if change >= -args.tolerance else "REGRESSION"
        print(f"{metric}: baseline {base:.2f} -> fresh {now:.2f} "
              f"({change:+.1%}) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"{metric} dropped {-change:.1%} "
                f"(> {args.tolerance:.0%} allowed)"
            )

    obs = fresh.get("obs_overhead")
    if obs is None:
        print("obs_overhead: section missing from fresh report, skipping")
    else:
        overhead = float(obs["disabled_overhead_fraction"])
        status = "OK" if overhead <= 0.05 else "REGRESSION"
        print(f"obs_overhead.disabled_overhead_fraction: "
              f"{overhead:.1%} (<= 5.0% allowed) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"disabled observability overhead {overhead:.1%} "
                "exceeds the 5% budget"
            )

    sysid = fresh.get("sysid")
    if sysid is None:
        print("sysid: section missing from fresh report, skipping")
    else:
        overhead = float(sysid["armed_overhead_fraction"])
        status = "OK" if overhead <= 0.05 else "REGRESSION"
        print(f"sysid.armed_overhead_fraction: "
              f"{overhead:.1%} (<= 5.0% allowed) [{status}]")
        if status == "REGRESSION":
            failures.append(
                f"armed control-health overhead {overhead:.1%} "
                "exceeds the 5% budget"
            )
        ok = bool(sysid["gain_within_10pct"])
        print(f"sysid.gain_within_10pct: ratio {sysid['gain_ratio']} "
              f"[{'OK' if ok else 'REGRESSION'}]")
        if not ok:
            failures.append(
                f"identified plant gain ratio {sysid['gain_ratio']} "
                "strayed more than 10% from the design model"
            )

    for failure in failures:
        print(f"PERF TREND FAILURE: {failure}", file=sys.stderr)
    if failures:
        print(
            "If this slowdown is expected, regenerate the baseline with\n"
            "  PYTHONPATH=src python benchmarks/perf/bench_engine.py\n"
            "and commit the new BENCH_engine.json in the same PR.",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
