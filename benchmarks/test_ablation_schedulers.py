"""Ablation — engine scheduler robustness (Section 5.2 conjecture).

The paper: "It is highly possible that the model is still applicable to a
wide range of scheduling policies that do not consider tuple priorities."
This benchmark closes the loop over the same workload with the depth-first
(virtual-FIFO) scheduler and the Borealis-style round-robin train
scheduler: the controller, designed once, must regulate both.
"""

import random
import statistics

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import (
    DepthFirstScheduler,
    Engine,
    RoundRobinScheduler,
    identification_network,
)
from repro.experiments import make_workload
from repro.metrics.report import format_table
from repro.workloads import arrivals_from_trace

SCHEDULERS = {
    "depth-first (virtual FIFO)": DepthFirstScheduler,
    "round-robin trains": RoundRobinScheduler,
    "round-robin batch=50": lambda n: RoundRobinScheduler(n, batch=50),
}


def test_ablation_schedulers(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)
    workload = make_workload("web", cfg)

    def run_all():
        out = {}
        for name, factory in SCHEDULERS.items():
            network = identification_network(capacity=cfg.capacity)
            engine = Engine(network, headroom=cfg.headroom,
                            scheduler=factory(network),
                            rng=random.Random(0))
            model = DsmsModel(cost=cfg.base_cost, headroom=cfg.headroom,
                              period=cfg.period)
            monitor = Monitor(engine, model,
                              cost_estimator=cfg.make_cost_estimator())
            loop = ControlLoop(engine, PolePlacementController(model),
                               monitor, EntryActuator(), target=cfg.target,
                               period=cfg.period,
                               cycle_cost=cfg.control_overhead)
            arrivals = arrivals_from_trace(workload, poisson=True,
                                           seed=cfg.seed)
            out[name] = loop.run(arrivals, cfg.duration)
        return out

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    tracking = {}
    for name, rec in records.items():
        q = rec.qos()
        est = [p.delay_estimate for p in rec.periods[20:]]
        tracking[name] = statistics.mean(est)
        rows.append([name, f"{tracking[name]:.2f}", f"{q.loss_ratio:.3f}",
                     f"{q.accumulated_violation:.0f}"])
    save_report("ablation_schedulers", "\n".join([
        "Ablation — scheduler robustness (Section 5.2: the model should "
        "hold for priority-free schedulers)",
        format_table(["scheduler", "mean ŷ (target 2 s)", "loss",
                      "acc_viol (s)"], rows),
    ]))

    for name in SCHEDULERS:
        assert abs(tracking[name] - cfg.target) < 0.6, name
