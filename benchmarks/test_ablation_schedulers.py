"""Ablation — engine scheduler robustness (Section 5.2 conjecture).

The paper: "It is highly possible that the model is still applicable to a
wide range of scheduling policies that do not consider tuple priorities."
This benchmark closes the loop over the same workload with the depth-first
(virtual-FIFO) scheduler and the Borealis-style round-robin train
scheduler: the controller, designed once, must regulate both.
"""

import statistics

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table

#: display label -> picklable scheduler spec (see make_scheduler)
SCHEDULERS = {
    "depth-first (virtual FIFO)": "depth_first",
    "round-robin trains": "round_robin",
    "round-robin batch=50": "round_robin:50",
}


def test_ablation_schedulers(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)

    def run_all():
        names = list(SCHEDULERS)
        jobs = [
            Job(strategy="CTRL", config=cfg, workload_kind="web",
                cost_trace=None, scheduler=SCHEDULERS[name], key=name)
            for name in names
        ]
        return dict(zip(names, run_jobs(jobs)))

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    tracking = {}
    for name, rec in records.items():
        q = rec.qos()
        est = [p.delay_estimate for p in rec.periods[20:]]
        tracking[name] = statistics.mean(est)
        rows.append([name, f"{tracking[name]:.2f}", f"{q.loss_ratio:.3f}",
                     f"{q.accumulated_violation:.0f}"])
    save_report("ablation_schedulers", "\n".join([
        "Ablation — scheduler robustness (Section 5.2: the model should "
        "hold for priority-free schedulers)",
        format_table(["scheduler", "mean ŷ (target 2 s)", "loss",
                      "acc_viol (s)"], rows),
    ]))

    for name in SCHEDULERS:
        assert abs(tracking[name] - cfg.target) < 0.6, name
