"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark runs its experiment once (``benchmark.pedantic`` with a
single round — these are minutes-long simulations, not microbenchmarks),
prints the same rows/series the paper's figure reports, and saves that
report under ``benchmarks/results/`` so it survives pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

#: the paper's full 400-second setting, used by every figure benchmark
BENCH_CONFIG = ExperimentConfig()

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
