"""Ablation — feedback signal: virtual-queue estimate vs measured delay.

Section 4.5.1: the delay cannot be measured in real time — at time k one
can only measure the delay of tuples that entered the system up to y
seconds ago, so the measurement lags the output by the output itself. The
paper's fix is the Eq. 11 estimate from the counted virtual queue. This
benchmark runs the same controller with both signals: the lagged
measured-delay feedback must perform visibly worse (sluggish reaction,
larger excursions) than the estimate.
"""

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table


def test_ablation_feedback_signal(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0)

    def run_both():
        modes = ("estimate", "measured")
        jobs = [Job(strategy="CTRL", config=cfg, workload_kind="web",
                    controller_kwargs={"feedback": mode}, key=mode)
                for mode in modes]
        return {mode: rec.qos()
                for mode, rec in zip(modes, run_jobs(jobs))}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[mode, f"{q.accumulated_violation:.0f}", f"{q.delayed_tuples}",
             f"{q.max_overshoot:.1f}", f"{q.loss_ratio:.3f}"]
            for mode, q in results.items()]
    save_report("ablation_feedback", "\n".join([
        "Ablation — feedback signal (Section 4.5.1: the measured delay "
        "lags by itself; Eq. 11's estimate does not)",
        format_table(["feedback", "acc_viol (s)", "delayed",
                      "overshoot (s)", "loss"], rows),
    ]))

    est, meas = results["estimate"], results["measured"]
    assert est.accumulated_violation < meas.accumulated_violation
