"""Ablation — window-size adaptation vs drop-based shedding.

The paper (Section 3) lists three adaptations and claims its framework
"should also work for (ii) and (iii)". This benchmark closes the loop on
a join workload twice: once shedding tuples (Eq. 13 entry coin flip),
once shrinking the join windows (adaptation (iii), falling back to drops
only when windows bottom out). Both must hold the delay target; the
window actuator must lose far less *data*, paying in join recall instead.
"""

import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
    WindowAdaptationActuator,
)
from repro.dsms import (MapOperator, QueryNetwork, Sink, WindowJoinOperator,
                        make_engine)
from repro.metrics.report import format_table

BASE = 0.002       # fixed per-tuple cost (s)
SCAN = 0.00005     # cost per stored tuple scanned by the join
WINDOW = 6.0       # seconds
RATE = 60          # tuples/s per side
DURATION = 120.0


def build():
    net = QueryNetwork("join-net")
    net.add_source("left")
    net.add_source("right")
    net.add_operator(MapOperator("pre_l", BASE / 4), ["left"])
    net.add_operator(MapOperator("pre_r", BASE / 4), ["right"])
    join = WindowJoinOperator("join", BASE / 2, WINDOW,
                              key=lambda v: v[0] % 7, scan_cost=SCAN)
    net.add_operator(join, ["pre_l", "pre_r"])
    net.add_operator(Sink("out"), ["join"])
    return net, join


def arrivals(seed):
    rng = random.Random(seed)
    out = []
    for k in range(int(DURATION)):
        for i in range(RATE):
            out.append((k + i / RATE, (rng.randrange(100),), "left"))
            out.append((k + i / RATE + 1e-4, (rng.randrange(100),), "right"))
    return out


def run(actuator_factory):
    net, join = build()
    engine = make_engine("full", network=net, headroom=0.97,
                         rng=random.Random(1))
    model = DsmsModel(cost=0.004, headroom=0.97, period=1.0)
    monitor = Monitor(engine, model, cost_estimator=EwmaEstimator(0.004, 0.3))
    loop = ControlLoop(engine, PolePlacementController(model), monitor,
                       actuator_factory(join), target=2.0, period=1.0)
    rec = loop.run(arrivals(seed=3), DURATION)
    matches = net.operators["out"].consumed
    return rec, matches, join


def test_ablation_window_adaptation(benchmark, config, save_report):
    def run_both():
        rec_w, matches_w, join_w = run(
            lambda j: WindowAdaptationActuator(
                [j], fixed_cost=BASE, join_cost_full=0.012,
                min_scale=0.1, rng=random.Random(2))
        )
        rec_d, matches_d, __ = run(lambda j: EntryActuator())
        return (rec_w, matches_w, join_w), (rec_d, matches_d)

    (rec_w, matches_w, join_w), (rec_d, matches_d) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    q_w, q_d = rec_w.qos(), rec_d.qos()
    rows = [
        ["drop tuples (Eq. 13)", f"{q_d.mean_delay:.2f}",
         f"{q_d.loss_ratio:.3f}", f"{matches_d}", "1.00"],
        ["shrink windows (iii)", f"{q_w.mean_delay:.2f}",
         f"{q_w.loss_ratio:.3f}", f"{matches_w}",
         f"{join_w.window_scale:.2f}"],
    ]
    save_report("ablation_window_adaptation", "\n".join([
        "Ablation — window adaptation vs load shedding on a join workload",
        format_table(["actuator", "mean delay (s)", "data loss",
                      "join matches", "final window scale"], rows),
    ]))

    # both regulated (window shrinking may settle below the target — safe)
    assert q_w.mean_delay < 3.0
    assert q_d.mean_delay < 3.0
    # the window actuator preserves far more input data
    assert q_w.loss_ratio < 0.5 * max(q_d.loss_ratio, 1e-9)
    # the price: a shrunken window (reduced recall)
    assert join_w.window_scale < 1.0
