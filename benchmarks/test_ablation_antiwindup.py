"""Ablation — actuator saturation and anti-windup.

During deep overloads the actuator saturates (it cannot admit a negative
number of tuples) while the Eq. 10 recursion keeps integrating the error;
when the overload clears, the wound-up state delays recovery. The paper
runs without anti-windup (its controller pole at 0.8 leaks state slowly);
this benchmark quantifies what back-calculation buys under an extreme
on/off square-wave overload.
"""

from repro.experiments import Job, run_jobs
from repro.metrics.report import format_table
from repro.workloads import square_rate


def test_ablation_antiwindup(benchmark, config, save_report):
    cfg = config.scaled(duration=200.0, use_cost_trace=False)
    # brutal duty cycle: 20 s at 4x capacity, 20 s nearly idle
    workload = square_rate(int(cfg.duration), 40, low=20.0, high=750.0)

    def run_both():
        cells = (("plain", False), ("anti-windup", True))
        jobs = [Job(strategy="CTRL", config=cfg, workload=workload,
                    cost_trace=None,
                    controller_kwargs={"anti_windup": enabled},
                    key=label) for label, enabled in cells]
        return {label: rec.qos()
                for (label, __), rec in zip(cells, run_jobs(jobs))}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[label, f"{q.accumulated_violation:.0f}", f"{q.delayed_tuples}",
             f"{q.max_overshoot:.1f}", f"{q.loss_ratio:.3f}",
             f"{q.mean_delay:.2f}"]
            for label, q in results.items()]
    save_report("ablation_antiwindup", "\n".join([
        "Ablation — anti-windup under a 20s-on/20s-off 4x overload "
        "square wave",
        format_table(["controller", "acc_viol (s)", "delayed",
                      "overshoot (s)", "loss", "mean delay (s)"], rows),
    ]))

    plain, aw = results["plain"], results["anti-windup"]
    # both must remain stable; anti-windup must not hurt violations much
    assert aw.accumulated_violation < 1.5 * plain.accumulated_violation
    # and it must not waste data: loss within a small band of plain
    assert abs(aw.loss_ratio - plain.loss_ratio) < 0.05
