"""Graceful shutdown across the stack: no orphans, no lingering sockets.

Each scenario runs a real child Python process, waits for its READY
line, delivers SIGINT, and asserts a zero exit with the child's own
CLEAN confirmation — the same contract the CI smoke step enforces on
the full example script.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _run_child(script: str, timeout: float = 90.0, sig=signal.SIGINT):
    """Start a child session, wait for READY <port>, signal the whole
    process group (a terminal Ctrl-C hits every process in it, workers
    included), and collect output."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                            text=True, env=env, start_new_session=True)
    try:
        line = proc.stdout.readline()
        assert line.startswith("READY"), f"child said {line!r}"
        port = int(line.split()[1]) if len(line.split()) > 1 else None
        time.sleep(0.3)  # let it run a few periods
        os.killpg(os.getpgid(proc.pid), sig)
        out, _ = proc.communicate(timeout=timeout)
        return proc.returncode, "READY " + str(port) + "\n" + out, port
    finally:
        if proc.poll() is None:
            try:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                proc.kill()
            proc.wait(timeout=10)


LIVE_CHILD = """
import sys
from repro.experiments.config import ExperimentConfig
from repro.serve import build_live_runner

config = ExperimentConfig(capacity=100, period=0.1, target=0.5, duration=60)
runner = build_live_runner(config, backend="fluid", max_periods=600)
runner.handle_signals()
runner.start()
print("READY", runner.ingest_port, flush=True)
runner.wait()
record = runner.stop()
assert runner.status()["running"] is False
print("CLEAN", len(record.periods), flush=True)
"""


@pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
def test_live_runner_exits_cleanly_on_signal(sig):
    code, out, port = _run_child(LIVE_CHILD, sig=sig)
    assert code == 0, f"child exited {code}:\n{out}"
    assert "CLEAN" in out
    # the ingest socket is really gone
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5)


REPLAY_CHILD = """
import socket, threading
from repro.workloads import arrivals_from_trace, constant_rate
from repro.workloads.replay import TraceReplayer

# a sink server that accepts and discards; the replayer is what's tested
sink = socket.create_server(("127.0.0.1", 0))
port = sink.getsockname()[1]
def _drain():
    conn, _ = sink.accept()
    while conn.recv(65536):
        pass
threading.Thread(target=_drain, daemon=True).start()

trace = constant_rate(50.0, 600)
arrivals = arrivals_from_trace(trace, seed=1)
rep = TraceReplayer(arrivals, "127.0.0.1", port, speed=1.0).start()
print("READY", port, flush=True)
import signal, sys
stop = threading.Event()
signal.signal(signal.SIGINT, lambda *a: stop.set())
stop.wait()
rep.stop()
assert not rep.running
print("CLEAN", rep.sent, flush=True)
"""


def test_replayer_stops_cleanly_on_signal():
    code, out, _ = _run_child(REPLAY_CHILD)
    assert code == 0, f"child exited {code}:\n{out}"
    assert "CLEAN" in out


FLEET_CHILD = """
import multiprocessing, threading, signal, sys
from repro.experiments import ExperimentConfig, build_service_workload
from repro.obs import EventBus
from repro.service import FleetConfig, build_fleet

bus = EventBus()
downs = []
bus.subscribe(downs.append, kinds=("worker_down",))

config = ExperimentConfig(duration=30.0, seed=11)
svc = FleetConfig(n_shards=2, n_sources=2)
fleet = build_fleet(config, svc, bus=bus)
arrivals = build_service_workload(config, svc)

# Install a handler (the LiveRunner.handle_signals idiom) instead of
# letting KeyboardInterrupt tear through Thread.join(): on CPython 3.11
# an interrupted join() corrupts the thread's tstate lock and falsely
# reports the thread stopped while the fleet is still mid-run.
fired = threading.Event()
signal.signal(signal.SIGINT, lambda *a: fired.set())

done = {}
def _run():
    try:
        done["result"] = fleet.run(arrivals, duration=config.duration)
    except BaseException as exc:
        done["error"] = exc
t = threading.Thread(target=_run, daemon=True)
t.start()
print("READY 0", flush=True)
# the group-wide SIGINT lands on the workers too; they must ignore it
# and let the run complete while the parent coordinates as usual
t.join(timeout=120)
assert not t.is_alive(), "fleet run wedged after SIGINT"
assert fired.is_set(), "the SIGINT never arrived"
assert "error" not in done, done.get("error")
assert "result" in done, "fleet run returned nothing"
leftover = multiprocessing.active_children()
for proc in leftover:
    proc.terminate()
assert not leftover, f"orphans: {leftover}"
assert not downs, f"workers died from the group SIGINT: {downs}"
print("CLEAN", flush=True)
"""


def test_fleet_run_completes_despite_sigint_to_workers():
    """A group-wide SIGINT mid-run: workers ignore it (the parent
    coordinates teardown), the run completes, no worker death events,
    and no orphan processes remain."""
    code, out, _ = _run_child(FLEET_CHILD, timeout=120.0)
    assert code == 0, f"child exited {code}:\n{out}"
    assert "CLEAN" in out
