"""Multi-shard live serving: socket tuples routed through the live table.

The property under test is the tentpole of live migration: the ticker
routes every tick's tuples by the routing table's *current* state, so a
mid-run cutover redirects a source's future tuples to its new shard
while the sender keeps writing the same source name to the same socket.
Run on a :class:`~repro.core.clock.ManualClock` so period boundaries,
and therefore the cutover point, are exact.
"""

import time

import pytest

from repro.core.clock import ManualClock
from repro.errors import ServeError
from repro.experiments.config import ExperimentConfig
from repro.obs import EventBus
from repro.serve import LiveService, build_live_service
from repro.service import ServiceConfig

CFG = ExperimentConfig(capacity=200.0, period=1.0, target=0.5)
SVC = ServiceConfig(n_shards=2, n_sources=2, backend="fluid")


def _eventually(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _manual_service(**kwargs):
    clock = ManualClock()
    service = build_live_service(CFG, SVC, clock=clock, bus=EventBus(),
                                 **kwargs)
    return service, clock


def _push(service, source, n):
    for i in range(n):
        service.buffer.push((float(i),), source)


class TestBuild:
    def test_shards_table_and_coordinator_wired(self):
        service, __ = _manual_service(max_periods=1)
        assert isinstance(service, LiveService)
        assert len(service.shards) == 2
        assert service.table.n_shards == 2
        # explicit routing pins the wire protocol's default source too,
        # so bare tuples (no source field) cannot kill the ticker
        assert service.table.routes() == {"s0": 0, "s1": 1, "live": 0}
        assert service.coordinator.mode == SVC.mode

    def test_bad_max_periods_rejected(self):
        with pytest.raises(ServeError):
            build_live_service(CFG, SVC, max_periods=0)

    def test_double_start_rejected(self):
        service, __ = _manual_service(max_periods=1)
        service.start()
        try:
            with pytest.raises(ServeError):
                service.start()
        finally:
            service.stop()


class TestLiveRouting:
    def test_sources_route_to_their_shards_and_follow_a_migration(self):
        service, clock = _manual_service(max_periods=3)
        service.start()
        try:
            # period 0: both sources send; the table splits them
            clock.advance(0.5)
            _push(service, "s0", 3)
            _push(service, "s1", 2)
            clock.advance(0.6)      # close period 0
            assert _eventually(
                lambda: service.status()["periods_done"] == 1)
            assert service.records["shard0"].periods[0].offered == 3
            assert service.records["shard1"].periods[0].offered == 2

            # cutover between ticks: the sender changes NOTHING
            epoch = service.table.migrate("s0", 0, 1)
            assert epoch == 1

            # period 1: the same source name now lands on shard1
            _push(service, "s0", 4)
            clock.advance(1.0)      # close period 1
            assert _eventually(
                lambda: service.status()["periods_done"] == 2)
            assert service.records["shard0"].periods[1].offered == 0
            assert service.records["shard1"].periods[1].offered == 4

            clock.advance(1.0)      # close period 2; ticker retires
            assert service.wait(timeout=10)
        finally:
            result = service.stop()
        assert service.status()["routing_epoch"] == 1
        assert service.status()["routes"]["s0"] == 1
        offered = sum(r.offered_total for r in result.shard_records.values())
        assert offered == 9
        assert len(result.coordinator_history) == 3

    def test_unknown_source_falls_back_to_default_pin(self):
        # the wire default source is pinned at build time, so a tuple
        # with no source field routes to shard0 instead of raising
        service, clock = _manual_service(max_periods=1)
        service.start()
        try:
            clock.advance(0.5)
            _push(service, "live", 2)
            clock.advance(0.6)
            assert service.wait(timeout=10)
        finally:
            service.stop()
        assert service.records["shard0"].periods[0].offered == 2

    def test_stop_returns_a_service_result(self):
        from repro.service import ServiceResult

        service, clock = _manual_service(max_periods=1)
        service.start()
        clock.advance(1.1)
        assert service.wait(timeout=10)
        result = service.stop()
        assert isinstance(result, ServiceResult)
        assert set(result.shard_records) == {"shard0", "shard1"}
        assert result.mode == SVC.mode
